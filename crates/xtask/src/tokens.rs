//! Token-tree structure over the [`crate::lex`] stream.
//!
//! [`SourceFile::analyze`] turns a lexed token list into the navigable
//! shape the rule engine works on:
//!
//! * **Delimiter matching** — `partner[i]` holds the index of the matching
//!   `(`/`)`, `[`/`]`, `{`/`}` token, so rules can jump over groups and
//!   brace-match item bodies without re-scanning text.
//! * **Code navigation** — `next_code`/`prev_code` skip comment tokens, so
//!   "is this `unwrap` ident called?" is a neighbour lookup, immune to
//!   interleaved comments.
//! * **`#[cfg(test)]` masking** — a per-token flag covering the attribute
//!   through the annotated item's closing brace or semicolon.
//! * **Function boundaries** — name, visibility, return-type token range
//!   and brace-matched body for every `fn` in the file.
//! * **Span-based comment attachment** — each comment covers (a) the lines
//!   it physically occupies and (b) the *following syntactic node* when it
//!   is adjacent (no blank line in between): attributes plus the item
//!   header through its opening brace, or a statement through its
//!   terminating `;`/`,`. `lint: allow(R<N>)` markers and justification
//!   comments (`SAFETY:`, `hb:`) resolve against these spans, so a marker
//!   above a multi-line attribute or signature still reaches the finding
//!   it annotates — the line-adjacency matching this replaces could not.

use crate::lex::{lex, Delim, Token, TokenKind};

/// One comment (or shebang) with its attachment spans.
#[derive(Debug, Clone)]
pub struct CommentInfo {
    /// Index into [`SourceFile::tokens`].
    pub tok: usize,
    /// Doc comment (`///`, `//!`, `/**`, `/*!`)?
    pub doc: bool,
    /// Byte range of the full source lines the comment occupies (a
    /// trailing comment therefore covers the code before it on its line).
    pub own: (usize, usize),
    /// Byte range of the adjacent following node, when one exists.
    pub node: Option<(usize, usize)>,
}

/// One `fn` item (or method) boundary.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Anchor token for findings: the `pub` token when public, else `fn`.
    pub anchor: usize,
    /// The function-name ident token.
    pub name: usize,
    /// Declared `pub` (including `pub(crate)` forms)?
    pub is_pub: bool,
    /// Token-index range (inclusive start, exclusive end) of the return
    /// type between `->` and the body/semicolon, when present.
    pub ret: Option<(usize, usize)>,
    /// Indices of the body's `{` and matching `}`, when the fn has one.
    pub body: Option<(usize, usize)>,
}

/// A lexed file plus the structural indexes the rules need.
pub struct SourceFile<'a> {
    /// The original source.
    pub src: &'a str,
    /// Every token, including comments.
    pub tokens: Vec<Token>,
    /// Matching-delimiter index per token (`None` for non-delimiters and
    /// unbalanced delimiters).
    pub partner: Vec<Option<usize>>,
    /// Next non-comment token index.
    pub next_code: Vec<Option<usize>>,
    /// Previous non-comment token index.
    pub prev_code: Vec<Option<usize>>,
    /// True when the token sits inside a `#[cfg(test)]` item.
    pub test_mask: Vec<bool>,
    /// All comments with attachment spans.
    pub comments: Vec<CommentInfo>,
    /// All function boundaries.
    pub fns: Vec<FnInfo>,
}

impl<'a> SourceFile<'a> {
    /// Lex and index `src`.
    pub fn analyze(src: &'a str) -> Self {
        let tokens = lex(src);
        let partner = match_delims(&tokens);
        let (next_code, prev_code) = code_links(&tokens);
        let mut file = SourceFile {
            src,
            tokens,
            partner,
            next_code,
            prev_code,
            test_mask: Vec::new(),
            comments: Vec::new(),
            fns: Vec::new(),
        };
        file.test_mask = file.compute_test_mask();
        file.comments = file.compute_comments();
        file.fns = file.compute_fns();
        file
    }

    /// The token's text.
    pub fn text(&self, i: usize) -> &'a str {
        self.tokens.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    /// Is token `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, ident: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && self.text(i) == ident
    }

    /// Is token `i` an operator with exactly this text?
    pub fn is_op(&self, i: usize, op: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| t.kind == TokenKind::Op) && self.text(i) == op
    }

    /// Is token `i` the given opening delimiter?
    pub fn is_open(&self, i: usize, d: Delim) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Open(d))
    }

    /// Next code (non-comment) token after `i`.
    pub fn next(&self, i: usize) -> Option<usize> {
        self.next_code.get(i).copied().flatten()
    }

    /// Previous code (non-comment) token before `i`.
    pub fn prev(&self, i: usize) -> Option<usize> {
        self.prev_code.get(i).copied().flatten()
    }

    /// Is token `i` inside a `#[cfg(test)]` item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Does any comment attached to byte offset `anchor` satisfy `pred`
    /// (on the comment's text)? Attachment = the comment's own lines, or
    /// the adjacent following node (see module docs).
    pub fn comment_attached(&self, anchor: usize, pred: &dyn Fn(&str) -> bool) -> bool {
        self.comments.iter().any(|c| {
            let covers = (c.own.0 <= anchor && anchor < c.own.1)
                || c.node.is_some_and(|(s, e)| s <= anchor && anchor < e)
                || c.node.is_some_and(|(_, e)| anchor == e);
            covers && pred(self.text(c.tok))
        })
    }

    /// Like [`Self::comment_attached`], returning the first matching
    /// comment's text (for justification reporting).
    pub fn attached_comment_text(
        &self,
        anchor: usize,
        pred: &dyn Fn(&str) -> bool,
    ) -> Option<&'a str> {
        self.comments
            .iter()
            .find(|c| {
                let covers = (c.own.0 <= anchor && anchor < c.own.1)
                    || c.node.is_some_and(|(s, e)| s <= anchor && anchor <= e);
                covers && pred(self.text(c.tok))
            })
            .map(|c| self.text(c.tok))
    }

    /// Byte range `[start_of_line(first), end_of_line(last)]` for the
    /// lines a token occupies.
    fn line_span(&self, tok: &Token) -> (usize, usize) {
        let bytes = self.src.as_bytes();
        let mut s = tok.start.min(bytes.len());
        while s > 0 && bytes[s - 1] != b'\n' {
            s -= 1;
        }
        let mut e = tok.end.min(bytes.len());
        while e < bytes.len() && bytes[e] != b'\n' {
            e += 1;
        }
        (s, e)
    }

    fn compute_comments(&self) -> Vec<CommentInfo> {
        let mut out = Vec::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if !t.is_comment() {
                continue;
            }
            let doc = matches!(
                t.kind,
                TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true, .. }
            );
            let own = self.line_span(t);
            // Walk forward to the adjacent node: chain through comments
            // whose gaps stay within one line; a blank line breaks the
            // attachment entirely.
            let end_line = |tok: &Token| crate::lex::line_of(self.src, tok.end);
            let mut last_line = end_line(t);
            let mut j = i + 1;
            let mut node = None;
            while let Some(n) = self.tokens.get(j) {
                if n.line > last_line + 1 {
                    break;
                }
                if n.is_comment() {
                    last_line = end_line(n);
                    j += 1;
                    continue;
                }
                node = Some(self.node_range(j));
                break;
            }
            out.push(CommentInfo {
                tok: i,
                doc,
                own,
                node,
            });
        }
        out
    }

    /// The byte range of the syntactic node starting at code token `first`:
    /// attributes, then the header/statement through the first top-level
    /// `;`, `,`, or opening `{` (inclusive). Groups are opaque.
    fn node_range(&self, first: usize) -> (usize, usize) {
        let start = self.tokens[first].start;
        let mut k = first;
        // Skip leading attributes `#[...]` / `#![...]`.
        loop {
            if !self.is_op(k, "#") {
                break;
            }
            let mut j = match self.next(k) {
                Some(j) => j,
                None => break,
            };
            if self.is_op(j, "!") {
                j = match self.next(j) {
                    Some(j) => j,
                    None => break,
                };
            }
            if !self.is_open(j, Delim::Bracket) {
                break;
            }
            let close = match self.partner.get(j).copied().flatten() {
                Some(c) => c,
                None => break,
            };
            k = match self.next(close) {
                Some(n) => n,
                None => return (start, self.tokens[close].end),
            };
        }
        let mut last = k;
        let mut cur = Some(k);
        while let Some(i) = cur {
            let Some(t) = self.tokens.get(i) else { break };
            match t.kind {
                TokenKind::Open(Delim::Brace) => return (start, t.end),
                TokenKind::Open(_) => {
                    // Jump the group; unbalanced groups end the node.
                    match self.partner.get(i).copied().flatten() {
                        Some(close) => {
                            last = close;
                            cur = self.next(close);
                            continue;
                        }
                        None => break,
                    }
                }
                TokenKind::Close(_) => return (start, self.tokens[last].end),
                TokenKind::Op if self.text(i) == ";" || self.text(i) == "," => {
                    return (start, t.end)
                }
                _ => {}
            }
            last = i;
            cur = self.next(i);
        }
        (start, self.tokens[last].end)
    }

    fn compute_test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.tokens.len()];
        let mut i = 0usize;
        while i < self.tokens.len() {
            if !self.is_op(i, "#") {
                i += 1;
                continue;
            }
            let Some(open) = self.next(i) else { break };
            if !self.is_open(open, Delim::Bracket) {
                i += 1;
                continue;
            }
            let Some(close) = self.partner.get(open).copied().flatten() else {
                i += 1;
                continue;
            };
            // The attribute must read exactly `cfg ( test )`.
            let inner: Vec<&str> = (open + 1..close)
                .filter(|&k| !self.tokens[k].is_comment())
                .map(|k| self.text(k))
                .collect();
            if inner != ["cfg", "(", "test", ")"] {
                i = close + 1;
                continue;
            }
            // Item end: first top-level `;`, or the matching `}` of the
            // first top-level brace group.
            let mut end = self.tokens.len().saturating_sub(1);
            let mut cur = self.next(close);
            while let Some(k) = cur {
                let Some(t) = self.tokens.get(k) else { break };
                match t.kind {
                    TokenKind::Open(Delim::Brace) => {
                        end = self.partner.get(k).copied().flatten().unwrap_or(end);
                        break;
                    }
                    TokenKind::Open(_) => {
                        cur = self
                            .partner
                            .get(k)
                            .copied()
                            .flatten()
                            .and_then(|c| self.next(c));
                        continue;
                    }
                    TokenKind::Op if self.text(k) == ";" => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                end = k;
                cur = self.next(k);
            }
            for flag in mask.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        }
        mask
    }

    fn compute_fns(&self) -> Vec<FnInfo> {
        let mut out = Vec::new();
        for i in 0..self.tokens.len() {
            if !self.is_ident(i, "fn") {
                continue;
            }
            // The name must follow (skips `fn`-pointer types like `fn(u8)`).
            let Some(name) = self.next(i) else { continue };
            if self.tokens[name].kind != TokenKind::Ident {
                continue;
            }
            // Walk back over qualifiers to find `pub` and the anchor.
            let mut anchor = i;
            let mut is_pub = false;
            let mut back = self.prev(i);
            while let Some(b) = back {
                let t = &self.tokens[b];
                let txt = self.text(b);
                let qualifier = matches!(txt, "const" | "async" | "unsafe" | "extern")
                    || matches!(t.kind, TokenKind::Str { .. });
                if qualifier {
                    anchor = b;
                    back = self.prev(b);
                    continue;
                }
                if self.is_ident(b, "pub") {
                    anchor = b;
                    is_pub = true;
                } else if matches!(t.kind, TokenKind::Close(Delim::Paren)) {
                    // `pub(crate)` / `pub(in …)`: the paren group's opener
                    // is preceded by `pub`.
                    let open = (0..b)
                        .rev()
                        .find(|&o| self.partner.get(o) == Some(&Some(b)));
                    if let Some(open) = open {
                        if let Some(p) = self.prev(open) {
                            if self.is_ident(p, "pub") {
                                anchor = p;
                                is_pub = true;
                            }
                        }
                    }
                }
                break;
            }
            // Scan forward: generics (angle-tracked), params and groups
            // are opaque; find `->` and the body `{` or `;`.
            let mut angle = 0i32;
            let mut arrow: Option<usize> = None;
            let mut ret_start: Option<usize> = None;
            let mut body = None;
            let mut cur = self.next(name);
            while let Some(k) = cur {
                let Some(t) = self.tokens.get(k) else { break };
                match t.kind {
                    TokenKind::Op => match self.text(k) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "<<" => angle += 2,
                        ">>" => angle -= 2,
                        "->" if angle <= 0 && arrow.is_none() => {
                            arrow = Some(k);
                            ret_start = self.next(k);
                        }
                        ";" if angle <= 0 => break,
                        _ => {}
                    },
                    TokenKind::Open(Delim::Brace) if angle <= 0 => {
                        body = self
                            .partner
                            .get(k)
                            .copied()
                            .flatten()
                            .map(|close| (k, close));
                        break;
                    }
                    TokenKind::Open(_) => {
                        cur = self
                            .partner
                            .get(k)
                            .copied()
                            .flatten()
                            .and_then(|c| self.next(c));
                        continue;
                    }
                    TokenKind::Close(_) => break,
                    _ => {}
                }
                cur = self.next(k);
            }
            let ret = match (ret_start, body) {
                (Some(s), Some((open, _))) if s < open => Some((s, open)),
                (Some(s), None) => {
                    // Bodiless decl: return type runs to the `;`.
                    let mut e = s;
                    let mut c = Some(s);
                    while let Some(k) = c {
                        if self.is_op(k, ";") {
                            break;
                        }
                        e = k + 1;
                        c = self.next(k);
                    }
                    Some((s, e))
                }
                _ => None,
            };
            let _ = arrow;
            out.push(FnInfo {
                anchor,
                name,
                is_pub,
                ret,
                body,
            });
        }
        out
    }
}

/// Match delimiters across the token list. Unbalanced delimiters get
/// `None`; mismatched shapes still pair positionally within their shape's
/// own stack, which is the forgiving behaviour a lint wants on mid-edit
/// files.
fn match_delims(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut partner = vec![None; tokens.len()];
    let mut stacks: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let slot = |d: Delim| match d {
        Delim::Paren => 0usize,
        Delim::Bracket => 1,
        Delim::Brace => 2,
    };
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Open(d) => stacks[slot(d)].push(i),
            TokenKind::Close(d) => {
                if let Some(open) = stacks[slot(d)].pop() {
                    partner[open] = Some(i);
                    partner[i] = Some(open);
                }
            }
            _ => {}
        }
    }
    partner
}

/// Per-token links to the neighbouring non-comment tokens.
fn code_links(tokens: &[Token]) -> (Vec<Option<usize>>, Vec<Option<usize>>) {
    let n = tokens.len();
    let mut next = vec![None; n];
    let mut prev = vec![None; n];
    let mut last: Option<usize> = None;
    for i in 0..n {
        prev[i] = last;
        if !tokens[i].is_comment() {
            last = Some(i);
        }
    }
    let mut following: Option<usize> = None;
    for i in (0..n).rev() {
        next[i] = following;
        if !tokens[i].is_comment() {
            following = Some(i);
        }
    }
    (next, prev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_matches_nested_groups() {
        let src = "fn f(a: (u8, [u8; 2])) { g(1); }";
        let f = SourceFile::analyze(src);
        for (i, t) in f.tokens.iter().enumerate() {
            if let TokenKind::Open(_) = t.kind {
                let close = f.partner[i].expect("balanced");
                assert_eq!(f.partner[close], Some(i));
                assert!(close > i);
            }
        }
    }

    #[test]
    fn test_mask_covers_attribute_through_item() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() {}\n}\npub fn after() {}\n";
        let f = SourceFile::analyze(src);
        let idx_of = |text: &str| {
            f.tokens
                .iter()
                .position(|t| t.text(src) == text)
                .expect("token present")
        };
        assert!(!f.in_test(idx_of("live")));
        assert!(f.in_test(idx_of("tests")));
        assert!(f.in_test(idx_of("inner")));
        assert!(!f.in_test(idx_of("after")));
    }

    #[test]
    fn fn_info_finds_pub_ret_and_body() {
        let src = "pub fn shares(n: usize) -> Vec<f64> { vec![0.0; n] }\nfn helper() {}\n";
        let f = SourceFile::analyze(src);
        assert_eq!(f.fns.len(), 2);
        let s = &f.fns[0];
        assert!(s.is_pub);
        assert_eq!(f.text(s.name), "shares");
        assert_eq!(f.text(s.anchor), "pub");
        let (rs, re) = s.ret.expect("ret range");
        let ret: String = (rs..re).map(|k| f.text(k)).collect();
        assert_eq!(ret, "Vec<f64>");
        assert!(s.body.is_some());
        assert!(!f.fns[1].is_pub);
    }

    #[test]
    fn fn_generics_with_fn_bounds_do_not_confuse_params() {
        let src = "pub fn apply<F: Fn(u8) -> u8>(f: F) -> Vec<f64> { Vec::new() }";
        let f = SourceFile::analyze(src);
        assert_eq!(f.fns.len(), 1);
        let (rs, re) = f.fns[0].ret.expect("ret");
        let ret: String = (rs..re).map(|k| f.text(k)).collect();
        assert_eq!(ret, "Vec<f64>");
    }

    #[test]
    fn comment_attaches_to_adjacent_node_only() {
        let src = "\
// attached to f
pub fn f() {}

// detached by the blank line below

pub fn g() {}
";
        let f = SourceFile::analyze(src);
        let f_pub = f
            .tokens
            .iter()
            .position(|t| t.text(src) == "pub")
            .expect("first pub");
        let g_pub = f
            .tokens
            .iter()
            .rposition(|t| t.text(src) == "pub")
            .expect("second pub");
        let anchor_f = f.tokens[f_pub].start;
        let anchor_g = f.tokens[g_pub].start;
        assert!(f.comment_attached(anchor_f, &|c: &str| c.contains("attached to f")));
        assert!(!f.comment_attached(anchor_g, &|c: &str| c.contains("detached")));
    }

    #[test]
    fn comment_attaches_across_multi_line_attributes() {
        let src = "\
// lint: allow(R3): span-based attachment must reach the fn
#[allow(
    clippy::needless_pass_by_value,
)]
pub fn shares() -> Vec<f64> { Vec::new() }
";
        let f = SourceFile::analyze(src);
        let pub_tok = f
            .tokens
            .iter()
            .position(|t| t.text(src) == "pub")
            .expect("pub");
        let anchor = f.tokens[pub_tok].start;
        assert!(f.comment_attached(anchor, &|c: &str| c.contains("allow(R3)")));
    }

    #[test]
    fn trailing_comment_covers_its_own_line_and_next_node() {
        let src = "let a = 1; // SAFETY: covers this line\nunsafe { use_it(a) };\n";
        let f = SourceFile::analyze(src);
        let uns = f
            .tokens
            .iter()
            .position(|t| t.text(src) == "unsafe")
            .expect("unsafe");
        let a_tok = f.tokens.iter().position(|t| t.text(src) == "a").expect("a");
        let pred = |c: &str| c.contains("SAFETY:");
        assert!(f.comment_attached(f.tokens[a_tok].start, &pred));
        assert!(f.comment_attached(f.tokens[uns].start, &pred));
    }

    #[test]
    fn statement_node_extends_through_multi_line_chain() {
        let src = "\
// lint: allow(R1): multi-line chain
let v = stream
    .collect::<Vec<_>>()
    .pop()
    .unwrap();
";
        let f = SourceFile::analyze(src);
        let unw = f
            .tokens
            .iter()
            .position(|t| t.text(src) == "unwrap")
            .expect("unwrap");
        assert!(f.comment_attached(f.tokens[unw].start, &|c: &str| c.contains("allow(R1)")));
    }
}
