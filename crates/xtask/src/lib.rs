//! Workspace automation library for the bandwidth-partitioning model.
//!
//! The `xtask` binary fronts this crate; the library exists so the lint
//! engine's layers are independently testable (and runnable under miri):
//!
//! * [`lex`] — a dependency-free, total Rust lexer producing spanned
//!   tokens (raw strings, nested block comments, lifetimes vs chars, doc
//!   comments, shebangs).
//! * [`tokens`] — structural analysis over the token stream:
//!   brace-matched delimiter trees, `#[cfg(test)]` masking, fn boundaries
//!   and span-based comment attachment.
//! * [`engine`] — the per-file rule evaluator (R1–R14) plus
//!   `lint: allow(R<N>)` suppression resolution.
//! * [`lint`] — the rule catalogue, tree walker, inventory cross-check
//!   and machine-readable report.
//! * [`symbols`] — the workspace symbol index: per-file fn/struct/import
//!   facts, call sites, danger sites and lock acquisitions.
//! * [`callgraph`] — the approximate workspace call graph over the index,
//!   with tiered heuristic resolution and reachability queries.
//! * [`analyze`] — the interprocedural rules (A1–A4) with text/JSON/SARIF
//!   rendering and a warm-run cache (`cargo xtask analyze`).
//! * [`json`] — a minimal JSON parser used to structurally validate the
//!   emitted reports in tests.

pub mod analyze;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lex;
pub mod lint;
pub mod symbols;
pub mod tokens;
