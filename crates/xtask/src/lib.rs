//! Workspace automation library for the bandwidth-partitioning model.
//!
//! The `xtask` binary fronts this crate; the library exists so the lint
//! engine's layers are independently testable (and runnable under miri):
//!
//! * [`lex`] — a dependency-free, total Rust lexer producing spanned
//!   tokens (raw strings, nested block comments, lifetimes vs chars, doc
//!   comments, shebangs).
//! * [`tokens`] — structural analysis over the token stream:
//!   brace-matched delimiter trees, `#[cfg(test)]` masking, fn boundaries
//!   and span-based comment attachment.
//! * [`engine`] — the rule evaluator (R1–R13) plus `lint: allow(R<N>)`
//!   suppression resolution.
//! * [`lint`] — the rule catalogue, tree walker, inventory cross-check
//!   and machine-readable report.

pub mod engine;
pub mod lex;
pub mod lint;
pub mod tokens;
