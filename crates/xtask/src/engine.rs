//! The rule engine: R1–R14 evaluated over the [`crate::tokens`] layer.
//!
//! Every rule works on spanned tokens and brace-matched structure — never
//! on raw text — so string literals, raw strings, nested block comments
//! and char/lifetime ambiguity can not produce false positives by
//! construction. Each check emits a [`Finding`] anchored at a byte span;
//! [`run`] then resolves `lint: allow(R<N>)` markers against the
//! span-based comment-attachment model and marks matching findings
//! suppressed (with the justification text preserved for reporting)
//! instead of silently dropping them.

use crate::lex::{Delim, TokenKind};
use crate::lint::Rule;
use crate::tokens::SourceFile;

/// Where a file sits in the workspace — controls which rules run.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Vendored-pool file (`vendor/rayon/src/**`): only R6/R7/R8 apply.
    pub vendor: bool,
    /// The vendored pool's shim module itself (exempt from the R7
    /// std-reference ban).
    pub shim: bool,
    /// Share-producing crate (R3): `crates/core`, `crates/bwpartd`.
    pub share_producer: bool,
    /// `crates/experiments` (R5).
    pub experiments: bool,
    /// Simulator hot crate (R9): `crates/dram`, `crates/mc`.
    pub hot_sim: bool,
    /// Match-exhaustiveness scope (R10): `crates/core`, `crates/bwpartd`.
    pub match_exhaustive: bool,
    /// Unit-safety scope (R11): all first-party crates.
    pub unit_safety: bool,
    /// Whether the owning crate wires the `trace` feature to `bwpart-obs`
    /// (R12). `None` means unknown (legacy single-file entry points): the
    /// rule is skipped.
    pub obs_wired: Option<bool>,
    /// Mutex acquisition-order scope (R13): `bwpartd` server/engine.
    pub lock_order: bool,
    /// SoA timing-core hot path (R14): `crates/dram/src/soa.rs`.
    pub soa_hot: bool,
}

/// One raw finding, anchored at a byte span of the source.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Byte offset of the anchor token's start.
    pub start: usize,
    /// Byte offset of the anchor token's end.
    pub end: usize,
    /// Human-readable explanation.
    pub message: String,
    /// Suppressed by an attached `lint: allow(R<N>)` marker?
    pub suppressed: bool,
    /// The marker comment's text, when suppressed.
    pub justification: Option<String>,
}

/// Run every applicable rule over `src` and resolve allow markers.
pub fn run(src: &str, ctx: &FileCtx) -> Vec<Finding> {
    let f = SourceFile::analyze(src);
    let mut out = Vec::new();
    if ctx.vendor {
        rule_r6(&f, &mut out);
        rule_r7_static_mut(&f, &mut out);
        if !ctx.shim {
            rule_r7_vendor_std(&f, &mut out);
        }
        rule_r8(&f, &mut out);
    } else {
        rule_r1(&f, &mut out);
        rule_r2(&f, &mut out);
        rule_r4(&f, &mut out);
        rule_r6(&f, &mut out);
        rule_r7_static_mut(&f, &mut out);
        rule_r8(&f, &mut out);
        if ctx.experiments {
            rule_r5(&f, &mut out);
        }
        if ctx.share_producer {
            rule_r3(&f, &mut out);
        }
        if ctx.hot_sim {
            rule_r9(&f, &mut out);
        }
        if ctx.match_exhaustive {
            rule_r10(&f, &mut out);
        }
        if ctx.unit_safety {
            rule_r11(&f, &mut out);
        }
        if ctx.obs_wired == Some(false) {
            rule_r12(&f, &mut out);
        }
        if ctx.lock_order {
            rule_r13(&f, &mut out);
        }
        if ctx.soa_hot {
            rule_r14(&f, &mut out);
        }
    }
    // Resolve suppression markers against the span-attachment model.
    for finding in &mut out {
        let plain = format!("lint: allow({})", finding.rule.code());
        let tight = format!("lint:allow({})", finding.rule.code());
        let pred = |c: &str| c.contains(plain.as_str()) || c.contains(tight.as_str());
        if let Some(text) = f.attached_comment_text(finding.start, &pred) {
            finding.suppressed = true;
            finding.justification = Some(text.trim().to_string());
        }
    }
    out.sort_by_key(|v| (v.start, v.rule.code()));
    out
}

/// Count the `unsafe` sites R8 audits (non-test code), token-accurately,
/// for the `UNSAFE_AUDIT.md` cross-check.
///
/// Macro semantics (pinned): an `unsafe` token inside a `macro_rules!`
/// body counts **once per occurrence in the definition**, never per
/// expansion — the audit inventories reviewable source sites, and the
/// reviewable site is the definition (each occurrence there also needs
/// its own `// SAFETY:` comment under R8). Macro *invocations* contribute
/// zero sites: the token does not exist at the call site.
pub fn unsafe_sites(src: &str) -> usize {
    let f = SourceFile::analyze(src);
    (0..f.tokens.len())
        .filter(|&i| f.is_ident(i, "unsafe") && !f.in_test(i))
        .count()
}

fn emit(f: &SourceFile, out: &mut Vec<Finding>, rule: Rule, tok: usize, message: String) {
    let t = &f.tokens[tok];
    out.push(Finding {
        rule,
        start: t.start,
        end: t.end,
        message,
        suppressed: false,
        justification: None,
    });
}

/// Is the ident at `i` a called method (`.name(...)`)?
pub(crate) fn is_method_call(f: &SourceFile, i: usize) -> bool {
    f.prev(i).is_some_and(|p| f.is_op(p, "."))
        && f.next(i).is_some_and(|n| f.is_open(n, Delim::Paren))
}

fn rule_r1(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || f.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = f.text(i);
        if matches!(text, "unwrap" | "expect") && is_method_call(f, i) {
            emit(
                f,
                out,
                Rule::R1,
                i,
                format!(
                    ".{text}() in library code: return ModelError (or annotate \
                     `// lint: allow(R1): <reason>`)"
                ),
            );
        }
        if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
            && f.next(i).is_some_and(|n| f.is_op(n, "!"))
            && !f.prev(i).is_some_and(|p| f.is_op(p, "."))
        {
            emit(
                f,
                out,
                Rule::R1,
                i,
                format!(
                    "{text}! in library code: return ModelError (or annotate \
                     `// lint: allow(R1): <reason>`)"
                ),
            );
        }
    }
}

/// Is token `i` a float literal, or a `-` immediately followed by one?
fn is_float_at(f: &SourceFile, i: usize) -> bool {
    match f.tokens[i].kind {
        TokenKind::Float => true,
        TokenKind::Op if f.text(i) == "-" => f
            .next(i)
            .is_some_and(|n| f.tokens[n].kind == TokenKind::Float),
        _ => false,
    }
}

fn rule_r2(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) {
            continue;
        }
        if f.is_ident(i, "partial_cmp") && f.prev(i).is_some_and(|p| f.is_op(p, ".")) {
            emit(
                f,
                out,
                Rule::R2,
                i,
                "bare .partial_cmp(): use f64::total_cmp for a total order".into(),
            );
            continue;
        }
        if f.tokens[i].kind != TokenKind::Op {
            continue;
        }
        let op = f.text(i);
        if op != "==" && op != "!=" {
            continue;
        }
        let lhs_float = f.prev(i).is_some_and(|p| is_float_at(f, p));
        let rhs_float = f.next(i).is_some_and(|n| is_float_at(f, n));
        if lhs_float || rhs_float {
            let lhs = f.prev(i).map(|p| f.text(p)).unwrap_or("");
            let rhs = f.next(i).map(|n| f.text(n)).unwrap_or("");
            emit(
                f,
                out,
                Rule::R2,
                i,
                format!(
                    "float-literal comparison `{lhs} {op} {rhs}`: use \
                     contracts::approx_eq or restructure"
                ),
            );
        }
    }
}

/// The certification calls R3 accepts inside a producer's body.
/// `certified` covers `Allocation::certified`, the typed-allocation
/// constructor that runs the simplex/cap contracts internally.
pub(crate) const R3_CERTIFIERS: [&str; 4] = [
    "validate_shares",
    "ensures_simplex",
    "ensures_capped",
    "certified",
];

/// Return types R3 (and A2, which mirrors this predicate over
/// `ret_text`) treat as share/allocation producers: a bare share vector,
/// or one of the owned multi-resource wrappers (`Allocation`,
/// `MultiAllocation`, `CoordOutcome`). Reference returns (`&Allocation`
/// accessors) hand out an already-certified value and are exempt.
pub(crate) fn is_share_producer_ret(ret: &str) -> bool {
    ret.contains("Vec<f64>")
        || ((ret.contains("Allocation") || ret.contains("CoordOutcome")) && !ret.contains('&'))
}

fn rule_r3(f: &SourceFile, out: &mut Vec<Finding>) {
    for info in &f.fns {
        if !info.is_pub || f.in_test(info.anchor) {
            continue;
        }
        let Some((rs, re)) = info.ret else { continue };
        let Some((body_open, body_close)) = info.body else {
            continue;
        };
        let mut ret = String::new();
        for k in rs..re {
            if f.tokens[k].is_comment() {
                continue;
            }
            if f.is_ident(k, "where") {
                break;
            }
            ret.push_str(f.text(k));
        }
        if !is_share_producer_ret(&ret) {
            continue;
        }
        let certified = (body_open + 1..body_close).any(|k| {
            let text = f.text(k);
            (f.tokens[k].kind == TokenKind::Ident && R3_CERTIFIERS.contains(&text))
                || (f.is_ident(k, "invariant") && f.next(k).is_some_and(|n| f.is_op(n, "!")))
        });
        if !certified {
            let name = f.text(info.name);
            emit(
                f,
                out,
                Rule::R3,
                info.anchor,
                format!(
                    "pub fn {name} returns shares (Vec<f64> / Allocation / \
                     MultiAllocation / CoordOutcome) without certifying them via \
                     validate_shares / ensures_simplex! / ensures_capped! / \
                     Allocation::certified / invariant!"
                ),
            );
        }
    }
}

fn rule_r4(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || !f.is_op(i, "#") {
            continue;
        }
        let Some(mut j) = f.next(i) else { continue };
        if f.is_op(j, "!") {
            match f.next(j) {
                Some(n) => j = n,
                None => continue,
            }
        }
        if !f.is_open(j, Delim::Bracket) {
            continue;
        }
        let Some(close) = f.partner[j] else { continue };
        let inner: String = (j + 1..close)
            .filter(|&k| !f.tokens[k].is_comment())
            .map(|k| f.text(k))
            .collect();
        if !inner.contains("allow(clippy::") {
            continue;
        }
        // A plain (non-doc) `//` comment with real content counts as the
        // justification.
        let justified = f.comment_attached(f.tokens[i].start, &|c: &str| {
            c.starts_with("//")
                && !c.starts_with("///")
                && !c.starts_with("//!")
                && c.trim_start_matches('/').trim().len() > 2
        });
        if !justified {
            emit(
                f,
                out,
                Rule::R4,
                i,
                "#[allow(clippy::...)] needs a justification comment on the same \
                 or previous line"
                    .into(),
            );
        }
    }
}

fn rule_r5(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if !f.in_test(i) && f.is_ident(i, "step") && is_method_call(f, i) {
            emit(
                f,
                out,
                Rule::R5,
                i,
                ".step() in experiment code: advance the simulator via \
                 CmpSystem::run so event-driven fast-forward applies (or \
                 annotate `// lint: allow(R5): <reason>`)"
                    .into(),
            );
        }
    }
}

fn rule_r6(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) {
            continue;
        }
        let text = f.text(i);
        if f.tokens[i].kind != TokenKind::Ident || !matches!(text, "Relaxed" | "AcqRel") {
            continue;
        }
        // Only the path form (`Ordering::Relaxed`) is an ordering use.
        if !f.prev(i).is_some_and(|p| f.is_op(p, "::")) {
            continue;
        }
        let justified = f.comment_attached(f.tokens[i].start, &|c: &str| {
            c.contains("hb:") || c.contains("happens-before")
        });
        if !justified {
            emit(
                f,
                out,
                Rule::R6,
                i,
                format!(
                    "Ordering::{text} without a happens-before justification: \
                     add a comment naming the hb: edge (or why none is needed)"
                ),
            );
        }
    }
}

fn rule_r7_static_mut(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        // `'static` lexes as one Lifetime token, so a bare `static` ident
        // here really is the item keyword.
        if !f.in_test(i)
            && f.is_ident(i, "static")
            && f.next(i).is_some_and(|n| f.is_ident(n, "mut"))
        {
            emit(
                f,
                out,
                Rule::R7,
                i,
                "static mut is banned: use an atomic, a lock, or OnceLock".into(),
            );
        }
    }
}

fn rule_r7_vendor_std(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || !f.is_ident(i, "std") {
            continue;
        }
        // `crate::std`-style re-export paths are not the real std.
        if f.prev(i).is_some_and(|p| f.is_op(p, "::")) {
            continue;
        }
        let Some(sep) = f.next(i) else { continue };
        if !f.is_op(sep, "::") {
            continue;
        }
        let Some(m) = f.next(sep) else { continue };
        if f.is_ident(m, "sync") || f.is_ident(m, "thread") {
            let module = f.text(m);
            emit(
                f,
                out,
                Rule::R7,
                i,
                format!(
                    "direct std::{module} reference in vendored pool code: go through \
                     crate::shim so the loomlite model checker covers this path"
                ),
            );
        }
    }
}

fn rule_r8(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || !f.is_ident(i, "unsafe") {
            continue;
        }
        let justified = f.comment_attached(f.tokens[i].start, &|c: &str| c.contains("SAFETY:"));
        if !justified {
            emit(
                f,
                out,
                Rule::R8,
                i,
                "unsafe without a // SAFETY: comment on the same line or the \
                 comment block above"
                    .into(),
            );
        }
    }
}

/// Per-cycle/per-tick functions R9 inspects in the simulator's hot crates.
pub(crate) const R9_HOT_FNS: [&str; 7] = [
    "tick",
    "step",
    "issue",
    "issuable_at",
    "probe",
    "enqueue",
    "pop_completion",
];

fn rule_r9(f: &SourceFile, out: &mut Vec<Finding>) {
    for info in &f.fns {
        if f.in_test(info.name) || !R9_HOT_FNS.contains(&f.text(info.name)) {
            continue;
        }
        let Some((body_open, body_close)) = info.body else {
            continue;
        };
        let fn_name = f.text(info.name);
        for k in body_open + 1..body_close {
            let method = f.text(k);
            if f.tokens[k].kind == TokenKind::Ident
                && matches!(method, "counter" | "gauge" | "histogram")
                && is_method_call(f, k)
            {
                emit(
                    f,
                    out,
                    Rule::R9,
                    k,
                    format!(
                        "direct registry `.{method}(...)` call inside hot fn `{fn_name}`: \
                         pre-resolve the handle at attach time and touch it through \
                         the obs_*! macros (or annotate `// lint: allow(R9): <reason>`)"
                    ),
                );
            }
        }
    }
}

/// The SoA timing core's per-tick surface (R14): every function the
/// controller's scheduling scan calls once per candidate per DRAM tick.
/// Stack-only by contract — one heap allocation here turns a
/// nanosecond-scale probe into a malloc/free pair millions of times per
/// simulated second, which is exactly the overhead the
/// struct-of-arrays rewrite exists to remove.
pub(crate) const R14_HOT_FNS: [&str; 8] = [
    "bank_earliest",
    "grid_clear",
    "raw_probe",
    "probe",
    "issuable_at",
    "channel_floor",
    "commit",
    "quiesce_at",
];

/// Allocating method names R14 flags when called (`.name(...)`) inside a
/// hot function.
const R14_ALLOC_METHODS: [&str; 6] = [
    "push",
    "push_back",
    "to_vec",
    "collect",
    "reserve",
    "extend",
];

fn rule_r14(f: &SourceFile, out: &mut Vec<Finding>) {
    for info in &f.fns {
        if f.in_test(info.name) || !R14_HOT_FNS.contains(&f.text(info.name)) {
            continue;
        }
        let Some((body_open, body_close)) = info.body else {
            continue;
        };
        let fn_name = f.text(info.name);
        for k in body_open + 1..body_close {
            if f.tokens[k].kind != TokenKind::Ident {
                continue;
            }
            let text = f.text(k);
            let hit = if R14_ALLOC_METHODS.contains(&text) && is_method_call(f, k) {
                Some(format!(".{text}(...)"))
            } else if text == "vec" && f.next(k).is_some_and(|n| f.is_op(n, "!")) {
                Some("vec![...]".to_string())
            } else if text == "Box"
                && f.next(k).is_some_and(|n| f.is_op(n, "::"))
                && f.next(k)
                    .and_then(|n| f.next(n))
                    .is_some_and(|n| f.is_ident(n, "new"))
            {
                Some("Box::new(...)".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                emit(
                    f,
                    out,
                    Rule::R14,
                    k,
                    format!(
                        "heap allocation `{what}` inside SoA hot fn `{fn_name}`: the \
                         per-tick timing core is stack-only by contract — hoist the \
                         buffer to construction time (or annotate \
                         `// lint: allow(R14): <reason>`)"
                    ),
                );
            }
        }
    }
}

/// Enum types whose `match`es must stay exhaustive (R10): a wildcard arm
/// would let a newly added scheme variant / error code silently skip
/// certification or wire handling.
const R10_TARGETS: [&str; 3] = ["PartitionScheme", "Scheme", "ErrorCode"];

fn rule_r10(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || !f.is_ident(i, "match") {
            continue;
        }
        // Head: everything to the first top-level `{` (groups opaque).
        let mut cur = f.next(i);
        let mut arms_open = None;
        while let Some(k) = cur {
            match f.tokens[k].kind {
                TokenKind::Open(Delim::Brace) => {
                    arms_open = Some(k);
                    break;
                }
                TokenKind::Open(_) => {
                    cur = f.partner[k].and_then(|c| f.next(c));
                    continue;
                }
                TokenKind::Close(_) => break,
                _ => {}
            }
            cur = f.next(k);
        }
        let Some(arms_open) = arms_open else { continue };
        let Some(arms_close) = f.partner[arms_open] else {
            continue;
        };
        let arms = parse_arms(f, arms_open, arms_close);
        let target = arms.iter().find_map(|arm| {
            arm.all_pattern_tokens.iter().find_map(|&k| {
                let t = f.text(k);
                R10_TARGETS.iter().copied().find(|&target| t == target)
            })
        });
        let Some(target) = target else { continue };
        for arm in &arms {
            for alt in &arm.alternatives {
                // A catch-all alternative is a lone `_` or a lone
                // lowercase binding ident; lone uppercase idents are unit
                // variants / consts, and anything longer is a real pattern.
                if alt.len() != 1 {
                    continue;
                }
                let k = alt[0];
                if f.tokens[k].kind != TokenKind::Ident {
                    continue;
                }
                let text = f.text(k);
                let lone_wild = text == "_"
                    || (text != "true"
                        && text != "false"
                        && text
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_lowercase() || c == '_'));
                if lone_wild {
                    emit(
                        f,
                        out,
                        Rule::R10,
                        k,
                        format!(
                            "non-exhaustive match on {target}: catch-all arm `{text}` \
                             hides newly added variants — list every variant explicitly \
                             so adding one forces a review here"
                        ),
                    );
                }
            }
        }
    }
}

struct Arm {
    /// Every pattern token, including group contents (for target typing).
    all_pattern_tokens: Vec<usize>,
    /// Top-level `|`-separated alternatives; groups appear as their
    /// opening token only (so a lone ident really is lone).
    alternatives: Vec<Vec<usize>>,
}

fn parse_arms(f: &SourceFile, open: usize, close: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut cur = f.next(open).filter(|&k| k < close);
    while let Some(start) = cur {
        let mut all = Vec::new();
        let mut alternatives = vec![Vec::new()];
        let mut in_guard = false;
        let mut k = Some(start);
        // Pattern (and guard) up to the top-level `=>`.
        while let Some(i) = k.filter(|&i| i < close) {
            match f.tokens[i].kind {
                TokenKind::Op if f.text(i) == "=>" => {
                    k = f.next(i);
                    break;
                }
                TokenKind::Op if f.text(i) == "|" && !in_guard => {
                    alternatives.push(Vec::new());
                    k = f.next(i);
                    continue;
                }
                TokenKind::Ident if f.text(i) == "if" && !in_guard => {
                    in_guard = true;
                    k = f.next(i);
                    continue;
                }
                TokenKind::Open(_) => {
                    let end = f.partner[i].unwrap_or(i);
                    if !in_guard {
                        all.extend(i..=end);
                        if let Some(last) = alternatives.last_mut() {
                            last.push(i);
                        }
                    }
                    k = f.next(end);
                    continue;
                }
                _ => {
                    if !in_guard {
                        all.push(i);
                        if let Some(last) = alternatives.last_mut() {
                            last.push(i);
                        }
                    }
                }
            }
            k = f.next(i);
        }
        arms.push(Arm {
            all_pattern_tokens: all,
            alternatives,
        });
        // Expression: a brace block (optionally followed by `,`), or
        // everything to the next top-level `,`.
        match k.filter(|&i| i < close) {
            Some(i) if f.is_open(i, Delim::Brace) => {
                k = f.partner[i].and_then(|c| f.next(c));
                if let Some(c) = k.filter(|&c| c < close) {
                    if f.is_op(c, ",") {
                        k = f.next(c);
                    }
                }
            }
            Some(mut i) => loop {
                if i >= close {
                    k = None;
                    break;
                }
                match f.tokens[i].kind {
                    TokenKind::Op if f.text(i) == "," => {
                        k = f.next(i);
                        break;
                    }
                    TokenKind::Open(_) => {
                        let end = f.partner[i].unwrap_or(i);
                        match f.next(end) {
                            Some(n) => i = n,
                            None => {
                                k = None;
                                break;
                            }
                        }
                    }
                    _ => match f.next(i) {
                        Some(n) => i = n,
                        None => {
                            k = None;
                            break;
                        }
                    },
                }
            },
            None => k = None,
        }
        cur = k.filter(|&i| i < close);
    }
    arms
}

/// R11 unit classes, keyed by the final ident of an operand.
pub(crate) fn unit_class(name: &str) -> Option<&'static str> {
    if name == "cycles" || name == "cycle" || name.ends_with("_cycles") || name.ends_with("_cycle")
    {
        Some("cycles")
    } else if name == "ns" || name.ends_with("_ns") {
        Some("ns")
    } else if name == "share"
        || name == "frac"
        || name.ends_with("_share")
        || name.ends_with("_frac")
        || name.ends_with("_fraction")
    {
        Some("share-fraction")
    } else {
        None
    }
}

/// Operators R11 inspects: additive and comparison operators demand both
/// sides in the same unit. `*` and `/` are exempt — that is how
/// conversions are written.
const R11_OPS: [&str; 10] = ["+", "-", "+=", "-=", "==", "!=", "<", "<=", ">", ">="];

/// Classify the operand ending just before token `op`.
fn classify_before<'a>(f: &SourceFile<'a>, op: usize) -> Option<(&'a str, &'static str)> {
    let p = f.prev(op)?;
    match f.tokens[p].kind {
        TokenKind::Ident => {
            let name = f.text(p);
            Some((name, unit_class(name)?))
        }
        TokenKind::Close(Delim::Paren) => {
            // A call result: classify by the callee's name.
            let open = f.partner[p]?;
            let callee = f.prev(open)?;
            if f.tokens[callee].kind != TokenKind::Ident {
                return None;
            }
            let name = f.text(callee);
            Some((name, unit_class(name)?))
        }
        _ => None,
    }
}

/// Classify the operand starting just after token `op`: walk the
/// path/field/method chain to its final ident.
fn classify_after<'a>(f: &SourceFile<'a>, op: usize) -> Option<(&'a str, &'static str)> {
    let mut a = f.next(op)?;
    if f.is_op(a, "-") {
        a = f.next(a)?;
    }
    if f.tokens[a].kind != TokenKind::Ident {
        return None;
    }
    let mut last = a;
    let mut cur = a;
    while let Some(n) = f.next(cur) {
        match f.tokens[n].kind {
            TokenKind::Op if f.text(n) == "." || f.text(n) == "::" => {
                let Some(seg) = f.next(n) else { break };
                if f.tokens[seg].kind != TokenKind::Ident {
                    break;
                }
                last = seg;
                cur = seg;
            }
            TokenKind::Open(Delim::Paren) => {
                // A call: the chain continues after the group, but the
                // classifying name stays the callee (`ns_to_cycles(x)`).
                let Some(close) = f.partner[n] else { break };
                cur = close;
            }
            _ => break,
        }
    }
    let name = f.text(last);
    Some((name, unit_class(name)?))
}

fn rule_r11(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || f.tokens[i].kind != TokenKind::Op {
            continue;
        }
        let op = f.text(i);
        if !R11_OPS.contains(&op) {
            continue;
        }
        let Some((lhs, lclass)) = classify_before(f, i) else {
            continue;
        };
        let Some((rhs, rclass)) = classify_after(f, i) else {
            continue;
        };
        if lclass != rclass {
            emit(
                f,
                out,
                Rule::R11,
                i,
                format!(
                    "unit mismatch: `{lhs}` ({lclass}) {op} `{rhs}` ({rclass}) \
                     without an explicit conversion — convert one side \
                     (e.g. ns_to_cycles / cycles_to_ns) or rename the ident"
                ),
            );
        }
    }
}

/// The zero-cost observability macros R12 tracks.
const R12_OBS_MACROS: [&str; 4] = ["obs_count", "obs_gauge", "obs_hist", "obs_span"];

fn rule_r12(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.in_test(i) || f.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let name = f.text(i);
        if R12_OBS_MACROS.contains(&name) && f.next(i).is_some_and(|n| f.is_op(n, "!")) {
            emit(
                f,
                out,
                Rule::R12,
                i,
                format!(
                    "{name}! call site in a crate without `trace` feature wiring: \
                     declare `trace = [\"bwpart-obs/trace\"]` under [features] (or \
                     enable the dep feature directly) so tracing builds reach this site"
                ),
            );
        }
    }
}

/// One lock acquisition (R13).
struct Acquisition {
    /// Lock name (`engine` for both `engine.lock()` and `lock_engine(..)`).
    name: String,
    /// The acquiring ident token.
    tok: usize,
    /// Last token index while the guard is live.
    held_to: usize,
}

fn rule_r13(f: &SourceFile, out: &mut Vec<Finding>) {
    // The order table is declared in-source:
    //   `// lint: lock-order: outer < inner`
    let mut order: Option<Vec<String>> = None;
    for c in &f.comments {
        let text = f.text(c.tok);
        if let Some(pos) = text.find("lock-order:") {
            let names: Vec<String> = text[pos + "lock-order:".len()..]
                .split('<')
                .filter_map(|piece| piece.split_whitespace().next())
                .map(str::to_string)
                .collect();
            if !names.is_empty() && order.is_none() {
                order = Some(names);
            }
        }
    }

    let mut acqs: Vec<Acquisition> = Vec::new();
    for i in 0..f.tokens.len() {
        if f.in_test(i) || f.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = f.text(i);
        let name = if text == "lock" && is_method_call(f, i) {
            // `receiver.lock()`: the receiver ident names the lock.
            let dot = match f.prev(i) {
                Some(d) => d,
                None => continue,
            };
            match f.prev(dot) {
                Some(r) if f.tokens[r].kind == TokenKind::Ident => f.text(r).to_string(),
                _ => continue,
            }
        } else if let Some(suffix) = text.strip_prefix("lock_") {
            // `lock_engine(..)` helper; skip its own definition.
            if suffix.is_empty()
                || !f.next(i).is_some_and(|n| f.is_open(n, Delim::Paren))
                || f.prev(i).is_some_and(|p| f.is_ident(p, "fn"))
            {
                continue;
            }
            suffix.to_string()
        } else {
            continue;
        };
        if let Some(held_to) = held_range(f, i) {
            acqs.push(Acquisition {
                name,
                tok: i,
                held_to,
            });
        }
    }

    if acqs.is_empty() {
        return;
    }
    let Some(order) = order else {
        emit(
            f,
            out,
            Rule::R13,
            acqs[0].tok,
            "file acquires workspace locks but declares no order table: add a \
             `// lint: lock-order: <outer> < <inner>` comment"
                .into(),
        );
        return;
    };
    let rank = |name: &str| order.iter().position(|n| n == name);
    let mut unknown_reported: Vec<&str> = Vec::new();
    for a in &acqs {
        if rank(&a.name).is_none() && !unknown_reported.contains(&a.name.as_str()) {
            unknown_reported.push(&a.name);
            emit(
                f,
                out,
                Rule::R13,
                a.tok,
                format!(
                    "lock `{}` is missing from the declared lock-order table \
                     (`// lint: lock-order: {}`)",
                    a.name,
                    order.join(" < ")
                ),
            );
        }
    }
    for (ai, a) in acqs.iter().enumerate() {
        for b in &acqs[ai + 1..] {
            if b.tok > a.held_to {
                break;
            }
            // `b` is acquired while `a` is held.
            match (rank(&a.name), rank(&b.name)) {
                (Some(ra), Some(rb)) if ra > rb => emit(
                    f,
                    out,
                    Rule::R13,
                    b.tok,
                    format!(
                        "acquires `{}` while holding `{}`: violates the declared \
                         lock order `{}`",
                        b.name,
                        a.name,
                        order.join(" < ")
                    ),
                ),
                (Some(ra), Some(rb)) if ra == rb => emit(
                    f,
                    out,
                    Rule::R13,
                    b.tok,
                    format!(
                        "re-acquires `{}` while a guard for it is already held \
                         (self-deadlock)",
                        b.name
                    ),
                ),
                _ => {}
            }
        }
    }
}

/// How long the guard produced by the lock call at `i` is held: to the end
/// of the statement for a temporary, to the enclosing block's close for a
/// `let`-bound guard whose RHS is exactly the lock call (plus poison
/// recovery postfix).
pub(crate) fn held_range(f: &SourceFile, i: usize) -> Option<usize> {
    let open = f.next(i)?;
    if !f.is_open(open, Delim::Paren) {
        return None;
    }
    let mut end = f.partner[open]?;
    // Postfix poison-recovery chain: .unwrap() / .expect(..) /
    // .unwrap_or_else(..) keep the guard.
    while let Some(dot) = f.next(end).filter(|&d| f.is_op(d, ".")) {
        let Some(m) = f.next(dot) else { break };
        if !matches!(f.text(m), "unwrap" | "expect" | "unwrap_or_else") {
            break;
        }
        let Some(o2) = f.next(m).filter(|&o| f.is_open(o, Delim::Paren)) else {
            break;
        };
        end = f.partner[o2]?;
    }
    // Binding? Walk back over the receiver/path to the expression start,
    // then look for `let <pat> =`.
    let mut expr_start = i;
    while let Some(sep) = f.prev(expr_start) {
        if !(f.is_op(sep, ".") || f.is_op(sep, "::")) {
            break;
        }
        match f.prev(sep) {
            Some(seg) if f.tokens[seg].kind == TokenKind::Ident => expr_start = seg,
            _ => break,
        }
    }
    let whole_rhs = f.next(end).is_some_and(|n| f.is_op(n, ";"));
    let mut bound = false;
    if whole_rhs {
        if let Some(eq) = f.prev(expr_start).filter(|&e| f.is_op(e, "=")) {
            let mut j = f.prev(eq);
            for _ in 0..4 {
                match j {
                    Some(t) if f.is_ident(t, "let") => {
                        bound = true;
                        break;
                    }
                    Some(t)
                        if f.tokens[t].kind == TokenKind::Ident
                            || f.is_ident(t, "mut")
                            || f.is_op(t, ":") =>
                    {
                        j = f.prev(t);
                    }
                    _ => break,
                }
            }
        }
    }
    if bound {
        // Held to the enclosing block's close: first unmatched closer.
        let mut cur = f.next(end);
        let mut last = end;
        while let Some(k) = cur {
            match f.tokens[k].kind {
                TokenKind::Open(_) => {
                    let close = f.partner[k]?;
                    last = close;
                    cur = f.next(close);
                }
                TokenKind::Close(_) => return Some(k),
                _ => {
                    last = k;
                    cur = f.next(k);
                }
            }
        }
        Some(last)
    } else {
        // Temporary: held to the end of the statement.
        let mut cur = f.next(end);
        let mut last = end;
        while let Some(k) = cur {
            match f.tokens[k].kind {
                TokenKind::Op if f.text(k) == ";" || f.text(k) == "," => return Some(k),
                TokenKind::Open(_) => {
                    let close = f.partner[k]?;
                    last = close;
                    cur = f.next(close);
                }
                TokenKind::Close(_) => return Some(last),
                _ => {
                    last = k;
                    cur = f.next(k);
                }
            }
        }
        Some(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(src: &str, tweak: impl FnOnce(&mut FileCtx)) -> Vec<Finding> {
        let mut ctx = FileCtx::default();
        tweak(&mut ctx);
        run(src, &ctx)
            .into_iter()
            .filter(|v| !v.suppressed)
            .collect()
    }

    fn codes(vs: &[Finding]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.code()).collect()
    }

    #[test]
    fn r14_flags_heap_allocation_in_soa_hot_fns() {
        let src = r#"
impl ChannelTiming {
    pub fn probe(&mut self, loc: &Location) -> u64 {
        let mut scratch = Vec::new();
        scratch.push(self.bank_busy[0]);
        let all: Vec<u64> = self.bank_busy.iter().copied().collect();
        let boxed = Box::new(all);
        let lits = vec![1u64, 2, 3];
        boxed[0] + lits[0] + scratch[0]
    }
}
"#;
        let vs = run_with(src, |c| c.soa_hot = true);
        assert_eq!(codes(&vs), vec!["R14", "R14", "R14", "R14"]);
        assert!(vs[0].message.contains("probe"));
        // The same source outside the SoA file context is clean.
        assert!(run_with(src, |_| {}).is_empty());
    }

    #[test]
    fn r14_ignores_cold_fns_tests_and_allows_suppression() {
        // `new` is construction time — allocation is the point there.
        let cold = r#"
impl ChannelTiming {
    pub fn new(cfg: &DramConfig) -> Self {
        let bank_busy = vec![0u64; cfg.total_banks()];
        Self { bank_busy }
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        let v = vec![1, 2, 3];
        assert_eq!(v.len(), 3);
    }
}
"#;
        assert!(run_with(cold, |c| c.soa_hot = true).is_empty());
        let suppressed = r#"
impl ChannelTiming {
    pub fn commit(&mut self) {
        // lint: allow(R14): one-time slow-path spill, measured cold
        self.spill.push(1);
    }
}
"#;
        assert!(run_with(suppressed, |c| c.soa_hot = true).is_empty());
    }

    #[test]
    fn r10_flags_wildcard_on_scheme_match() {
        let src = r#"
pub fn exponent(s: PartitionScheme) -> Option<f64> {
    match s {
        PartitionScheme::Equal => Some(0.0),
        PartitionScheme::Power(a) => Some(a),
        _ => None,
    }
}
"#;
        let vs = run_with(src, |c| c.match_exhaustive = true);
        assert_eq!(codes(&vs), vec!["R10"]);
        assert!(vs[0].message.contains("PartitionScheme"));
    }

    #[test]
    fn r10_flags_lowercase_binding_arm_on_error_code() {
        let src = r#"
pub fn retriable(code: ErrorCode) -> bool {
    match code {
        ErrorCode::NotReady => true,
        other => false,
    }
}
"#;
        let vs = run_with(src, |c| c.match_exhaustive = true);
        assert_eq!(codes(&vs), vec!["R10"]);
        assert!(vs[0].message.contains("`other`"));
    }

    #[test]
    fn r10_accepts_explicit_variants_and_untargeted_matches() {
        let src = r#"
pub fn exponent(s: PartitionScheme) -> Option<f64> {
    match s {
        PartitionScheme::Equal | PartitionScheme::Proportional => Some(1.0),
        PartitionScheme::Power(a) => Some(a),
        PartitionScheme::NoPartitioning => None,
    }
}
pub fn parse(s: &str) -> u8 {
    match s {
        "equal" => 1,
        _ => 0,
    }
}
"#;
        assert!(run_with(src, |c| c.match_exhaustive = true).is_empty());
    }

    #[test]
    fn r10_guard_expressions_do_not_mark_the_match_targeted() {
        // The head/expressions mention ErrorCode, but no *pattern* does:
        // string-keyed dispatch stays out of scope.
        let src = r#"
pub fn to_code(name: &str) -> ErrorCode {
    match name {
        "bad-frame" => ErrorCode::BadFrame,
        _ => ErrorCode::InvalidArgument,
    }
}
"#;
        assert!(run_with(src, |c| c.match_exhaustive = true).is_empty());
    }

    #[test]
    fn r11_flags_cycles_ns_mixing() {
        let src = r#"
pub fn deadline(now_cycles: u64, window_ns: u64) -> bool {
    now_cycles > window_ns
}
"#;
        let vs = run_with(src, |c| c.unit_safety = true);
        assert_eq!(codes(&vs), vec!["R11"]);
        assert!(vs[0].message.contains("now_cycles"));
        assert!(vs[0].message.contains("window_ns"));
    }

    #[test]
    fn r11_accepts_conversions_and_same_unit_arithmetic() {
        let src = r#"
pub fn ok(a_cycles: u64, b_cycles: u64, w_ns: u64, freq: f64) -> u64 {
    let total_cycles = a_cycles + b_cycles;
    let budget_cycles = ns_to_cycles(w_ns, freq);
    total_cycles + budget_cycles
}
"#;
        assert!(run_with(src, |c| c.unit_safety = true).is_empty());
    }

    #[test]
    fn r11_share_vs_time_mixing_is_flagged() {
        let src = r#"
pub fn bad(beta_share: f64, window_ns: f64) -> f64 {
    beta_share + window_ns
}
pub fn fine(beta_share: f64, window_ns: f64) -> f64 {
    beta_share * window_ns
}
"#;
        let vs = run_with(src, |c| c.unit_safety = true);
        assert_eq!(codes(&vs), vec!["R11"]);
    }

    #[test]
    fn r12_flags_obs_macros_only_when_unwired() {
        let src = r#"
pub fn tick(&mut self) {
    obs_count!(self.obs, ticks);
}
"#;
        let vs = run_with(src, |c| c.obs_wired = Some(false));
        assert_eq!(codes(&vs), vec!["R12"]);
        assert!(run_with(src, |c| c.obs_wired = Some(true)).is_empty());
        assert!(run_with(src, |c| c.obs_wired = None).is_empty());
    }

    #[test]
    fn r13_flags_out_of_order_nested_acquisition() {
        let src = r#"
// lint: lock-order: engine < tracer
pub fn bad(engine: &Mutex<E>, tracer: &Mutex<T>) {
    let t = tracer.lock().unwrap_or_else(|p| p.into_inner());
    let e = engine.lock().unwrap_or_else(|p| p.into_inner());
    drop((t, e));
}
pub fn good(engine: &Mutex<E>, tracer: &Mutex<T>) {
    let e = engine.lock().unwrap_or_else(|p| p.into_inner());
    let t = tracer.lock().unwrap_or_else(|p| p.into_inner());
    drop((e, t));
}
"#;
        let vs = run_with(src, |c| c.lock_order = true);
        assert_eq!(codes(&vs), vec!["R13"]);
        assert!(vs[0].message.contains("`engine` while holding `tracer`"));
    }

    #[test]
    fn r13_sequential_temporaries_do_not_overlap() {
        // Match-arm-style dispatch: each statement takes and drops the
        // guard; no two are held together, so declared order is moot.
        let src = r#"
// lint: lock-order: engine
pub fn dispatch(engine: &Mutex<E>) {
    lock_engine(engine).run_epoch();
    lock_engine(engine).snapshot();
    let eng = lock_engine(engine);
    drop(eng);
}
fn lock_engine(engine: &Mutex<E>) -> MutexGuard<'_, E> {
    engine.lock().unwrap_or_else(|poison| poison.into_inner())
}
"#;
        assert!(run_with(src, |c| c.lock_order = true).is_empty());
    }

    #[test]
    fn r13_let_bound_guard_blocks_reacquisition() {
        let src = r#"
// lint: lock-order: engine
pub fn bad(engine: &Mutex<E>) {
    let eng = lock_engine(engine);
    let again = lock_engine(engine);
    drop((eng, again));
}
"#;
        let vs = run_with(src, |c| c.lock_order = true);
        assert_eq!(codes(&vs), vec!["R13"]);
        assert!(vs[0].message.contains("re-acquires `engine`"));
    }

    #[test]
    fn r13_requires_a_declared_table_and_known_names() {
        let undeclared = r#"
pub fn f(engine: &Mutex<E>) {
    let eng = engine.lock().unwrap_or_else(|p| p.into_inner());
    drop(eng);
}
"#;
        let vs = run_with(undeclared, |c| c.lock_order = true);
        assert_eq!(codes(&vs), vec!["R13"]);
        assert!(vs[0].message.contains("no order table"));

        let unknown = r#"
// lint: lock-order: engine
pub fn f(tracer: &Mutex<T>) {
    let t = tracer.lock().unwrap_or_else(|p| p.into_inner());
    drop(t);
}
"#;
        let vs = run_with(unknown, |c| c.lock_order = true);
        assert_eq!(codes(&vs), vec!["R13"]);
        assert!(vs[0].message.contains("missing from the declared"));
    }

    #[test]
    fn raw_strings_and_nested_comments_cannot_trip_rules() {
        // The F2 bug class: rule-trigger spellings inside raw strings,
        // nested block comments, and backslash-continuation strings.
        let src = "\
pub fn f() -> &'static str {\n\
    r#\"call .unwrap() and panic! at == 0.5 will\"#\n\
}\n\
/* outer /* unsafe { } inner */ still comment */\n\
pub fn g() -> String {\n\
    \"a long line that wraps \\\n\
     with static mut inside\".to_string()\n\
}\n";
        assert!(run_with(src, |_| {}).is_empty());
    }

    #[test]
    fn suppressed_findings_carry_their_justification() {
        let src = r#"
pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(R1): checked by the caller
    x.unwrap()
}
"#;
        let all = run(src, &FileCtx::default());
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed);
        assert!(all[0]
            .justification
            .as_deref()
            .is_some_and(|j| j.contains("checked by the caller")));
    }
}
