//! Approximate workspace call graph over the [`crate::symbols`] index.
//!
//! Edges are resolved from token-level call sites with tiered heuristics —
//! no type inference, no macro expansion — tuned to be useful for the
//! transitive rules in `analyze.rs` without drowning them in false edges:
//!
//! 1. **Typed method calls** (`recv.m()` with a known receiver type):
//!    candidate owners are every capitalized ident in the type text (so a
//!    `MutexGuard<'_, Engine>` still reaches `Engine`), matched against
//!    `impl` owners *and* trait names (so `&dyn Scheduler` dispatch fans
//!    out to every `impl Scheduler for _`). A known type with no workspace
//!    match is a std/external type: **no edge**, rather than a guess.
//! 2. **Untyped method calls**: fall back to every same-named workspace
//!    method, unless the name is a common std method
//!    ([`STD_METHODS`]) or the candidate set is implausibly large
//!    ([`FALLBACK_CAP`]) — both signs the receiver is probably not a
//!    workspace type.
//! 3. **Path calls**: `Self::f` → the enclosing impl's owner;
//!    `crate::…::f` → the caller's crate; a leading segment naming a
//!    workspace crate (`bwpart_core::…`, normalized) → that crate;
//!    `Type::f` → owner match. `use` imports give crate hints for bare
//!    names, and `pub use … as alias` re-exports retry under the
//!    underlying name.
//! 4. **Bare direct calls**: same file, then same crate, then
//!    workspace-unique by name.
//! 5. **Macro-argument calls** (`m!(f(x))`): resolved like bare direct
//!    calls — conservative edges, since the macro may invoke them.
//!
//! `#[cfg(test)]` functions never resolve as callees of non-test callers,
//! and vendored code (`vendor/`) is outside the index entirely — both are
//! documented soundness boundaries, not accidents.

use std::collections::{BTreeMap, VecDeque};

use crate::symbols::{normalize_crate, type_idents, CallKind, CallSite, Workspace};

/// Method names so common on std types that an *untyped* receiver must not
/// fall back to same-named workspace methods (tier 2 veto).
const STD_METHODS: [&str; 84] = [
    "push",
    "push_back",
    "pop",
    "pop_front",
    "insert",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "next",
    "clone",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "contains",
    "contains_key",
    "remove",
    "clear",
    "extend",
    "drain",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "round",
    "to_string",
    "to_vec",
    "collect",
    "into_iter",
    "filter",
    "fold",
    "sum",
    "count",
    "rev",
    "take",
    "skip",
    "zip",
    "chain",
    "last",
    "first",
    "join",
    "trim",
    "parse",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "into",
    "from",
    "fmt",
    "write",
    "flush",
    "lock",
    "send",
    "recv",
    "retain",
    "resize",
    "truncate",
    "reserve",
    "entry",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "notify_all",
    "notify_one",
];

/// Tier-2 fallback gives up past this many same-named candidates: a name
/// this popular is almost certainly a std idiom, not a workspace method.
const FALLBACK_CAP: usize = 12;

/// One resolved edge: the callee node plus where the call site sits (in
/// the *caller's* file) for path reports.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index into [`CallGraph::nodes`].
    pub to: usize,
    /// Byte span of the call site in the caller's file.
    pub call_span: (usize, usize),
    /// Index of the originating call site in the caller's `calls` list,
    /// so rules can recover per-site argument/binding facts.
    pub call_idx: usize,
}

/// The workspace call graph. Nodes are `(file index, fn index)` pairs into
/// the backing [`Workspace`].
pub struct CallGraph {
    /// Node → (file, fn) in the workspace.
    pub nodes: Vec<(usize, usize)>,
    /// Reverse lookup.
    node_of: BTreeMap<(usize, usize), usize>,
    /// Outgoing resolved edges per node.
    pub edges: Vec<Vec<Edge>>,
}

/// BFS result with parent tracking, for "how does the danger get reached"
/// path reports.
pub struct Reach {
    /// Depth per node (`None` = unreached). The origin has depth 0.
    pub depth: Vec<Option<usize>>,
    /// The edge that first reached each node: `(parent node, call span in
    /// the parent's file)`.
    pub parent: Vec<Option<(usize, (usize, usize))>>,
    /// Nodes in visit order (origin first).
    pub order: Vec<usize>,
}

impl CallGraph {
    /// Build the graph for a whole indexed workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut nodes = Vec::new();
        let mut node_of = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for fj in 0..file.fns.len() {
                node_of.insert((fi, fj), nodes.len());
                nodes.push((fi, fj));
            }
        }
        // Name index over non-test fns (callers in tests may still resolve
        // test helpers via the same-file tier below).
        let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (fj, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push((fi, fj));
            }
        }
        // Re-export table: alias → underlying name (workspace-wide).
        let mut reexports: BTreeMap<&str, &str> = BTreeMap::new();
        for file in &ws.files {
            for imp in &file.imports {
                if imp.reexport {
                    if let Some(under) = imp.path.last() {
                        if under != &imp.alias {
                            reexports.insert(imp.alias.as_str(), under.as_str());
                        }
                    }
                }
            }
        }

        let mut edges = vec![Vec::new(); nodes.len()];
        for (fi, file) in ws.files.iter().enumerate() {
            for (fj, f) in file.fns.iter().enumerate() {
                let node = node_of[&(fi, fj)];
                for (ci, call) in f.calls.iter().enumerate() {
                    let mut targets = resolve(ws, &by_name, fi, fj, call);
                    if targets.is_empty() {
                        if let Some(&under) = reexports.get(call.name.as_str()) {
                            let retry = CallSite {
                                name: under.to_string(),
                                ..call.clone()
                            };
                            targets = resolve(ws, &by_name, fi, fj, &retry);
                        }
                    }
                    for (tf, tj) in targets {
                        // A non-test caller never reaches #[cfg(test)] code.
                        if ws.files[tf].fns[tj].in_test && !f.in_test {
                            continue;
                        }
                        // Self-recursion adds nothing to reachability.
                        if (tf, tj) == (fi, fj) {
                            continue;
                        }
                        edges[node].push(Edge {
                            to: node_of[&(tf, tj)],
                            call_span: call.span,
                            call_idx: ci,
                        });
                    }
                }
            }
        }
        CallGraph {
            nodes,
            node_of,
            edges,
        }
    }

    /// The node index for a `(file, fn)` pair.
    pub fn node(&self, file: usize, f: usize) -> Option<usize> {
        self.node_of.get(&(file, f)).copied()
    }

    /// Breadth-first reachability from `origin`, bounded by `max_depth`
    /// call hops, with parent tracking.
    pub fn reach(&self, origin: usize, max_depth: usize) -> Reach {
        let mut depth = vec![None; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        depth[origin] = Some(0);
        queue.push_back(origin);
        while let Some(n) = queue.pop_front() {
            order.push(n);
            let d = depth[n].unwrap_or(0);
            if d >= max_depth {
                continue;
            }
            for e in &self.edges[n] {
                if depth[e.to].is_none() {
                    depth[e.to] = Some(d + 1);
                    parent[e.to] = Some((n, e.call_span));
                    queue.push_back(e.to);
                }
            }
        }
        Reach {
            depth,
            parent,
            order,
        }
    }
}

impl Reach {
    /// The chain of nodes from the origin to `node` (inclusive), following
    /// first-reach parents.
    pub fn path_to(&self, node: usize) -> Vec<usize> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some((p, _)) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// Resolve one call site to candidate `(file, fn)` targets (tiers 1–5).
fn resolve(
    ws: &Workspace,
    by_name: &BTreeMap<&str, Vec<(usize, usize)>>,
    fi: usize,
    fj: usize,
    call: &CallSite,
) -> Vec<(usize, usize)> {
    let caller = &ws.files[fi].fns[fj];
    let same_named: &[(usize, usize)] = by_name
        .get(call.name.as_str())
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if same_named.is_empty() {
        return Vec::new();
    }
    let owner_or_trait_matches = |cands: &[String], (tf, tj): (usize, usize)| -> bool {
        let f = &ws.files[tf].fns[tj];
        f.owner
            .as_deref()
            .is_some_and(|o| cands.iter().any(|c| c == o))
            || f.trait_name
                .as_deref()
                .is_some_and(|t| cands.iter().any(|c| c == t))
    };

    // Where does a type ident used in the caller's file live? An explicit
    // `use` names its crate; an unimported type is local (or prelude, which
    // never names a workspace type). This keeps a workspace type that
    // deliberately shadows a std name (loomlite's `Mutex`) from matching
    // receivers typed as the *std* `Mutex` in other crates.
    let ident_home = |ident: &str| -> Option<String> {
        let imp = ws.files[fi].imports.iter().find(|im| im.alias == ident)?;
        match imp.path.first().map(String::as_str) {
            Some("crate") | Some("self") | Some("super") => Some(ws.files[fi].crate_name.clone()),
            Some(first) => Some(normalize_crate(first)),
            None => None,
        }
    };

    match call.kind {
        CallKind::Method => {
            if let Some(ty) = &call.recv_ty {
                // Tier 1: typed receiver, filtered by each matched type
                // ident's home crate.
                let cands = type_idents(ty);
                return same_named
                    .iter()
                    .copied()
                    .filter(|&t| owner_or_trait_matches(&cands, t))
                    .filter(|&(tf, tj)| {
                        let tgt = &ws.files[tf].fns[tj];
                        [tgt.owner.as_deref(), tgt.trait_name.as_deref()]
                            .into_iter()
                            .flatten()
                            .filter(|n| cands.iter().any(|c| c == *n))
                            .any(|n| match ident_home(n) {
                                Some(home) => ws.files[tf].crate_name == home,
                                None => ws.files[tf].crate_name == ws.files[fi].crate_name,
                            })
                    })
                    .collect();
            }
            // Tier 2: untyped fallback, heavily vetoed.
            if STD_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            let methods: Vec<(usize, usize)> = same_named
                .iter()
                .copied()
                .filter(|&(tf, tj)| {
                    let f = &ws.files[tf].fns[tj];
                    f.has_self || f.owner.is_some()
                })
                .collect();
            if methods.is_empty() || methods.len() > FALLBACK_CAP {
                return Vec::new();
            }
            methods
        }
        CallKind::Direct | CallKind::Macro => {
            let path: &[String] = &call.path;
            if let Some(first) = path.first() {
                // Tier 3: qualified paths.
                if first == "Self" {
                    if let Some(owner) = caller.owner.clone() {
                        return same_named
                            .iter()
                            .copied()
                            .filter(|&t| owner_or_trait_matches(std::slice::from_ref(&owner), t))
                            .collect();
                    }
                    return Vec::new();
                }
                if first == "crate" || first == "self" || first == "super" {
                    return same_named
                        .iter()
                        .copied()
                        .filter(|&(tf, _)| ws.files[tf].crate_name == ws.files[fi].crate_name)
                        .collect();
                }
                let as_crate = normalize_crate(first);
                if ws.files.iter().any(|f| f.crate_name == as_crate) {
                    return same_named
                        .iter()
                        .copied()
                        .filter(|&(tf, _)| ws.files[tf].crate_name == as_crate)
                        .collect();
                }
                // `Type::assoc(...)` — the last segment before the name is
                // the owner candidate when capitalized.
                let ty_seg = path
                    .last()
                    .filter(|s| s.chars().next().is_some_and(char::is_uppercase));
                if let Some(ty) = ty_seg {
                    return same_named
                        .iter()
                        .copied()
                        .filter(|&t| owner_or_trait_matches(std::slice::from_ref(ty), t))
                        .collect();
                }
                // Known std path roots never name workspace modules.
                if matches!(
                    first.as_str(),
                    "std"
                        | "core"
                        | "alloc"
                        | "mem"
                        | "ptr"
                        | "cmp"
                        | "fmt"
                        | "io"
                        | "fs"
                        | "env"
                        | "process"
                        | "time"
                        | "thread"
                        | "iter"
                        | "slice"
                        | "str"
                        | "f64"
                        | "f32"
                        | "u64"
                        | "usize"
                ) {
                    return Vec::new();
                }
                // Anything else (`protocol::encode(...)`) is a local
                // module path: restrict to the caller's crate — modules
                // never cross crates without the crate name leading.
                return same_named
                    .iter()
                    .copied()
                    .filter(|&(tf, _)| ws.files[tf].crate_name == ws.files[fi].crate_name)
                    .collect();
            }
            // Bare names. Tier: import hint first.
            for imp in &ws.files[fi].imports {
                if imp.alias == call.name {
                    if let Some(seg0) = imp.path.first() {
                        let hinted = normalize_crate(seg0);
                        let hits: Vec<(usize, usize)> = same_named
                            .iter()
                            .copied()
                            .filter(|&(tf, _)| ws.files[tf].crate_name == hinted)
                            .collect();
                        if !hits.is_empty() {
                            return hits;
                        }
                    }
                }
            }
            // Tier 4: same file → same crate → workspace-unique.
            let free: Vec<(usize, usize)> = same_named
                .iter()
                .copied()
                .filter(|&(tf, tj)| !ws.files[tf].fns[tj].has_self)
                .collect();
            let same_file: Vec<(usize, usize)> =
                free.iter().copied().filter(|&(tf, _)| tf == fi).collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<(usize, usize)> = free
                .iter()
                .copied()
                .filter(|&(tf, _)| ws.files[tf].crate_name == ws.files[fi].crate_name)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            if free.len() == 1 {
                return free;
            }
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::FileFacts;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(p, s)| FileFacts::extract(p, s))
                .collect(),
        }
    }

    fn node_named(ws: &Workspace, g: &CallGraph, name: &str) -> usize {
        for (n, &(fi, fj)) in g.nodes.iter().enumerate() {
            if ws.files[fi].fns[fj].name == name {
                return n;
            }
        }
        panic!("no fn named {name}");
    }

    fn reaches(ws: &Workspace, g: &CallGraph, from: &str, to: &str) -> bool {
        let r = g.reach(node_named(ws, g, from), 8);
        r.depth[node_named(ws, g, to)].is_some()
    }

    #[test]
    fn typed_method_and_free_calls_resolve() {
        let w = ws(&[(
            "crates/mc/src/controller.rs",
            "
pub struct Controller { dram: DramSim }
pub struct DramSim;
impl DramSim { pub fn probe(&self) { helper(); } }
impl Controller { pub fn tick(&mut self) { self.dram.probe(); } }
fn helper() {}
",
        )]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "tick", "probe"));
        assert!(reaches(&w, &g, "tick", "helper"));
    }

    #[test]
    fn trait_object_dispatch_fans_out() {
        let w = ws(&[(
            "crates/mc/src/sched.rs",
            "
pub trait Scheduler { fn pick(&self); }
pub struct FrFcfs;
pub struct Rr;
impl Scheduler for FrFcfs { fn pick(&self) { fr_leaf(); } }
impl Scheduler for Rr { fn pick(&self) { rr_leaf(); } }
fn fr_leaf() {}
fn rr_leaf() {}
pub fn drive(s: &dyn Scheduler) { s.pick(); }
",
        )]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "drive", "fr_leaf"));
        assert!(reaches(&w, &g, "drive", "rr_leaf"));
    }

    #[test]
    fn cross_crate_path_calls_resolve_by_crate_name() {
        let w = ws(&[
            (
                "crates/core/src/solver.rs",
                "pub fn solve() { leaf(); }\nfn leaf() {}\n",
            ),
            (
                "crates/bwpartd/src/engine.rs",
                "pub fn run_epoch() { bwpart_core::solver::solve(); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "run_epoch", "solve"));
        assert!(reaches(&w, &g, "run_epoch", "leaf"));
    }

    #[test]
    fn cfg_test_callees_are_masked_for_live_callers() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "
pub fn live() { helper(); }

#[cfg(test)]
mod tests {
    fn helper() {}
}
",
        )]);
        let g = CallGraph::build(&w);
        assert!(!reaches(&w, &g, "live", "helper"));
    }

    #[test]
    fn std_method_names_do_not_fall_back() {
        let w = ws(&[(
            "crates/core/src/lib.rs",
            "
pub struct Queue;
impl Queue { pub fn push(&mut self) { secret(); } }
fn secret() {}
pub fn caller(q: &mut UnknownExternal) { q.push(); }
",
        )]);
        let g = CallGraph::build(&w);
        // `q`'s type is known but not a workspace type: no edge, and the
        // STD_METHODS veto would also refuse the untyped fallback.
        assert!(!reaches(&w, &g, "caller", "push"));
    }

    #[test]
    fn reexport_alias_retries_underlying_name() {
        let w = ws(&[
            (
                "crates/core/src/lib.rs",
                "pub use detail::renamed_impl as public_name;\npub mod detail {}\n",
            ),
            (
                "crates/core/src/detail.rs",
                "pub fn renamed_impl() { leaf(); }\nfn leaf() {}\n",
            ),
            (
                "crates/bwpartd/src/main.rs",
                "pub fn entry() { public_name(); }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "entry", "renamed_impl"));
    }

    #[test]
    fn nested_closures_keep_calls_in_the_enclosing_fn() {
        let w = ws(&[(
            "crates/mc/src/lib.rs",
            "
pub fn hot() {
    let work = |x: u64| inner_leaf(x);
    work(3);
}
fn inner_leaf(_x: u64) {}
",
        )]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "hot", "inner_leaf"));
    }

    #[test]
    fn self_calls_resolve_to_enclosing_impl() {
        let w = ws(&[(
            "crates/dram/src/lib.rs",
            "
pub struct Timing;
impl Timing {
    pub fn outer(&self) { Self::assoc(); }
    fn assoc() { leaf(); }
}
fn leaf() {}
",
        )]);
        let g = CallGraph::build(&w);
        assert!(reaches(&w, &g, "outer", "leaf"));
    }

    #[test]
    fn path_report_reconstructs_the_chain() {
        let w = ws(&[(
            "crates/mc/src/lib.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let origin = node_named(&w, &g, "a");
        let r = g.reach(origin, 8);
        let c = node_named(&w, &g, "c");
        let path: Vec<&str> = r
            .path_to(c)
            .into_iter()
            .map(|n| {
                let (fi, fj) = g.nodes[n];
                w.files[fi].fns[fj].name.as_str()
            })
            .collect();
        assert_eq!(path, vec!["a", "b", "c"]);
        assert_eq!(r.depth[c], Some(2));
    }
}
