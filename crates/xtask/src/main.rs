//! `cargo xtask` — repo-local automation for the bwpart workspace.
//!
//! The only subcommand today is `lint`, the bwpart-audit model-invariant
//! pass (see [`lint`] for the rules). Run it as:
//!
//! ```text
//! cargo xtask lint            # scan crates/*/src, exit 1 on violations
//! cargo xtask lint --rules    # print the rule catalogue
//! ```

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

mod lint;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--rules]");
    eprintln!();
    eprintln!("subcommands:");
    eprintln!("  lint     run the bwpart-audit model-invariant lint over crates/*/src");
    ExitCode::from(2)
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, so two up.
fn workspace_root() -> PathBuf {
    let manifest = env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let mut root = PathBuf::from(manifest);
    root.pop();
    root.pop();
    root
}

fn run_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        println!("bwpart-audit rules (suppress with `// lint: allow(<rule>): <reason>`):");
        for rule in lint::Rule::ALL {
            println!("  {}  {}", rule.code(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args.iter().find(|a| *a != "lint") {
        eprintln!("unknown argument `{unknown}`");
        return usage();
    }
    let root = workspace_root();
    match lint::lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("bwpart-audit: clean (rules R1-R4 over crates/*/src)");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("bwpart-audit: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bwpart-audit: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        _ => usage(),
    }
}
