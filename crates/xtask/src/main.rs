//! `cargo xtask` — repo-local automation for the bwpart workspace.
//!
//! Subcommands:
//!
//! * `lint` — the bwpart-audit model-invariant pass (see [`lint`] for the
//!   rules).
//! * `analyze` — the interprocedural pass: workspace symbol index, call
//!   graph, and the transitive rules A1–A4 (hot-path purity, contract
//!   reachability, unit flow, lock-order graph). Text, JSON and SARIF
//!   output; warm runs served from `target/analyze-cache.txt`.
//! * `bench` — the perf-regression harness: builds and runs the
//!   `bench_sim` binary from `bwpart-bench` in release mode, which times
//!   the canonical workloads and writes `BENCH_sim.json`.
//! * `bench-serve` — the `bwpartd` service harness: builds and runs the
//!   `bench_serve` binary, which measures wire-protocol throughput and
//!   latency against a live loopback server plus epoch-decision latency
//!   in the bare engine, and writes `BENCH_serve.json`.
//! * `check-concurrency` — the loomlite model check: rebuilds the
//!   vendored crates with `--cfg loomlite` (aliasing their sync
//!   primitives to the controlled scheduler) and runs both drivers — the
//!   pool's `loomlite_check` (deque push/steal, thread-count override,
//!   nested-`par_iter`) and the reactor's `mio_loomlite_check` (mailbox
//!   handoff, wake dedup, shutdown races).
//!
//! ```text
//! cargo xtask lint              # scan crates/*/src + vendor/{rayon,mio}/src
//! cargo xtask lint --rules      # print the rule catalogue
//! cargo xtask lint --json       # machine-readable findings (schema v1)
//! cargo xtask lint --explain R7 # long-form rationale for one rule
//! cargo xtask analyze           # interprocedural rules A1-A4 over crates/*/src
//! cargo xtask analyze --sarif   # SARIF 2.1.0 for code-scanning upload
//! cargo xtask analyze --json    # machine-readable findings (schema v1)
//! cargo xtask analyze --no-cache # force a cold run
//! cargo xtask bench             # full benchmark, writes BENCH_sim.json
//! cargo xtask bench --smoke     # tiny cycle budget for CI smoke runs
//! cargo xtask bench --check     # exit 1 on >10% regression vs committed numbers
//! cargo xtask bench-serve       # bwpartd service bench, writes BENCH_serve.json
//! cargo xtask check-concurrency # explore pool schedules, exit 1 on races
//! cargo xtask check-concurrency -- --min-total 20000 --dfs 8000
//! ```

use std::env;
use std::path::PathBuf;
use std::process::Command;
use std::process::ExitCode;

use xtask::analyze;
use xtask::lint;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask <lint [--rules | --json | --explain R<N>] \
         | analyze [--rules | --json | --sarif | --explain A<N>] [--no-cache] \
         | bench [--smoke] [--reps N] [--out PATH] [--check] \
         | bench-serve [--smoke] [--out PATH] [--check] \
         | check-concurrency [-- --min-total N --dfs N --random N]>"
    );
    eprintln!();
    eprintln!("subcommands:");
    eprintln!(
        "  lint               run the bwpart-audit lint over crates/*/src + vendor/{{rayon,mio}}/src \
         (--json for the CI artifact, --explain R<N> for rationale)"
    );
    eprintln!(
        "  analyze            run the interprocedural rules A1-A4 over crates/*/src \
         (--sarif for code scanning, --json for the CI artifact, --no-cache to force a cold run)"
    );
    eprintln!("  bench              run the perf-regression harness (bench_sim)");
    eprintln!("  bench-serve        run the bwpartd service harness (bench_serve)");
    eprintln!("  check-concurrency  run the loomlite model checks (pool + reactor drivers)");
    ExitCode::from(2)
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/xtask`, so two up.
fn workspace_root() -> PathBuf {
    let manifest = env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    let mut root = PathBuf::from(manifest);
    root.pop();
    root.pop();
    root
}

fn run_lint(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        println!("bwpart-audit rules (suppress with `// lint: allow(<rule>): <reason>`):");
        for rule in lint::Rule::ALL {
            println!("  {}  {}", rule.code(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(code) = args.get(pos + 1) else {
            eprintln!("--explain needs a rule code (R1..R14)");
            return usage();
        };
        return match lint::Rule::from_code(code) {
            Some(rule) => {
                println!("{}  {}", rule.code(), rule.describe());
                println!();
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{code}` (expected R1..R14)");
                ExitCode::from(2)
            }
        };
    }
    let json = args.iter().any(|a| a == "--json");
    if let Some(unknown) = args.iter().find(|a| *a != "lint" && *a != "--json") {
        eprintln!("unknown argument `{unknown}`");
        return usage();
    }
    let root = workspace_root();
    if json {
        return match lint::lint_tree_report(&root) {
            Ok(findings) => {
                print!("{}", lint::render_json(&findings));
                if findings.iter().any(|v| !v.suppressed) {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("bwpart-audit: failed to scan {}: {e}", root.display());
                ExitCode::FAILURE
            }
        };
    }
    match lint::lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "bwpart-audit: clean (rules R1-R14 over crates/*/src + vendor/{{rayon,mio}}/src)"
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("bwpart-audit: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bwpart-audit: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        println!("bwpart-analyze rules (suppress with `// lint: allow(<rule>): <reason>`):");
        for rule in analyze::ARule::ALL {
            println!("  {}  {}", rule.code(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(code) = args.get(pos + 1) else {
            eprintln!("--explain needs a rule code (A1..A4)");
            return usage();
        };
        return match analyze::ARule::from_code(code) {
            Some(rule) => {
                println!("{}  {}", rule.code(), rule.describe());
                println!();
                println!("{}", rule.explain());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{code}` (expected A1..A4)");
                ExitCode::from(2)
            }
        };
    }
    let mut format = analyze::Format::Text;
    let mut no_cache = false;
    for arg in args {
        match arg.as_str() {
            "--json" => format = analyze::Format::Json,
            "--sarif" => format = analyze::Format::Sarif,
            "--no-cache" => no_cache = true,
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let root = workspace_root();
    match analyze::run(&root, format, no_cache) {
        Ok((output, failed)) => {
            print!("{output}");
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("bwpart-analyze: failed to scan {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}

/// Shell out to a release-built `bwpart-bench` binary (`bench_sim` or
/// `bench_serve`), forwarding flags. Runs from the workspace root so the
/// default `BENCH_*.json` lands there regardless of where `cargo xtask`
/// was invoked.
fn run_bench(bin: &str, args: &[String]) -> ExitCode {
    for arg in args {
        match arg.as_str() {
            "--smoke" | "--reps" | "--out" | "--check" => {}
            other if !other.starts_with("--") => {} // value for --reps/--out
            other => {
                eprintln!("unknown argument `{other}`");
                return usage();
            }
        }
    }
    let status = Command::new(env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .current_dir(workspace_root())
        .args(["run", "--release", "-p", "bwpart-bench", "--bin", bin, "--"])
        .args(args)
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cargo xtask bench ({bin}): failed to run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Build and run the vendored crates' loomlite drivers with the shims
/// aliased to the model checker (`--cfg loomlite`): the pool's
/// `loomlite_check` and the reactor's `mio_loomlite_check`. A dedicated
/// target dir keeps the flag from thrashing the main build's fingerprints.
fn run_check_concurrency(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut rustflags = env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg loomlite");
    for (manifest, bin) in [
        ("vendor/rayon/Cargo.toml", "loomlite_check"),
        ("vendor/mio/Cargo.toml", "mio_loomlite_check"),
    ] {
        let status = Command::new(env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
            .current_dir(&root)
            .env("RUSTFLAGS", rustflags.clone())
            .env("CARGO_TARGET_DIR", root.join("target").join("loomlite"))
            .args([
                "run",
                "--release",
                "--manifest-path",
                manifest,
                "--bin",
                bin,
                "--",
            ])
            .args(args.iter().filter(|a| *a != "--"))
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(_) => return ExitCode::FAILURE,
            Err(e) => {
                eprintln!("cargo xtask check-concurrency: failed to run cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("bench") => run_bench("bench_sim", &args[1..]),
        Some("bench-serve") => run_bench("bench_serve", &args[1..]),
        Some("check-concurrency") => run_check_concurrency(&args[1..]),
        _ => usage(),
    }
}
