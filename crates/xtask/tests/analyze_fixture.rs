//! End-to-end checks for `cargo xtask analyze` against scratch crate
//! trees: seeded interprocedural violations must be caught through the
//! CLI, clean trees must pass, suppression markers must be honoured, and
//! the SARIF/JSON/caching plumbing must behave as CI consumes it.
//!
//! Fixture trees are materialized under `CARGO_TARGET_TMPDIR`, like the
//! lint fixtures.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::json::Json;

fn fixture_root(name: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let root = base.join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture");
    }
    fs::create_dir_all(root.join("crates/demo/src")).expect("create fixture tree");
    root
}

fn write(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).expect("fixture dirs");
    }
    fs::write(path, contents).expect("write fixture file");
}

fn run_analyze(root: &Path, extra: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("analyze")
        .args(extra)
        .env("CARGO_MANIFEST_DIR", root.join("crates/xtask"))
        .output()
        .expect("run xtask analyze");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

/// The seeded A1 regression mirrors the bug this pass was built to catch:
/// a hot fn that looks clean locally but reaches a per-tick allocation
/// through a helper (the gather-scratch pattern).
#[test]
fn a1_allocation_behind_helper_fails_through_the_cli() {
    let root = fixture_root("bwpart-analyze-a1");
    write(
        &root,
        "crates/mc/src/controller.rs",
        r#"
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) {
        fan_out();
    }
}
fn fan_out() -> Vec<u64> {
    let mut slots = Vec::new();
    slots.push(1);
    slots
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(!ok, "helper allocation must fail:\n{stdout}");
    assert!(stdout.contains("A1"), "{stdout}");
    assert!(
        stdout.contains("tick") && stdout.contains("fan_out"),
        "finding must name the call path:\n{stdout}"
    );
}

/// A2: a pub share-vector producer whose certification lives in a callee
/// passes; one with no reachable certification fails.
#[test]
fn a2_certification_must_be_reachable() {
    let root = fixture_root("bwpart-analyze-a2");
    write(
        &root,
        "crates/core/src/solver.rs",
        r#"
pub fn solve(n: usize) -> Vec<f64> {
    let shares = raw(n);
    finish(&shares);
    shares
}
pub fn leak(n: usize) -> Vec<f64> {
    raw(n)
}
fn raw(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
fn finish(shares: &[f64]) {
    validate_shares(shares);
}
fn validate_shares(_s: &[f64]) {}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(!ok, "uncertified producer must fail:\n{stdout}");
    assert!(
        stdout.contains("A2") && stdout.contains("`leak`"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("`solve`"),
        "certification via callee must satisfy A2:\n{stdout}"
    );
}

/// A3: a `_ns` value flowing into a `_cycles` parameter across a call
/// boundary is flagged; the conversion fn itself is exempt.
#[test]
fn a3_unit_mismatch_across_the_call_boundary() {
    let root = fixture_root("bwpart-analyze-a3");
    write(
        &root,
        "crates/dram/src/timing.rs",
        r#"
pub fn issuable_after(now_cycles: u64) -> u64 {
    now_cycles + 4
}
pub fn ns_to_cycles(t_ns: u64) -> u64 {
    t_ns * 2
}
pub fn caller(now_ns: u64) -> u64 {
    let ready = ns_to_cycles(now_ns);
    issuable_after(now_ns) + ready
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(!ok, "unit mismatch must fail:\n{stdout}");
    assert!(
        stdout.contains("A3") && stdout.contains("now_ns") && stdout.contains("now_cycles"),
        "{stdout}"
    );
    // Exactly one A3 finding: the conversion call is exempt.
    assert_eq!(
        stdout.matches(" A3: ").count(),
        1,
        "conversion fns must be exempt:\n{stdout}"
    );
}

/// A4 regression mirroring the engine→table nesting: a guard held in one
/// crate over a call that acquires a lock in another, with no declared
/// order relating the pair.
#[test]
fn a4_cross_crate_nesting_and_declared_order() {
    let root = fixture_root("bwpart-analyze-a4");
    let server = r#"
// lint: lock-order: engine < table
use crate::engine::Engine;
fn lock_engine(m: &Mutex<Engine>) -> MutexGuard<'_, Engine> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
pub fn telemetry(engine: &Mutex<Engine>) {
    lock_engine(engine).trace_event();
}
"#;
    write(&root, "crates/bwpartd/src/server.rs", server);
    write(
        &root,
        "crates/bwpartd/src/engine.rs",
        r#"
pub struct Engine;
impl Engine {
    pub fn trace_event(&self) {
        crate::obs_push();
    }
}
"#,
    );
    write(
        &root,
        "crates/bwpartd/src/lib.rs",
        r#"
pub fn obs_push() {
    let g = ring.lock().unwrap();
    drop(g);
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(!ok, "undeclared cross-fn nesting must fail:\n{stdout}");
    assert!(
        stdout.contains("A4") && stdout.contains("`ring`") && stdout.contains("`engine`"),
        "{stdout}"
    );

    // Declaring the pair turns the same tree clean.
    write(
        &root,
        "crates/bwpartd/src/server.rs",
        &server.replace(
            "lock-order: engine < table",
            "lock-order: engine < table < ring",
        ),
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(ok, "declared nesting must pass:\n{stdout}");
}

/// Call-graph edge cases, end to end: trait-object dispatch fans out to
/// every impl, nested closures attribute calls to the enclosing fn,
/// `#[cfg(test)]` callees stay invisible to live code, and re-exported
/// names resolve through the alias.
#[test]
fn call_graph_edge_cases_resolve_through_the_cli() {
    let root = fixture_root("bwpart-analyze-edges");
    write(
        &root,
        "crates/mc/src/sched.rs",
        r#"
pub trait Scheduler {
    fn pick(&self);
}
pub struct FrFcfs;
impl Scheduler for FrFcfs {
    fn pick(&self) {
        let v: Vec<u64> = Vec::new();
        drop(v);
    }
}
pub struct Controller;
impl Controller {
    pub fn tick(&mut self, s: &dyn Scheduler) {
        let run = || s.pick(); // closure capture keeps the edge on tick
        run();
    }
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(
        !ok && stdout.contains("A1") && stdout.contains("pick"),
        "trait-object dispatch + closure attribution must reach the \
         allocation:\n{stdout}"
    );

    // cfg(test)-masked callee: the same shape is invisible when the only
    // allocating impl is test-gated.
    let root = fixture_root("bwpart-analyze-edges-test-masked");
    write(
        &root,
        "crates/mc/src/sched.rs",
        r#"
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) {
        helper();
    }
}
fn helper() {}

#[cfg(test)]
mod tests {
    fn helper() {
        let v: Vec<u64> = Vec::new();
        drop(v);
    }
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(ok, "test-gated callees must stay invisible:\n{stdout}");

    // Re-exported path: the alias resolves to the underlying fn.
    let root = fixture_root("bwpart-analyze-edges-reexport");
    write(
        &root,
        "crates/core/src/lib.rs",
        "pub use crate::detail::alloc_impl as build;\n",
    );
    write(
        &root,
        "crates/core/src/detail.rs",
        "pub fn alloc_impl() -> Vec<u64> { let mut v = Vec::new(); v.push(1); v }\n",
    );
    write(
        &root,
        "crates/mc/src/controller.rs",
        r#"
use bwpart_core::build;
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) {
        let _ = build();
    }
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(
        !ok && stdout.contains("A1") && stdout.contains("alloc_impl"),
        "re-exported callees must resolve:\n{stdout}"
    );
}

/// `lint: allow(A<N>): reason` at the anchor suppresses the finding and
/// the run passes; the suppression is carried into the JSON report.
#[test]
fn allow_markers_suppress_and_are_reported() {
    let root = fixture_root("bwpart-analyze-allow");
    write(
        &root,
        "crates/mc/src/controller.rs",
        r#"
pub struct Controller;
impl Controller {
    pub fn tick(&mut self) {
        cold_init();
    }
}
fn cold_init() {
    // lint: allow(A1): one-shot lazy init measured off the hot loop
    let v: Vec<u64> = Vec::new();
    drop(v);
}
"#,
    );
    let (ok, stdout) = run_analyze(&root, &["--no-cache"]);
    assert!(ok, "suppressed finding must pass:\n{stdout}");
    assert!(stdout.contains("1 suppressed"), "{stdout}");

    let (ok, json_out) = run_analyze(&root, &["--json", "--no-cache"]);
    assert!(ok, "{json_out}");
    let j = Json::parse(&json_out).expect("json parses");
    assert_eq!(
        j.path(&["counts", "suppressed"]).and_then(Json::num),
        Some(1.0)
    );
    let justification = j
        .path(&["findings", "0", "justification"])
        .and_then(Json::str)
        .unwrap_or_default();
    assert!(
        justification.contains("lazy init"),
        "justification must carry the reason: {justification}"
    );
}

/// SARIF output is structurally valid 2.1.0: schema pointer, rule
/// catalogue, result locations, and in-source suppressions.
#[test]
fn sarif_report_is_structurally_valid() {
    let root = fixture_root("bwpart-analyze-sarif");
    write(
        &root,
        "crates/core/src/solver.rs",
        "pub fn raw_shares(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
    );
    let (ok, sarif_out) = run_analyze(&root, &["--sarif", "--no-cache"]);
    assert!(!ok, "seeded A2 must fail the sarif run too:\n{sarif_out}");
    let j = Json::parse(&sarif_out).expect("sarif parses");
    assert_eq!(j.get("version").and_then(Json::str), Some("2.1.0"));
    assert!(j
        .get("$schema")
        .and_then(Json::str)
        .is_some_and(|s| s.contains("sarif-2.1.0")));
    let rules = j
        .path(&["runs", "0", "tool", "driver", "rules"])
        .and_then(Json::arr)
        .expect("rules");
    assert_eq!(rules.len(), 4);
    let results = j
        .path(&["runs", "0", "results"])
        .and_then(Json::arr)
        .expect("results");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].get("ruleId").and_then(Json::str), Some("A2"));
    let uri = results[0]
        .path(&[
            "locations",
            "0",
            "physicalLocation",
            "artifactLocation",
            "uri",
        ])
        .and_then(Json::str);
    assert_eq!(uri, Some("crates/core/src/solver.rs"));
    assert!(results[0]
        .path(&["locations", "0", "physicalLocation", "region", "startLine"])
        .and_then(Json::num)
        .is_some_and(|l| l >= 1.0));
}

/// The warm cache replays byte-identical output and the same exit code,
/// invalidates on source change, and `--no-cache` bypasses it.
#[test]
fn warm_cache_replays_and_invalidates() {
    let root = fixture_root("bwpart-analyze-cache");
    write(
        &root,
        "crates/core/src/solver.rs",
        "pub fn raw_shares(n: usize) -> Vec<f64> { vec![0.0; n] }\n",
    );
    let (ok_cold, cold) = run_analyze(&root, &[]);
    assert!(!ok_cold, "{cold}");
    assert!(
        root.join("target/analyze-cache.txt").exists(),
        "cold run must store the cache"
    );
    let (ok_warm, warm) = run_analyze(&root, &[]);
    assert_eq!(ok_cold, ok_warm, "cached exit status must match");
    assert_eq!(cold, warm, "cached output must be byte-identical");
    // The cached run serves every format, not just the one first rendered.
    let (_, warm_sarif) = run_analyze(&root, &["--sarif"]);
    assert!(warm_sarif.contains("\"2.1.0\""), "{warm_sarif}");

    // Fixing the source invalidates the key and flips the verdict.
    write(
        &root,
        "crates/core/src/solver.rs",
        "pub fn raw_shares(n: usize) -> Vec<f64> { let v = vec![0.0; n]; validate_shares(&v); v }\n\
         fn validate_shares(_s: &[f64]) {}\n",
    );
    let (ok_fixed, fixed) = run_analyze(&root, &[]);
    assert!(ok_fixed, "fixed tree must pass:\n{fixed}");
    let (ok_bypass, bypass) = run_analyze(&root, &["--no-cache"]);
    assert!(ok_bypass, "{bypass}");
}

/// `--rules` lists the catalogue; `--explain` covers every rule code.
#[test]
fn rules_and_explain_cover_the_catalogue() {
    let root = fixture_root("bwpart-analyze-rules");
    write(&root, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let (ok, stdout) = run_analyze(&root, &["--rules"]);
    assert!(ok, "{stdout}");
    for code in ["A1", "A2", "A3", "A4"] {
        assert!(stdout.contains(code), "missing {code}:\n{stdout}");
        let (ok, explain) = run_analyze(&root, &["--explain", code]);
        assert!(ok && explain.len() > 200, "--explain {code}:\n{explain}");
    }
    let (ok, _) = run_analyze(&root, &["--explain", "A9"]);
    assert!(!ok, "unknown rule code must be rejected");
}
