//! Whole-repo snapshot: the committed tree must be violation-free.
//!
//! This is the merge gate the fixture tests can't provide: a PR that
//! introduces a finding (or suppresses one only in a local config) fails
//! here, because the lint runs against the real workspace sources exactly
//! as CI invokes it.

use std::path::PathBuf;
use std::process::Command;

/// The real workspace root: this test file lives in `crates/xtask/tests`.
fn workspace_root() -> PathBuf {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.pop();
    root.pop();
    root
}

#[test]
fn committed_tree_is_violation_free() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .output()
        .expect("run xtask lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the committed tree has lint findings — fix them (or annotate with \
         a reasoned `// lint: allow(R<N>): ...`):\n{stdout}"
    );
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn committed_tree_json_report_is_well_formed() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--json"])
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .output()
        .expect("run xtask lint --json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("\"schema_version\": 1"), "{stdout}");
    assert!(stdout.contains("\"active\": 0"), "{stdout}");
    // All thirteen rules are present in the catalogue section.
    for code in [
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12", "R13", "R14",
    ] {
        assert!(
            stdout.contains(&format!("{{\"code\": \"{code}\"")),
            "missing rule {code} in:\n{stdout}"
        );
    }
}
