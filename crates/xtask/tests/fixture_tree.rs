//! End-to-end check that the lint driver catches deliberately seeded
//! violations in a scratch crate tree, and accepts a clean one.
//!
//! The fixture workspace is materialized under `CARGO_TARGET_TMPDIR` so the
//! test never writes outside the repository's target directory.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root(name: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let root = base.join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture");
    }
    fs::create_dir_all(root.join("crates/demo/src")).expect("create fixture tree");
    root
}

fn write(root: &Path, rel: &str, contents: &str) {
    fs::write(root.join(rel), contents).expect("write fixture file");
}

fn run_lint(root: &Path) -> (bool, String) {
    run_lint_args(root, &[])
}

fn run_lint_args(root: &Path, extra: &[&str]) -> (bool, String) {
    let exe = env!("CARGO_BIN_EXE_xtask");
    // The binary resolves the workspace root as CARGO_MANIFEST_DIR/../..,
    // so point the manifest dir at a synthetic crates/xtask inside the tree.
    let out = Command::new(exe)
        .arg("lint")
        .args(extra)
        .env("CARGO_MANIFEST_DIR", root.join("crates/xtask"))
        .output()
        .expect("run xtask lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.success(), stdout)
}

#[test]
fn seeded_violations_are_caught() {
    let root = fixture_root("bwpart-audit-seeded");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn broken(x: Option<f64>) -> f64 {
    let v = x.unwrap();
    if v == 0.5 { panic!("boom"); }
    v
}

#[allow(clippy::needless_range_loop)]
pub fn silent() {}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "lint must fail on seeded violations:\n{stdout}");
    assert!(
        stdout.contains("[R1]"),
        "unwrap/panic not caught:\n{stdout}"
    );
    assert!(stdout.contains("[R2]"), "float eq not caught:\n{stdout}");
    assert!(
        stdout.contains("[R4]"),
        "bare clippy allow not caught:\n{stdout}"
    );
    assert!(stdout.contains("crates/demo/src/lib.rs:3"), "{stdout}");
}

#[test]
fn seeded_core_producer_without_contract_is_caught() {
    let root = fixture_root("bwpart-audit-core");
    fs::create_dir_all(root.join("crates/core/src")).expect("core tree");
    write(
        &root,
        "crates/core/src/lib.rs",
        r#"
pub fn shares(n: usize) -> Vec<f64> {
    vec![1.0 / n as f64; n]
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "uncertified producer must fail:\n{stdout}");
    assert!(stdout.contains("[R3]"), "{stdout}");
}

#[test]
fn seeded_experiments_step_loop_is_caught() {
    let root = fixture_root("bwpart-audit-experiments");
    fs::create_dir_all(root.join("crates/experiments/src")).expect("experiments tree");
    write(
        &root,
        "crates/experiments/src/lib.rs",
        r#"
pub fn measure(sys: &mut CmpSystem) -> u64 {
    for _ in 0..1_000 {
        sys.step();
    }
    sys.cycle()
}
"#,
    );
    // The identical loop outside crates/experiments must NOT trip R5.
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn reference(sys: &mut CmpSystem) {
    for _ in 0..1_000 {
        sys.step();
    }
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "step loop in experiments must fail:\n{stdout}");
    assert!(stdout.contains("[R5]"), "{stdout}");
    assert!(
        stdout.contains("crates/experiments/src/lib.rs:4"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("crates/demo/src/lib.rs:4"),
        "R5 must be scoped to bwpart-experiments:\n{stdout}"
    );
}

#[test]
fn seeded_hot_loop_registry_call_is_caught() {
    let root = fixture_root("bwpart-audit-hot-obs");
    fs::create_dir_all(root.join("crates/mc/src")).expect("mc tree");
    write(
        &root,
        "crates/mc/src/lib.rs",
        r#"
pub fn tick(registry: &Registry) {
    registry.counter("mc_ticks_total").inc();
}
"#,
    );
    // The identical call outside crates/dram / crates/mc must NOT trip R9.
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn tick(registry: &Registry) {
    registry.counter("cold_tree_total").inc();
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "hot-loop registry call must fail:\n{stdout}");
    assert!(stdout.contains("[R9]"), "{stdout}");
    assert!(stdout.contains("crates/mc/src/lib.rs:3"), "{stdout}");
    assert!(
        !stdout.contains("crates/demo/src/lib.rs:3"),
        "R9 must be scoped to the simulator hot trees:\n{stdout}"
    );
}

#[test]
fn seeded_concurrency_violations_are_caught() {
    // Rules R6-R8 over a fixture tree with a vendored pool: exactly the
    // violation mix a careless concurrency patch would introduce.
    let root = fixture_root("bwpart-audit-concurrency");
    fs::create_dir_all(root.join("vendor/rayon/src")).expect("vendor tree");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
static mut GLOBAL: usize = 0;

pub fn bump(c: &AtomicUsize) -> usize {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}
"#,
    );
    write(
        &root,
        "vendor/rayon/src/lib.rs",
        r#"
use std::sync::Mutex;

pub fn spawn_direct() {
    std::thread::spawn(|| {});
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "seeded concurrency violations must fail:\n{stdout}");
    // demo crate: one static mut (R7), one bare Relaxed (R6), one
    // SAFETY-less unsafe that is also missing from the (absent)
    // UNSAFE_AUDIT.md inventory (two R8 findings).
    assert!(
        stdout.contains("[R6]"),
        "bare Relaxed not caught:\n{stdout}"
    );
    assert!(stdout.contains("[R7]"), "static mut not caught:\n{stdout}");
    assert!(stdout.contains("[R8]"), "unsafe not caught:\n{stdout}");
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2"),
        "static mut line:\n{stdout}"
    );
    assert!(
        stdout.contains("not registered in UNSAFE_AUDIT.md"),
        "inventory cross-check missing:\n{stdout}"
    );
    // vendored pool: std::sync and std::thread outside shim.rs.
    assert!(
        stdout.contains("vendor/rayon/src/lib.rs:2"),
        "std::sync in vendor:\n{stdout}"
    );
    assert!(
        stdout.contains("vendor/rayon/src/lib.rs:5"),
        "std::thread in vendor:\n{stdout}"
    );
    let violations = stdout
        .lines()
        .filter(|l| l.contains("[R6]") || l.contains("[R7]") || l.contains("[R8]"))
        .count();
    assert_eq!(violations, 6, "expected exact violation count:\n{stdout}");
}

#[test]
fn clean_concurrency_tree_passes() {
    // Justified orderings, SAFETY comments, a registered inventory, and a
    // shim-only vendored pool: the concurrency rules must stay silent.
    let root = fixture_root("bwpart-audit-concurrency-clean");
    fs::create_dir_all(root.join("vendor/rayon/src")).expect("vendor tree");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn bump(c: &AtomicUsize) -> usize {
    // hb: none needed — the counter only hands out unique tokens.
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(p: *const u32) -> u32 {
    // SAFETY: caller contract guarantees p is valid and unaliased.
    unsafe { *p }
}
"#,
    );
    write(
        &root,
        "UNSAFE_AUDIT.md",
        "# inventory\n\n- `crates/demo/src/lib.rs` — 1 — guarded raw read\n",
    );
    write(
        &root,
        "vendor/rayon/src/shim.rs",
        "pub use std::sync::Mutex;\npub use std::thread;\n",
    );
    write(
        &root,
        "vendor/rayon/src/lib.rs",
        "mod shim;\npub fn f() { let _ = shim::Mutex::new(()); }\n",
    );
    let (ok, stdout) = run_lint(&root);
    assert!(ok, "clean concurrency fixture must pass:\n{stdout}");
}

#[test]
fn macro_rules_unsafe_counts_at_definition_for_the_inventory() {
    // Pinned semantics: `unsafe` inside a macro_rules! body is one
    // inventory site per occurrence in the definition; invocations add
    // nothing. An audit registering exactly the definition-site count must
    // pass, and registering a per-expansion count must be flagged stale.
    let root = fixture_root("bwpart-audit-macro-unsafe");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
macro_rules! read_raw {
    ($p:expr) => {
        // SAFETY: callers pin $p valid for reads for the borrow's life.
        unsafe { *$p }
    };
}

pub fn f(p: *const u32) -> u32 {
    read_raw!(p) + read_raw!(p) + read_raw!(p)
}
"#,
    );
    write(
        &root,
        "UNSAFE_AUDIT.md",
        "# inventory\n\n- `crates/demo/src/lib.rs` — 1 — macro-wrapped raw read\n",
    );
    let (ok, stdout) = run_lint(&root);
    assert!(
        ok,
        "definition-site count must satisfy the audit:\n{stdout}"
    );

    // Per-expansion accounting (3 call sites) is the drift this pins out.
    write(
        &root,
        "UNSAFE_AUDIT.md",
        "# inventory\n\n- `crates/demo/src/lib.rs` — 3 — macro-wrapped raw read\n",
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "per-expansion count must be stale:\n{stdout}");
    assert!(
        stdout.contains("lists 3 unsafe site(s)") && stdout.contains("the source has 1"),
        "{stdout}"
    );
}

#[test]
fn stale_unsafe_inventory_is_caught() {
    let root = fixture_root("bwpart-audit-stale-inventory");
    write(&root, "crates/demo/src/lib.rs", "pub fn f() {}\n");
    write(
        &root,
        "UNSAFE_AUDIT.md",
        "- `crates/demo/src/lib.rs` — 2 — no longer true\n",
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "stale inventory must fail:\n{stdout}");
    assert!(stdout.contains("stale inventory entry"), "{stdout}");
}

#[test]
fn seeded_wildcard_scheme_match_is_caught() {
    let root = fixture_root("bwpart-audit-r10");
    fs::create_dir_all(root.join("crates/core/src")).expect("core tree");
    let src = r#"
pub fn exponent(s: PartitionScheme) -> Option<f64> {
    match s {
        PartitionScheme::Equal => Some(0.0),
        PartitionScheme::Proportional => Some(1.0),
        _ => None,
    }
}
"#;
    write(&root, "crates/core/src/lib.rs", src);
    // The identical match outside crates/core / crates/bwpartd must NOT
    // trip R10: exhaustiveness is a scheme/service-crate obligation.
    write(&root, "crates/demo/src/lib.rs", src);
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "wildcard scheme match must fail:\n{stdout}");
    assert!(stdout.contains("[R10]"), "{stdout}");
    assert!(stdout.contains("crates/core/src/lib.rs:6"), "{stdout}");
    assert!(
        !stdout.contains("crates/demo/src/lib.rs:6"),
        "R10 must be scoped to the scheme/service crates:\n{stdout}"
    );
}

#[test]
fn seeded_unit_mixing_is_caught() {
    let root = fixture_root("bwpart-audit-r11");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn overdue(now_cycles: u64, deadline_ns: u64) -> bool {
    now_cycles > deadline_ns
}

pub fn fine(now_cycles: u64, deadline_ns: u64, freq: f64) -> bool {
    let deadline_cycles = ns_to_cycles(deadline_ns, freq);
    now_cycles > deadline_cycles
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "cycles/ns comparison must fail:\n{stdout}");
    assert!(stdout.contains("[R11]"), "{stdout}");
    assert!(stdout.contains("crates/demo/src/lib.rs:3"), "{stdout}");
    assert!(
        !stdout.contains("crates/demo/src/lib.rs:8"),
        "explicit conversion must satisfy R11:\n{stdout}"
    );
}

#[test]
fn seeded_unwired_obs_macro_is_caught() {
    let root = fixture_root("bwpart-audit-r12");
    fs::create_dir_all(root.join("crates/mc/src")).expect("mc tree");
    let src = r#"
pub fn tick(&mut self) {
    obs_count!(self.obs, mc_ticks);
}
"#;
    // No trace wiring in the manifest: the call site can never fire.
    write(
        &root,
        "crates/mc/Cargo.toml",
        "[package]\nname = \"bwpart-mc\"\n\n[dependencies]\nbwpart-obs = { workspace = true }\n",
    );
    write(&root, "crates/mc/src/lib.rs", src);
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "unwired obs macro must fail:\n{stdout}");
    assert!(stdout.contains("[R12]"), "{stdout}");
    assert!(stdout.contains("crates/mc/src/lib.rs:3"), "{stdout}");

    // Wiring the feature through the manifest resolves it.
    let root = fixture_root("bwpart-audit-r12-wired");
    fs::create_dir_all(root.join("crates/mc/src")).expect("mc tree");
    write(
        &root,
        "crates/mc/Cargo.toml",
        "[package]\nname = \"bwpart-mc\"\n\n[dependencies]\n\
         bwpart-obs = { workspace = true }\n\n[features]\n\
         trace = [\"bwpart-obs/trace\"]\n",
    );
    write(&root, "crates/mc/src/lib.rs", src);
    write(&root, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let (ok, stdout) = run_lint(&root);
    assert!(ok, "wired obs macro must pass:\n{stdout}");
}

#[test]
fn seeded_lock_order_violations_are_caught() {
    let root = fixture_root("bwpart-audit-r13");
    fs::create_dir_all(root.join("crates/bwpartd/src")).expect("bwpartd tree");
    write(
        &root,
        "crates/bwpartd/src/server.rs",
        r#"
// lint: lock-order: engine < tracer
pub fn bad(engine: &Mutex<E>, tracer: &Mutex<T>) {
    let t = tracer.lock().unwrap_or_else(|p| p.into_inner());
    let e = engine.lock().unwrap_or_else(|p| p.into_inner());
    drop((t, e));
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(!ok, "out-of-order acquisition must fail:\n{stdout}");
    assert!(stdout.contains("[R13]"), "{stdout}");
    assert!(
        stdout.contains("`engine` while holding `tracer`"),
        "{stdout}"
    );

    // The declared order, followed, passes — and an undeclared lock fails.
    let root = fixture_root("bwpart-audit-r13-clean");
    fs::create_dir_all(root.join("crates/bwpartd/src")).expect("bwpartd tree");
    write(
        &root,
        "crates/bwpartd/src/server.rs",
        r#"
// lint: lock-order: engine < tracer
pub fn good(engine: &Mutex<E>, tracer: &Mutex<T>) {
    let e = engine.lock().unwrap_or_else(|p| p.into_inner());
    let t = tracer.lock().unwrap_or_else(|p| p.into_inner());
    drop((e, t));
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(ok, "declared-order acquisition must pass:\n{stdout}");
}

#[test]
fn json_findings_artifact_has_stable_schema() {
    let root = fixture_root("bwpart-audit-json");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
pub fn broken(x: Option<f64>) -> f64 {
    x.unwrap()
}

pub fn tolerated(x: Option<f64>) -> f64 {
    // lint: allow(R1): fixture — exercised by the suppressed-findings path
    x.unwrap()
}
"#,
    );
    let (ok, stdout) = run_lint_args(&root, &["--json"]);
    assert!(!ok, "active finding must still fail --json runs:\n{stdout}");
    assert!(stdout.contains("\"schema_version\": 1"), "{stdout}");
    assert!(stdout.contains("\"tool\": \"bwpart-audit\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"R1\""), "{stdout}");
    assert!(
        stdout.contains("\"path\": \"crates/demo/src/lib.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"line\": 3"), "{stdout}");
    assert!(stdout.contains("\"snippet\": \"x.unwrap()\""), "{stdout}");
    // Suppressed findings stay visible in the artifact, with their reason.
    assert!(stdout.contains("\"suppressed\": true"), "{stdout}");
    assert!(
        stdout.contains("exercised by the suppressed-findings path"),
        "{stdout}"
    );
    assert!(
        stdout.contains("\"counts\": {\"total\": 2, \"active\": 1, \"suppressed\": 1}"),
        "{stdout}"
    );

    // A clean tree still emits the full schema and exits zero.
    let root = fixture_root("bwpart-audit-json-clean");
    write(&root, "crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let (ok, stdout) = run_lint_args(&root, &["--json"]);
    assert!(ok, "clean tree must pass --json:\n{stdout}");
    assert!(
        stdout.contains("\"counts\": {\"total\": 0, \"active\": 0, \"suppressed\": 0}"),
        "{stdout}"
    );
}

#[test]
fn explain_subcommand_prints_rationale() {
    let root = fixture_root("bwpart-audit-explain");
    let (ok, stdout) = run_lint_args(&root, &["--explain", "R10"]);
    assert!(ok, "--explain must succeed:\n{stdout}");
    assert!(stdout.contains("R10"), "{stdout}");
    assert!(stdout.contains("variant"), "{stdout}");
    let (ok, _) = run_lint_args(&root, &["--explain", "R99"]);
    assert!(!ok, "--explain must reject unknown rules");
}

#[test]
fn clean_tree_passes() {
    let root = fixture_root("bwpart-audit-clean");
    write(
        &root,
        "crates/demo/src/lib.rs",
        r#"
//! A well-behaved module.

/// Clamp helper using a total order.
pub fn pick(a: f64, b: f64) -> f64 {
    match a.total_cmp(&b) {
        std::cmp::Ordering::Less => b,
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<f64> = Some(1.0);
        assert!(v.unwrap() > 0.5);
    }
}
"#,
    );
    let (ok, stdout) = run_lint(&root);
    assert!(ok, "clean fixture must pass:\n{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}
