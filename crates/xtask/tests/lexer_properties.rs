//! Property tests over the lint lexer (`xtask::lex`).
//!
//! The lexer is the foundation the whole rule engine stands on, and it is
//! clock- and IO-free, so these tests also run under miri in CI. Three
//! guarantees are pinned:
//!
//! 1. **Totality** — `lex` never panics, on arbitrary strings and on
//!    arbitrary (lossily decoded) byte soup.
//! 2. **Span discipline** — tokens come out in source order, spans are
//!    in-bounds, non-overlapping, non-empty, on UTF-8 character
//!    boundaries, and every gap between consecutive tokens is pure
//!    whitespace (nothing is silently dropped).
//! 3. **Token-soup round-trip** — a source assembled from known atoms
//!    lexes to exactly those atoms: one token per atom, each with the
//!    atom's expected kind and the exact byte span it was placed at.

use proptest::prelude::*;
use xtask::lex::{lex, TokenKind};

/// Reduced case counts under miri: each case is cheap natively but ~100x
/// slower interpreted.
const CASES: u32 = if cfg!(miri) { 16 } else { 256 };

/// Check guarantee 2 on an already-lexed source.
fn assert_span_discipline(src: &str) {
    let tokens = lex(src);
    let mut prev_end = 0usize;
    for t in &tokens {
        assert!(t.start < t.end, "empty span {t:?} in {src:?}");
        assert!(t.end <= src.len(), "span past EOF {t:?} in {src:?}");
        assert!(t.start >= prev_end, "overlap at {t:?} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "split char at {t:?} in {src:?}"
        );
        let gap = &src[prev_end..t.start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "dropped non-whitespace {gap:?} before {t:?} in {src:?}"
        );
        prev_end = t.end;
    }
    let tail = &src[prev_end..];
    assert!(
        tail.chars().all(char::is_whitespace),
        "dropped trailing {tail:?} in {src:?}"
    );
}

/// Kind classes the soup atoms map to.
#[derive(Debug, Clone, Copy)]
enum KindClass {
    Ident,
    Int,
    Float,
    Str,
    CharLit,
    Lifetime,
    Op,
    Delim,
    LineComment,
    BlockComment,
}

impl KindClass {
    fn matches(self, kind: TokenKind) -> bool {
        match self {
            KindClass::Ident => matches!(kind, TokenKind::Ident),
            KindClass::Int => matches!(kind, TokenKind::Int),
            KindClass::Float => matches!(kind, TokenKind::Float),
            KindClass::Str => matches!(
                kind,
                TokenKind::Str {
                    terminated: true,
                    ..
                }
            ),
            KindClass::CharLit => matches!(kind, TokenKind::CharLit { terminated: true }),
            KindClass::Lifetime => matches!(kind, TokenKind::Lifetime),
            KindClass::Op => matches!(kind, TokenKind::Op),
            KindClass::Delim => matches!(kind, TokenKind::Open(_) | TokenKind::Close(_)),
            KindClass::LineComment => matches!(kind, TokenKind::LineComment { .. }),
            KindClass::BlockComment => {
                matches!(
                    kind,
                    TokenKind::BlockComment {
                        terminated: true,
                        ..
                    }
                )
            }
        }
    }
}

/// The atom table: every entry must lex to exactly one token of the named
/// class. Includes the ambiguous prefixes (raw idents vs raw strings,
/// byte chars vs byte strings, lifetimes vs char literals) on purpose.
const ATOMS: &[(&str, KindClass)] = &[
    ("x", KindClass::Ident),
    ("snake_case", KindClass::Ident),
    ("CamelCase", KindClass::Ident),
    ("_under", KindClass::Ident),
    ("r#match", KindClass::Ident),
    ("unsafe", KindClass::Ident),
    ("unwrap", KindClass::Ident),
    ("0", KindClass::Int),
    ("42", KindClass::Int),
    ("0xff", KindClass::Int),
    ("1_000", KindClass::Int),
    ("7u64", KindClass::Int),
    ("1.5", KindClass::Float),
    ("0.0", KindClass::Float),
    ("2e10", KindClass::Float),
    ("1e-9", KindClass::Float),
    ("3.0f64", KindClass::Float),
    (r#""plain""#, KindClass::Str),
    (r#""esc \" ape""#, KindClass::Str),
    (r#""with // comment""#, KindClass::Str),
    (r##"r#".unwrap() raw"#"##, KindClass::Str),
    (r#"b"bytes""#, KindClass::Str),
    ("'c'", KindClass::CharLit),
    ("'\\n'", KindClass::CharLit),
    ("'\\''", KindClass::CharLit),
    ("b'x'", KindClass::CharLit),
    ("'a", KindClass::Lifetime),
    ("'static", KindClass::Lifetime),
    ("'_", KindClass::Lifetime),
    ("::", KindClass::Op),
    ("=>", KindClass::Op),
    ("==", KindClass::Op),
    ("+", KindClass::Op),
    ("..=", KindClass::Op),
    ("<<=", KindClass::Op),
    ("?", KindClass::Op),
    ("#", KindClass::Op),
    ("(", KindClass::Delim),
    (")", KindClass::Delim),
    ("[", KindClass::Delim),
    ("]", KindClass::Delim),
    ("{", KindClass::Delim),
    ("}", KindClass::Delim),
    ("// plain", KindClass::LineComment),
    ("/// doc with .unwrap()", KindClass::LineComment),
    ("//! inner", KindClass::LineComment),
    ("/* block */", KindClass::BlockComment),
    ("/* nested /* unsafe */ deep */", KindClass::BlockComment),
    ("/** doc */", KindClass::BlockComment),
];

/// A character palette weighted toward the lexer's tricky prefixes (`r"`,
/// `b'`, `/*`, `'`, `#`) that uniform random strings rarely assemble.
const PALETTE: &[char] = &[
    ' ', '\t', '\n', '"', '\'', 'r', 'b', 'c', '#', '/', '*', '.', '_', 'a', 'z', 'e', '0', '9',
    '{', '}', '(', ')', '[', ']', '<', '>', '=', '!', '&', '|', '+', '-', '\\', 'é', '∑', '🦀',
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn lexing_arbitrary_byte_soup_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let src = String::from_utf8_lossy(&bytes);
        assert_span_discipline(&src);
    }

    #[test]
    fn lexing_rust_flavored_fragments_never_panics(
        picks in prop::collection::vec(0usize..PALETTE.len(), 0..256)
    ) {
        let src: String = picks.iter().map(|&i| PALETTE[i]).collect();
        assert_span_discipline(&src);
    }

    #[test]
    fn token_soup_round_trips_to_identical_spans(
        picks in prop::collection::vec(0usize..ATOMS.len(), 0..40)
    ) {
        // Assemble: one atom per line, so line comments terminate and no
        // two atoms can merge under maximal munch.
        let mut src = String::new();
        let mut expected: Vec<(usize, usize, KindClass)> = Vec::new();
        for &i in &picks {
            let (text, class) = ATOMS[i];
            let start = src.len();
            src.push_str(text);
            expected.push((start, src.len(), class));
            src.push('\n');
        }
        let tokens = lex(&src);
        prop_assert_eq!(tokens.len(), expected.len());
        for (t, (start, end, class)) in tokens.iter().zip(&expected) {
            prop_assert_eq!(t.start, *start, "span start for {:?}", t.text(&src));
            prop_assert_eq!(t.end, *end, "span end for {:?}", t.text(&src));
            prop_assert!(class.matches(t.kind), "kind {:?} for {:?}", t.kind, t.text(&src));
        }
        // Re-lexing is deterministic: identical spans and kinds.
        prop_assert_eq!(&lex(&src), &tokens);
        assert_span_discipline(&src);
    }
}
