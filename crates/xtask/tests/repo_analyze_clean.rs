//! The committed tree must stay clean under `cargo xtask analyze`.
//!
//! This is the interprocedural counterpart of `repo_clean.rs`: the
//! whole-workspace snapshot that keeps A1–A4 regressions out of the tree.
//! Any suppressions that do exist must carry a written justification, so
//! the waiver budget is visible in review rather than accreting silently.

use std::path::PathBuf;
use std::process::Command;

use xtask::json::Json;

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir
}

fn run_analyze(extra: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("analyze")
        .args(extra)
        .env("CARGO_MANIFEST_DIR", workspace_root().join("crates/xtask"))
        .output()
        .expect("run xtask analyze");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn committed_tree_has_no_active_interprocedural_findings() {
    let (ok, stdout) = run_analyze(&["--no-cache"]);
    assert!(ok, "committed tree must pass analyze:\n{stdout}");
    assert!(
        stdout.contains("0 finding(s)"),
        "expected a zero-findings summary:\n{stdout}"
    );
}

#[test]
fn committed_tree_sarif_is_well_formed_and_clean() {
    let (ok, stdout) = run_analyze(&["--sarif", "--no-cache"]);
    assert!(ok, "sarif run must pass:\n{stdout}");
    let j = Json::parse(&stdout).expect("sarif parses");
    assert_eq!(j.get("version").and_then(Json::str), Some("2.1.0"));
    let results = j
        .path(&["runs", "0", "results"])
        .and_then(Json::arr)
        .expect("results array");
    // Suppressed results may appear, but every one must carry the
    // in-source suppression marker; none may be active.
    for r in results {
        let suppressions = r.path(&["suppressions", "0", "kind"]).and_then(Json::str);
        assert_eq!(
            suppressions,
            Some("inSource"),
            "active finding in committed tree: {stdout}"
        );
    }
}

#[test]
fn committed_tree_json_suppressions_are_justified() {
    let (ok, stdout) = run_analyze(&["--json", "--no-cache"]);
    assert!(ok, "json run must pass:\n{stdout}");
    let j = Json::parse(&stdout).expect("json parses");
    assert_eq!(j.path(&["counts", "active"]).and_then(Json::num), Some(0.0));
    let findings = j.get("findings").and_then(Json::arr).expect("findings");
    for f in findings {
        let justification = f.get("justification").and_then(Json::str).unwrap_or("");
        assert!(
            justification.len() > 2,
            "suppression without a written reason: {stdout}"
        );
    }
}
