//! Observability hooks for the memory controller.
//!
//! Same discipline as `bwpart_dram::obs` (lint rule R9): the per-DRAM-clock
//! scheduling path in [`crate::MemoryController::tick`] touches metrics
//! only through the zero-cost `obs_*!` macros over these pre-resolved
//! handles; everything derived (latencies, interference, queue state) is
//! published from the cold path at phase/epoch boundaries.

use bwpart_obs::{Counter, Registry};

use crate::controller::McStats;

/// Pre-resolved metric handles for the controller's scheduling hot path.
///
/// Only *per-memory-access* events (orders of magnitude rarer than DRAM
/// scheduling clocks) live here; per-clock facts — busy/stalled ticks,
/// queue depth — are already tracked by plain [`McStats`] fields and
/// exported from the cold [`publish`] path, so the hot loop pays no
/// per-tick atomics for them.
#[derive(Debug, Clone)]
pub struct McObsHooks {
    /// Requests handed to the DRAM system (`mc_issued_total`).
    pub issued: Counter,
    /// Issues that bypassed a blocked FIFO head via the scheduling window
    /// (`mc_window_bypass_total`).
    pub window_bypass: Counter,
    /// Individual interference charges — Section IV-C accounting events
    /// (`mc_interference_charges_total`).
    pub interference_charges: Counter,
}

impl McObsHooks {
    /// Resolve every handle against `registry` (cold; once at attach).
    pub fn resolve(registry: &Registry) -> Self {
        McObsHooks {
            issued: registry.counter("mc_issued_total"),
            window_bypass: registry.counter("mc_window_bypass_total"),
            interference_charges: registry.counter("mc_interference_charges_total"),
        }
    }
}

/// Publish derived controller gauges into `registry`: busy/stall clocks,
/// per-app served counts, average latencies, epoch interference cycles
/// and queue lengths. Cold path only (phase or epoch boundaries).
pub fn publish(registry: &Registry, stats: &McStats, interference: &[u64], queue_lens: &[usize]) {
    registry.gauge("mc_busy_ticks").set(stats.busy_ticks as f64);
    registry
        .gauge("mc_stalled_ticks")
        .set(stats.stalled_ticks as f64);
    registry
        .gauge("mc_queue_depth")
        .set(queue_lens.iter().sum::<usize>() as f64);
    for (app, &served) in stats.served.iter().enumerate() {
        registry
            .gauge(&format!("mc_served{{app=\"{app}\"}}"))
            .set(served as f64);
        registry
            .gauge(&format!("mc_avg_latency_cycles{{app=\"{app}\"}}"))
            .set(stats.avg_latency(app));
    }
    for (app, &cycles) in interference.iter().enumerate() {
        registry
            .gauge(&format!("mc_interference_cycles{{app=\"{app}\"}}"))
            .set(cycles as f64);
    }
    for (app, &len) in queue_lens.iter().enumerate() {
        registry
            .gauge(&format!("mc_queue_len{{app=\"{app}\"}}"))
            .set(len as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_exports_per_app_gauges() {
        let stats = McStats {
            served: vec![4, 0],
            latency_sum: vec![400, 0],
            busy_ticks: 7,
            stalled_ticks: 2,
        };
        let reg = Registry::new();
        publish(&reg, &stats, &[123, 0], &[3, 1]);
        let snap = reg.snapshot();
        let gauge = |name: &str| {
            snap.gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
                .unwrap_or(-1.0)
        };
        assert!((gauge("mc_busy_ticks") - 7.0).abs() < 1e-12);
        assert!((gauge("mc_queue_depth") - 4.0).abs() < 1e-12);
        assert!((gauge("mc_avg_latency_cycles{app=\"0\"}") - 100.0).abs() < 1e-12);
        assert!((gauge("mc_interference_cycles{app=\"0\"}") - 123.0).abs() < 1e-12);
        assert!((gauge("mc_queue_len{app=\"1\"}") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hooks_share_registry_cells() {
        let reg = Registry::new();
        let hooks = McObsHooks::resolve(&reg);
        hooks.issued.add(3);
        hooks.interference_charges.inc();
        assert_eq!(reg.counter("mc_issued_total").get(), 3);
        assert_eq!(reg.counter("mc_interference_charges_total").get(), 1);
    }
}
