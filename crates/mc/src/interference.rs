//! Memory interference detection (Section IV-C).
//!
//! "Memory interference occurs when an application's memory request is
//! blocked by the requests from another application. [...] At each cycle,
//! if interference for application i is detected, we increment
//! `T_cyc,interference,i` by one."
//!
//! Two forms are detected each DRAM command clock, for every application
//! with a pending head request that was *not* served this clock:
//!
//! * **resource blocking** — the head request cannot issue and the blocking
//!   DRAM resource (bank or data bus) is owned by another application;
//! * **scheduling blocking** — the head request could issue, but the
//!   scheduler served a different application's request instead.
//!
//! Self-inflicted stalls (own bank busy with one's own earlier request) and
//! refresh blackouts are *not* interference — they would also occur running
//! alone.

use serde::{Deserialize, Serialize};

/// Per-application interference cycle counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceTracker {
    cycles: Vec<u64>,
}

impl InterferenceTracker {
    /// Create counters for `apps` applications.
    pub fn new(apps: usize) -> Self {
        InterferenceTracker {
            cycles: vec![0; apps],
        }
    }

    /// Charge `amount` interference cycles to `app`.
    pub fn charge(&mut self, app: usize, amount: u64) {
        self.cycles[app] += amount;
    }

    /// Total interference cycles charged to `app`
    /// (`T_cyc,interference,i`).
    pub fn cycles(&self, app: usize) -> u64 {
        self.cycles[app]
    }

    /// All counters (index = application).
    pub fn all(&self) -> &[u64] {
        &self.cycles
    }

    /// Reset at an epoch boundary.
    pub fn reset(&mut self) {
        self.cycles.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_app() {
        let mut t = InterferenceTracker::new(3);
        t.charge(0, 25);
        t.charge(0, 25);
        t.charge(2, 10);
        assert_eq!(t.cycles(0), 50);
        assert_eq!(t.cycles(1), 0);
        assert_eq!(t.cycles(2), 10);
        assert_eq!(t.all(), &[50, 0, 10]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut t = InterferenceTracker::new(2);
        t.charge(1, 100);
        t.reset();
        assert_eq!(t.all(), &[0, 0]);
    }
}
