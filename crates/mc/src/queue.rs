//! Per-application transaction queues.
//!
//! The controller keeps one FIFO per application. Scheduling policies pick
//! *which application* to serve next; within an application, requests are
//! served oldest-first among the *issuable* ones inside a bounded
//! scheduling window — mirroring a real controller's transaction queue,
//! which reorders around bank-timing stalls regardless of policy.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use bwpart_dram::ProbeCache;

use crate::request::MemRequest;

/// One queue slot: the request plus its version-tagged scheduling-probe
/// cache. The cache is pure acceleration state — dropping it (as the
/// manual serialization below does) only costs the next probe a
/// recompute, never a different answer.
#[derive(Debug, Clone)]
struct Slot {
    req: MemRequest,
    cache: ProbeCache,
}

// Serialization carries only the request; a restored slot starts with a
// cold cache (`ProbeCache::default()` is always a miss).
impl Serialize for Slot {
    fn to_value(&self) -> serde::Value {
        self.req.to_value()
    }
}

impl<'de> Deserialize<'de> for Slot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Slot {
            req: MemRequest::from_value(v)?,
            cache: ProbeCache::default(),
        })
    }
}

/// Per-application FIFO queues with occupancy accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppQueues {
    queues: Vec<VecDeque<Slot>>,
    total: usize,
    /// High-water mark of total occupancy (diagnostics).
    peak: usize,
}

impl AppQueues {
    /// Create queues for `apps` applications.
    pub fn new(apps: usize) -> Self {
        AppQueues {
            queues: (0..apps).map(|_| VecDeque::new()).collect(),
            total: 0,
            peak: 0,
        }
    }

    /// Number of applications.
    pub fn apps(&self) -> usize {
        self.queues.len()
    }

    /// Append a request to its application's FIFO.
    ///
    /// # Panics
    /// Panics if the request's application index is out of range.
    pub fn push(&mut self, req: MemRequest) {
        self.queues[req.app].push_back(Slot {
            req,
            cache: ProbeCache::default(),
        });
        self.total += 1;
        self.peak = self.peak.max(self.total);
    }

    /// The oldest pending request of `app`, if any.
    pub fn head(&self, app: usize) -> Option<&MemRequest> {
        self.queues[app].front().map(|s| &s.req)
    }

    /// Remove and return `app`'s head request.
    pub fn pop(&mut self, app: usize) -> Option<MemRequest> {
        let r = self.queues[app].pop_front();
        if r.is_some() {
            self.total -= 1;
        }
        r.map(|s| s.req)
    }

    /// The request at position `idx` in `app`'s FIFO (0 = head).
    pub fn get(&self, app: usize, idx: usize) -> Option<&MemRequest> {
        self.queues[app].get(idx).map(|s| &s.req)
    }

    /// The request at position `idx` together with its probe cache
    /// (read-only form for the parallel gather).
    pub fn slot(&self, app: usize, idx: usize) -> Option<(&MemRequest, &ProbeCache)> {
        self.queues[app].get(idx).map(|s| (&s.req, &s.cache))
    }

    /// The request at position `idx` together with mutable access to its
    /// probe cache (the sequential scheduling path refreshes caches in
    /// place).
    pub fn slot_mut(&mut self, app: usize, idx: usize) -> Option<(&MemRequest, &mut ProbeCache)> {
        self.queues[app]
            .get_mut(idx)
            .map(|s| (&s.req, &mut s.cache))
    }

    /// Remove and return the request at position `idx` in `app`'s FIFO
    /// (scheduling-window out-of-order service).
    pub fn remove(&mut self, app: usize, idx: usize) -> Option<MemRequest> {
        let r = self.queues[app].remove(idx);
        if r.is_some() {
            self.total -= 1;
        }
        r.map(|s| s.req)
    }

    /// Pending requests for `app`.
    pub fn len(&self, app: usize) -> usize {
        self.queues[app].len()
    }

    /// Total pending requests across all applications.
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// True when no application has pending requests.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Highest total occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Iterator over application indices that have pending requests.
    pub fn pending_apps(&self) -> impl Iterator<Item = usize> + '_ {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_app() {
        let mut q = AppQueues::new(2);
        q.push(MemRequest::read(0, 0x40, 1));
        q.push(MemRequest::read(0, 0x80, 2));
        q.push(MemRequest::read(1, 0xC0, 3));
        assert_eq!(q.total_len(), 3);
        assert_eq!(q.len(0), 2);
        assert_eq!(q.head(0).unwrap().addr, 0x40);
        assert_eq!(q.pop(0).unwrap().addr, 0x40);
        assert_eq!(q.head(0).unwrap().addr, 0x80);
        assert_eq!(q.total_len(), 2);
    }

    #[test]
    fn pending_apps_lists_nonempty_only() {
        let mut q = AppQueues::new(4);
        q.push(MemRequest::read(1, 0x40, 1));
        q.push(MemRequest::read(3, 0x80, 1));
        let pending: Vec<usize> = q.pending_apps().collect();
        assert_eq!(pending, vec![1, 3]);
        q.pop(1);
        let pending: Vec<usize> = q.pending_apps().collect();
        assert_eq!(pending, vec![3]);
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut q = AppQueues::new(1);
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = AppQueues::new(1);
        for i in 0..5 {
            q.push(MemRequest::read(0, i * 64, i));
        }
        for _ in 0..5 {
            q.pop(0);
        }
        q.push(MemRequest::read(0, 0, 9));
        assert_eq!(q.peak_occupancy(), 5);
    }

    #[test]
    fn get_in_and_out_of_bounds() {
        let mut q = AppQueues::new(2);
        q.push(MemRequest::read(0, 0x40, 1));
        q.push(MemRequest::read(0, 0x80, 2));
        assert_eq!(q.get(0, 0).unwrap().addr, 0x40);
        assert_eq!(q.get(0, 1).unwrap().addr, 0x80);
        // One past the tail, far past the tail, and an empty queue.
        assert!(q.get(0, 2).is_none());
        assert!(q.get(0, usize::MAX).is_none());
        assert!(q.get(1, 0).is_none());
    }

    #[test]
    fn remove_out_of_bounds_returns_none_and_keeps_accounting() {
        let mut q = AppQueues::new(2);
        q.push(MemRequest::read(0, 0x40, 1));
        assert!(q.remove(0, 1).is_none());
        assert!(q.remove(0, 7).is_none());
        assert!(q.remove(1, 0).is_none());
        // A failed removal must not corrupt the occupancy counters.
        assert_eq!(q.total_len(), 1);
        assert_eq!(q.len(0), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interior_removal_preserves_fifo_order_of_survivors() {
        let mut q = AppQueues::new(1);
        for (i, addr) in [0x40u64, 0x80, 0xC0, 0x100, 0x140].iter().enumerate() {
            q.push(MemRequest::read(0, *addr, i as u64));
        }
        // Scheduling-window service plucks position 2 from the interior.
        let taken = q.remove(0, 2).unwrap();
        assert_eq!(taken.addr, 0xC0);
        assert_eq!(q.total_len(), 4);
        // Survivors keep their relative order and re-index contiguously.
        let order: Vec<u64> = (0..q.len(0)).map(|i| q.get(0, i).unwrap().addr).collect();
        assert_eq!(order, vec![0x40, 0x80, 0x100, 0x140]);
        // Removing the (new) head equals pop.
        assert_eq!(q.remove(0, 0).unwrap().addr, 0x40);
        assert_eq!(q.head(0).unwrap().addr, 0x80);
        assert_eq!(q.total_len(), 3);
    }

    #[test]
    #[should_panic]
    fn push_out_of_range_panics() {
        let mut q = AppQueues::new(2);
        q.push(MemRequest::read(2, 0, 0));
    }
}
