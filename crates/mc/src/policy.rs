//! Memory scheduling policies.
//!
//! A policy picks, each DRAM command clock, which application's head request
//! to serve among those whose requests are *issuable* (all DRAM timing
//! constraints satisfied right now). Restricting the choice to issuable
//! heads makes every policy work-conserving: bandwidth an application
//! cannot use flows to the others, which is also what lets the start-time-
//! fair mechanism coexist with standalone caps.

use serde::{Deserialize, Serialize};

/// What a policy sees about one pending application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Application index.
    pub app: usize,
    /// Arrival cycle of the head request.
    pub arrival: u64,
    /// Whether the head request could start this clock.
    pub issuable: bool,
    /// Whether the head request would hit an open row (open-page only).
    pub row_hit: bool,
    /// Total requests this application has queued (batch formation).
    pub queue_len: usize,
}

/// Which scheduling discipline a [`Policy`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Oldest issuable request first (the `No_partitioning` baseline).
    Fcfs,
    /// Row hits first, then oldest (bandwidth-utilization baseline).
    FrFcfs,
    /// Start-time-fair enforcement of a share vector (Section IV-B).
    Stf,
    /// Strict priority by a fixed per-application key.
    Priority,
    /// PARBS-style batching (Mutlu & Moscibroda, ISCA'08): mark a batch of
    /// the oldest requests per application; batch requests are served
    /// strictly before non-batch ones, shortest-job (fewest marked) first —
    /// a starvation-free heuristic that balances fairness and throughput
    /// without targeting any single objective.
    Parbs,
    /// ATLAS-style least-attained-service (Kim et al., HPCA'10):
    /// applications that have received the least long-term memory service
    /// are served first, with exponential decay of the service history.
    Atlas,
    /// TCM-style thread clustering (Kim et al., MICRO'10): applications
    /// are periodically split into a latency-sensitive cluster (low
    /// bandwidth usage — always prioritized) and a bandwidth-sensitive
    /// cluster (served round-robin with a rotating rank so no heavy
    /// application permanently dominates).
    Tcm,
}

/// A scheduling policy with its mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Policy {
    kind: PolicyKind,
    /// STF: virtual start tag per application.
    tags: Vec<f64>,
    /// STF: share vector β (must sum to 1).
    shares: Vec<f64>,
    /// Priority: per-application key; lower is served first.
    keys: Vec<f64>,
    /// PARBS: marked (batched) requests remaining per application.
    batch: Vec<usize>,
    /// PARBS: per-application marking cap when a batch forms.
    batch_cap: usize,
    /// ATLAS: exponentially-decayed attained service per application.
    attained: Vec<f64>,
    /// ATLAS: decay factor applied to all histories per service.
    decay: f64,
    /// TCM: services observed per application in the current epoch.
    epoch_service: Vec<u64>,
    /// TCM: true = latency-sensitive cluster (prioritized).
    latency_cluster: Vec<bool>,
    /// TCM: services until the next re-clustering.
    recluster_in: u64,
    /// TCM: epoch length in services.
    epoch_len: u64,
    /// TCM: rotating rank offset for the bandwidth cluster.
    rotation: usize,
    /// TCM: reusable index scratch for re-clustering — `recluster` runs on
    /// the served path (reachable from `tick`), so it must not allocate.
    /// Cleared before each use; carrying it through (de)serialization is
    /// harmless.
    cluster_order: Vec<usize>,
}

impl Policy {
    /// FCFS policy for `apps` applications.
    pub fn fcfs(apps: usize) -> Self {
        Policy {
            kind: PolicyKind::Fcfs,
            tags: vec![0.0; apps],
            shares: vec![1.0 / apps.max(1) as f64; apps],
            keys: vec![0.0; apps],
            batch: vec![0; apps],
            batch_cap: 5,
            attained: vec![0.0; apps],
            decay: 0.9999,
            epoch_service: vec![0; apps],
            latency_cluster: vec![true; apps],
            recluster_in: 2000,
            epoch_len: 2000,
            rotation: 0,
            cluster_order: Vec::new(),
        }
    }

    /// TCM-style clustering policy. `epoch_len` is the re-clustering period
    /// in served requests (the original uses a time quantum; a service
    /// quantum is equivalent under a saturated bus).
    pub fn tcm(apps: usize, epoch_len: u64) -> Self {
        assert!(epoch_len >= 1, "epoch length must be at least 1");
        Policy {
            kind: PolicyKind::Tcm,
            recluster_in: epoch_len,
            epoch_len,
            ..Self::fcfs(apps)
        }
    }

    /// PARBS-style batching policy for `apps` applications with a
    /// per-application marking cap (the original paper uses 5).
    pub fn parbs(apps: usize, batch_cap: usize) -> Self {
        assert!(batch_cap >= 1, "batch cap must be at least 1");
        Policy {
            kind: PolicyKind::Parbs,
            batch_cap,
            ..Self::fcfs(apps)
        }
    }

    /// ATLAS-style least-attained-service policy. `decay` ∈ (0, 1] is the
    /// per-service exponential forgetting factor (1.0 = infinite memory).
    pub fn atlas(apps: usize, decay: f64) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        Policy {
            kind: PolicyKind::Atlas,
            decay,
            ..Self::fcfs(apps)
        }
    }

    /// FR-FCFS policy for `apps` applications.
    pub fn fr_fcfs(apps: usize) -> Self {
        Policy {
            kind: PolicyKind::FrFcfs,
            ..Self::fcfs(apps)
        }
    }

    /// Start-time-fair policy enforcing `shares` (β, summing to 1).
    ///
    /// # Panics
    /// Panics if `shares` is empty, contains negatives/NaNs, or sums to 0.
    pub fn stf(shares: Vec<f64>) -> Self {
        assert!(!shares.is_empty(), "shares must be non-empty");
        assert!(
            shares.iter().all(|s| s.is_finite() && *s >= 0.0),
            "shares must be non-negative"
        );
        assert!(shares.iter().sum::<f64>() > 0.0, "shares must not all be 0");
        let n = shares.len();
        Policy {
            kind: PolicyKind::Stf,
            shares,
            ..Self::fcfs(n)
        }
    }

    /// Strict-priority policy: applications with lower `keys` are always
    /// served first (e.g. `APC_alone` for `Priority_APC`, `API` for
    /// `Priority_API`).
    pub fn priority(keys: Vec<f64>) -> Self {
        assert!(!keys.is_empty(), "keys must be non-empty");
        assert!(
            keys.iter().all(|k| k.is_finite()),
            "priority keys must be finite"
        );
        let n = keys.len();
        Policy {
            kind: PolicyKind::Priority,
            keys,
            ..Self::fcfs(n)
        }
    }

    /// The discipline this policy implements.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Replace the STF share vector (epoch repartitioning). Tags are
    /// preserved so accumulated credit carries across epochs.
    pub fn set_shares(&mut self, shares: Vec<f64>) {
        assert_eq!(shares.len(), self.shares.len(), "share vector length");
        assert!(
            shares.iter().all(|s| s.is_finite() && *s >= 0.0),
            "shares must be non-negative"
        );
        self.shares = shares;
    }

    /// Replace the priority keys (epoch repartitioning).
    pub fn set_keys(&mut self, keys: Vec<f64>) {
        assert_eq!(keys.len(), self.keys.len(), "key vector length");
        self.keys = keys;
    }

    /// Current STF tag of `app` (tests/diagnostics).
    pub fn tag(&self, app: usize) -> f64 {
        self.tags[app]
    }

    /// Pick the application to serve among `candidates`. Only issuable
    /// candidates are eligible; returns `None` when none are. Takes `&mut
    /// self` because batching policies re-form their batch state here.
    pub fn pick(&mut self, candidates: &[Candidate]) -> Option<usize> {
        let eligible = candidates.iter().filter(|c| c.issuable);
        match self.kind {
            PolicyKind::Fcfs => eligible.min_by_key(|c| (c.arrival, c.app)).map(|c| c.app),
            PolicyKind::FrFcfs => eligible
                .min_by_key(|c| (!c.row_hit, c.arrival, c.app))
                .map(|c| c.app),
            PolicyKind::Stf => eligible
                .min_by(|a, b| {
                    self.tags[a.app]
                        .total_cmp(&self.tags[b.app])
                        .then(a.app.cmp(&b.app))
                })
                .map(|c| c.app),
            PolicyKind::Priority => eligible
                .min_by(|a, b| {
                    self.keys[a.app]
                        .total_cmp(&self.keys[b.app])
                        .then(a.app.cmp(&b.app))
                })
                .map(|c| c.app),
            PolicyKind::Parbs => {
                // Re-form the batch once every marked request of every
                // still-pending application has been served.
                if candidates.iter().all(|c| self.batch[c.app] == 0) {
                    for c in candidates {
                        self.batch[c.app] = c.queue_len.min(self.batch_cap);
                    }
                }
                // Batched requests strictly first; within the batch,
                // shortest job (fewest marked requests) first. Fall back to
                // unbatched requests (work conservation) by oldest arrival.
                candidates
                    .iter()
                    .filter(|c| c.issuable && self.batch[c.app] > 0)
                    .min_by_key(|c| (self.batch[c.app], c.arrival, c.app))
                    .or_else(|| {
                        candidates
                            .iter()
                            .filter(|c| c.issuable)
                            .min_by_key(|c| (c.arrival, c.app))
                    })
                    .map(|c| c.app)
            }
            PolicyKind::Atlas => eligible
                .min_by(|a, b| {
                    self.attained[a.app]
                        .total_cmp(&self.attained[b.app])
                        .then(a.app.cmp(&b.app))
                })
                .map(|c| c.app),
            PolicyKind::Tcm => {
                // Latency cluster strictly first (oldest request); then the
                // bandwidth cluster under a rotating rank.
                let n = self.latency_cluster.len();
                candidates
                    .iter()
                    .filter(|c| c.issuable && self.latency_cluster[c.app])
                    .min_by_key(|c| (c.arrival, c.app))
                    .or_else(|| {
                        candidates
                            .iter()
                            .filter(|c| c.issuable)
                            .min_by_key(|c| ((c.app + n - self.rotation % n) % n, c.arrival))
                    })
                    .map(|c| c.app)
            }
        }
    }

    /// Account one served request for `app` (advances STF tags:
    /// `S_i = S_{i-1} + 1/β`, Section IV-B — independent of arrival time;
    /// decrements PARBS batch marks; updates ATLAS attained service).
    pub fn on_served(&mut self, app: usize) {
        match self.kind {
            PolicyKind::Stf => {
                let beta = self.shares[app];
                // β = 0 means "no share": push the tag to the far future so
                // the app is only served when it is alone in the queue.
                let previous = self.tags[app];
                self.tags[app] += if beta > 0.0 { 1.0 / beta } else { 1e18 };
                bwpart_core::invariant!(
                    self.tags[app] >= previous,
                    "DSTF start tag regressed for app {}: {} -> {} (S_i = S_i-1 + 1/β must be \
                     monotone, Section IV-B)",
                    app,
                    previous,
                    self.tags[app]
                );
            }
            PolicyKind::Parbs => {
                self.batch[app] = self.batch[app].saturating_sub(1);
            }
            PolicyKind::Atlas => {
                for a in self.attained.iter_mut() {
                    *a *= self.decay;
                }
                self.attained[app] += 1.0;
            }
            PolicyKind::Tcm => {
                self.epoch_service[app] += 1;
                self.recluster_in = self.recluster_in.saturating_sub(1);
                if self.recluster_in == 0 {
                    self.recluster();
                }
            }
            _ => {}
        }
    }

    /// TCM epoch boundary: applications whose cumulative service (lightest
    /// first) stays within 20% of the epoch total form the latency-
    /// sensitive cluster; the rest are bandwidth-sensitive. The bandwidth
    /// cluster's rank rotates each epoch (TCM's "insertion shuffle").
    fn recluster(&mut self) {
        let total: u64 = self.epoch_service.iter().sum();
        // Reused scratch (amortized to one allocation per policy lifetime);
        // the index tie-break keeps the unstable sort deterministic.
        self.cluster_order.clear();
        self.cluster_order.extend(0..self.epoch_service.len());
        let service = &self.epoch_service;
        self.cluster_order
            .sort_unstable_by_key(|&i| (service[i], i));
        let mut cum = 0u64;
        for &i in &self.cluster_order {
            cum += self.epoch_service[i];
            self.latency_cluster[i] = cum * 5 <= total; // ≤ 20% cumulative
        }
        self.rotation = self.rotation.wrapping_add(1);
        self.epoch_service.iter_mut().for_each(|s| *s = 0);
        self.recluster_in = self.epoch_len;
    }

    /// Whether `app` is currently in TCM's latency-sensitive cluster.
    pub fn in_latency_cluster(&self, app: usize) -> bool {
        self.latency_cluster[app]
    }

    /// ATLAS attained-service history of `app` (tests/diagnostics).
    pub fn attained(&self, app: usize) -> f64 {
        self.attained[app]
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn cand(app: usize, arrival: u64, issuable: bool) -> Candidate {
        Candidate {
            app,
            arrival,
            issuable,
            row_hit: false,
            queue_len: 4,
        }
    }

    #[test]
    fn fcfs_picks_oldest_issuable() {
        let mut p = Policy::fcfs(3);
        let c = [cand(0, 50, true), cand(1, 10, false), cand(2, 30, true)];
        assert_eq!(p.pick(&c), Some(2));
        // Nothing issuable → None.
        let c = [cand(0, 50, false), cand(1, 10, false)];
        assert_eq!(p.pick(&c), None);
    }

    #[test]
    fn frfcfs_prefers_row_hits() {
        let mut p = Policy::fr_fcfs(3);
        let mut c = [cand(0, 10, true), cand(1, 50, true)];
        c[1].row_hit = true;
        assert_eq!(p.pick(&c), Some(1), "younger row hit beats older miss");
        // Among equal hit status, oldest wins.
        c[1].row_hit = false;
        assert_eq!(p.pick(&c), Some(0));
    }

    #[test]
    fn stf_serves_proportionally_to_shares() {
        // β = [0.75, 0.25]: app 0 should be served ~3× as often.
        let mut p = Policy::stf(vec![0.75, 0.25]);
        let mut counts = [0usize; 2];
        for i in 0..400 {
            let c = [cand(0, i, true), cand(1, i, true)];
            let picked = p.pick(&c).unwrap();
            counts[picked] += 1;
            p.on_served(picked);
        }
        assert_eq!(counts[0] + counts[1], 400);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.1,
            "ratio {ratio} should be ~3 (counts {counts:?})"
        );
    }

    #[test]
    fn stf_is_work_conserving() {
        // App 1 absent: app 0 gets everything despite tiny share.
        let mut p = Policy::stf(vec![0.01, 0.99]);
        for i in 0..10 {
            let c = [cand(0, i, true)];
            assert_eq!(p.pick(&c), Some(0));
            p.on_served(0);
        }
        assert!(p.tag(0) > 900.0);
    }

    #[test]
    fn stf_credit_carries_over_idle_periods() {
        // Both apps share 50/50. App 1 is absent for a while; when it
        // returns, its stale (smaller) tag gives it back-to-back service.
        let mut p = Policy::stf(vec![0.5, 0.5]);
        for i in 0..10 {
            let c = [cand(0, i, true)];
            let picked = p.pick(&c).unwrap();
            p.on_served(picked);
        }
        // App 1 returns: its tag (0) lags app 0's (20); it wins repeatedly.
        for i in 0..9 {
            let c = [cand(0, 100 + i, true), cand(1, 100 + i, true)];
            let picked = p.pick(&c).unwrap();
            assert_eq!(picked, 1, "round {i}: app 1 should catch up");
            p.on_served(picked);
        }
        // After catching up (tag 18 vs 20), app 1 still wins once more, then
        // they alternate.
        let c = [cand(0, 200, true), cand(1, 200, true)];
        assert_eq!(p.pick(&c), Some(1));
    }

    #[test]
    fn stf_zero_share_only_served_alone() {
        let mut p = Policy::stf(vec![1.0, 0.0]);
        p.on_served(1); // tag leaps to ~1e18
        let c = [cand(0, 5, true), cand(1, 1, true)];
        assert_eq!(p.pick(&c), Some(0));
        // ...but still served when alone (work conservation).
        let c = [cand(1, 1, true)];
        assert_eq!(p.pick(&c), Some(1));
    }

    #[test]
    fn priority_strictly_orders_by_key() {
        let mut p = Policy::priority(vec![3.0, 1.0, 2.0]);
        let c = [cand(0, 1, true), cand(1, 99, true), cand(2, 50, true)];
        assert_eq!(p.pick(&c), Some(1), "lowest key wins regardless of age");
        // Highest-priority app blocked → next key.
        let c = [cand(0, 1, true), cand(1, 99, false), cand(2, 50, true)];
        assert_eq!(p.pick(&c), Some(2));
    }

    #[test]
    fn set_shares_preserves_tags() {
        let mut p = Policy::stf(vec![0.5, 0.5]);
        p.on_served(0);
        let t = p.tag(0);
        p.set_shares(vec![0.9, 0.1]);
        assert_eq!(p.tag(0), t);
        p.on_served(0);
        assert!((p.tag(0) - (t + 1.0 / 0.9)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shares must be non-empty")]
    fn stf_rejects_empty_shares() {
        let _ = Policy::stf(vec![]);
    }

    #[test]
    #[should_panic(expected = "share vector length")]
    fn set_shares_rejects_length_change() {
        let mut p = Policy::stf(vec![0.5, 0.5]);
        p.set_shares(vec![1.0]);
    }

    #[test]
    fn ties_break_deterministically_by_app() {
        let mut p = Policy::fcfs(2);
        let c = [cand(1, 10, true), cand(0, 10, true)];
        assert_eq!(p.pick(&c), Some(0));
        let mut p = Policy::priority(vec![1.0, 1.0]);
        assert_eq!(p.pick(&c), Some(0));
    }

    #[test]
    fn parbs_batches_then_shortest_job_first() {
        let mut p = Policy::parbs(3, 5);
        // Queue lengths 2, 6, 4 → batch marks 2, 5, 4.
        let mk = |ql: [usize; 3]| -> Vec<Candidate> {
            (0..3)
                .map(|app| Candidate {
                    app,
                    arrival: app as u64,
                    issuable: true,
                    row_hit: false,
                    queue_len: ql[app],
                })
                .collect()
        };
        let c = mk([2, 6, 4]);
        // First pick forms the batch and serves the shortest job (app 0).
        assert_eq!(p.pick(&c), Some(0));
        p.on_served(0);
        assert_eq!(p.pick(&c), Some(0));
        p.on_served(0);
        // App 0's marks are exhausted: next-shortest (app 2, 4 marks).
        assert_eq!(p.pick(&c), Some(2));
    }

    #[test]
    fn parbs_prefers_batched_over_unbatched() {
        let mut p = Policy::parbs(2, 1);
        let c: Vec<Candidate> = (0..2)
            .map(|app| Candidate {
                app,
                arrival: 10 - app as u64, // app 1 older
                issuable: true,
                row_hit: false,
                queue_len: 3,
            })
            .collect();
        // Batch forms with 1 mark each; both batched → oldest (app 1).
        assert_eq!(p.pick(&c), Some(1));
        p.on_served(1);
        // App 1 unbatched now; app 0 still batched → app 0 wins despite age.
        assert_eq!(p.pick(&c), Some(0));
    }

    #[test]
    fn parbs_is_starvation_free_under_saturation() {
        // Unlike strict priority, every app keeps getting service because
        // batches must drain before re-forming.
        let mut p = Policy::parbs(3, 5);
        let mut served = [0u64; 3];
        for round in 0..600 {
            let c: Vec<Candidate> = (0..3)
                .map(|app| Candidate {
                    app,
                    arrival: round,
                    issuable: true,
                    row_hit: false,
                    queue_len: [20usize, 4, 1][app],
                })
                .collect();
            let pick = p.pick(&c).unwrap();
            served[pick] += 1;
            p.on_served(pick);
        }
        for (i, &s) in served.iter().enumerate() {
            assert!(s > 30, "app {i} starved: {served:?}");
        }
    }

    #[test]
    fn atlas_balances_attained_service() {
        let mut p = Policy::atlas(2, 1.0);
        let c: Vec<Candidate> = (0..2)
            .map(|app| Candidate {
                app,
                arrival: app as u64,
                issuable: true,
                row_hit: false,
                queue_len: 4,
            })
            .collect();
        let mut served = [0u64; 2];
        for _ in 0..100 {
            let pick = p.pick(&c).unwrap();
            served[pick] += 1;
            p.on_served(pick);
        }
        assert_eq!(served[0], 50);
        assert_eq!(served[1], 50);
        assert!((p.attained(0) - p.attained(1)).abs() <= 1.0);
    }

    #[test]
    fn atlas_catches_up_an_underserved_app() {
        let mut p = Policy::atlas(2, 0.999);
        // App 0 hogs service while app 1 is absent.
        for _ in 0..50 {
            p.on_served(0);
        }
        // When app 1 appears it wins until its history catches up.
        let c: Vec<Candidate> = (0..2)
            .map(|app| Candidate {
                app,
                arrival: 0,
                issuable: true,
                row_hit: false,
                queue_len: 4,
            })
            .collect();
        for _ in 0..20 {
            assert_eq!(p.pick(&c), Some(1));
            p.on_served(1);
        }
    }

    #[test]
    #[should_panic(expected = "batch cap")]
    fn parbs_rejects_zero_cap() {
        let _ = Policy::parbs(2, 0);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn atlas_rejects_bad_decay() {
        let _ = Policy::atlas(2, 0.0);
    }

    #[test]
    fn tcm_clusters_light_apps_and_prioritizes_them() {
        let mut p = Policy::tcm(3, 100);
        // Epoch 1: app 0 heavy (80), app 1 medium (15), app 2 light (5).
        for _ in 0..80 {
            p.on_served(0);
        }
        for _ in 0..15 {
            p.on_served(1);
        }
        for _ in 0..5 {
            p.on_served(2);
        }
        // 100 services → re-clustered: cumulative lightest-first:
        // app2 (5%) ≤ 20% → latency; app1 (5+15=20%) ≤ 20% → latency;
        // app0 (100%) → bandwidth.
        assert!(p.in_latency_cluster(2));
        assert!(p.in_latency_cluster(1));
        assert!(!p.in_latency_cluster(0));
        // Latency-cluster requests win even when younger.
        let c: Vec<Candidate> = (0..3)
            .map(|app| Candidate {
                app,
                arrival: app as u64, // app 0 oldest
                issuable: true,
                row_hit: false,
                queue_len: 8,
            })
            .collect();
        let pick = p.pick(&c).unwrap();
        assert!(pick == 1 || pick == 2, "latency cluster first, got {pick}");
    }

    #[test]
    fn tcm_rotation_spreads_bandwidth_cluster_service() {
        // All apps heavy: everyone lands in the bandwidth cluster, and the
        // rotating rank must spread first pick across apps over epochs.
        let mut p = Policy::tcm(3, 30);
        let c: Vec<Candidate> = (0..3)
            .map(|app| Candidate {
                app,
                arrival: 0,
                issuable: true,
                row_hit: false,
                queue_len: 8,
            })
            .collect();
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..6 {
            // Burn one epoch with balanced service.
            for _ in 0..10 {
                for app in 0..3 {
                    p.on_served(app);
                }
            }
            firsts.insert(p.pick(&c).unwrap());
        }
        assert!(
            firsts.len() >= 2,
            "rotation should vary the bandwidth-cluster leader: {firsts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn tcm_rejects_zero_epoch() {
        let _ = Policy::tcm(2, 0);
    }
}
