#![warn(missing_docs)]

//! # bwpart-mc — the partitioning memory controller
//!
//! Implements Section IV of the paper: the machinery that *enforces* a
//! bandwidth partition and *profiles* the inputs the analytical model needs.
//!
//! * [`request`] / [`queue`] — per-application transaction queues.
//! * [`policy`] — the scheduling policies:
//!   - **FCFS** (`No_partitioning` baseline): oldest issuable request first.
//!   - **FR-FCFS**: row hits first, then oldest (open-page utilization
//!     baseline).
//!   - **STF** — the paper's modified DRAM Start-Time Fair mechanism
//!     (Section IV-B): per-application virtual start tags
//!     `S_i = S_{i-1} + 1/β` that do **not** depend on arrival time, so an
//!     application that under-used its share earlier can catch up.
//!   - **Priority** — strict priority order (realizes `Priority_APC` /
//!     `Priority_API`, Section III-D/E).
//! * [`interference`] — Section IV-C detection: cycles an application's
//!   head request is blocked by another application's traffic (DRAM bus and
//!   bank conflicts) or passed over by the scheduler in favour of another
//!   application.
//! * [`profiler`] — Eq. 12–13 online `APC_alone` estimation from the three
//!   per-application counters (`N_accesses`, `T_cyc,shared`,
//!   `T_cyc,interference`).
//! * [`controller`] — the [`MemoryController`] tying it together on the
//!   DRAM command clock.

pub mod controller;
pub mod interference;
pub mod obs;
pub mod policy;
pub mod profiler;
pub mod queue;
pub mod request;

pub use controller::{McStats, MemoryController};
pub use obs::McObsHooks;
pub use policy::{Policy, PolicyKind};
pub use profiler::{ApcProfiler, DeltaAccumulator, ProfileSnapshot, TelemetryDelta};
pub use request::MemRequest;
