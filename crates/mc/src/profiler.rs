//! Online `APC_alone` estimation (Section IV-C, Eq. 12–13).
//!
//! Three counters per application suffice:
//!
//! * `N_accesses,i` — memory accesses served (reads and writes),
//! * `T_cyc,shared,i` — cycles elapsed in the shared context (the epoch
//!   length for continuously-running applications), and
//! * `T_cyc,interference,i` — cycles the application was blocked by other
//!   applications' traffic.
//!
//! Then `T_cyc,alone,i = T_cyc,shared,i − T_cyc,interference,i` (Eq. 13) and
//! `APC_alone,i = N_accesses,i / T_cyc,alone,i` (Eq. 12).
//!
//! The estimate is an approximation; as the paper notes, consistency is
//! what matters — the same estimated values feed both the partitioning
//! computation and the metric denominators.

use serde::{Deserialize, Serialize};

/// One epoch's profile estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Epoch length in cycles (`T_cyc,shared`).
    pub elapsed: u64,
    /// Accesses served per application (`N_accesses`).
    pub accesses: Vec<u64>,
    /// Interference cycles per application (`T_cyc,interference`).
    pub interference: Vec<u64>,
    /// Estimated standalone bandwidth per application (`APC_alone`, Eq. 12).
    pub apc_alone: Vec<f64>,
    /// Observed shared-mode bandwidth per application (`APC_shared`).
    pub apc_shared: Vec<f64>,
}

/// Epoch-based profiler: feed it the controller's counters at an epoch
/// boundary and it produces the Eq. 12 estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApcProfiler {
    epoch_start: u64,
    /// Floor on `T_cyc,alone` as a fraction of the epoch, guarding the
    /// estimate against pathological interference counts.
    min_alone_fraction: f64,
}

impl ApcProfiler {
    /// Start profiling at `now`.
    pub fn new(now: u64) -> Self {
        ApcProfiler {
            epoch_start: now,
            min_alone_fraction: 0.02,
        }
    }

    /// Cycle the current epoch began.
    pub fn epoch_start(&self) -> u64 {
        self.epoch_start
    }

    /// Produce the Eq. 12 estimate for the epoch `[epoch_start, now)` and
    /// begin a new epoch at `now`. `accesses[i]` and `interference[i]` must
    /// be the per-application counts accumulated over this epoch.
    pub fn take_snapshot(
        &mut self,
        now: u64,
        accesses: &[u64],
        interference: &[u64],
    ) -> ProfileSnapshot {
        assert_eq!(accesses.len(), interference.len());
        assert!(now > self.epoch_start, "epoch must have non-zero length");
        let elapsed = now - self.epoch_start;
        let floor = (elapsed as f64 * self.min_alone_fraction) as u64;
        let apc_alone = accesses
            .iter()
            .zip(interference)
            .map(|(&n, &intf)| {
                // Eq. 13: T_alone = T_shared − T_interference, floored.
                let t_alone = elapsed.saturating_sub(intf).max(floor).max(1);
                n as f64 / t_alone as f64
            })
            .collect();
        let apc_shared = accesses
            .iter()
            .map(|&n| n as f64 / elapsed as f64)
            .collect();
        let snap = ProfileSnapshot {
            elapsed,
            accesses: accesses.to_vec(),
            interference: interference.to_vec(),
            apc_alone,
            apc_shared,
        };
        self.epoch_start = now;
        snap
    }
}

impl ProfileSnapshot {
    /// Estimated `API` per application given instruction counts retired
    /// over the same epoch (the core-side counter).
    pub fn api(&self, instructions: &[u64]) -> Vec<f64> {
        assert_eq!(instructions.len(), self.accesses.len());
        self.accesses
            .iter()
            .zip(instructions)
            .map(|(&n, &instr)| n as f64 / instr.max(1) as f64)
            .collect()
    }

    /// Estimated standalone IPC per application (Eq. 1 applied to the
    /// estimates): `APC_alone / API`.
    pub fn ipc_alone(&self, instructions: &[u64]) -> Vec<f64> {
        self.apc_alone
            .iter()
            .zip(self.api(instructions))
            .map(|(&apc, api)| if api > 0.0 { apc / api } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn eq12_eq13_arithmetic() {
        let mut p = ApcProfiler::new(1000);
        // Over 10_000 cycles: app 0 served 50 accesses with 5_000 cycles of
        // interference → APC_alone = 50 / 5_000 = 0.01.
        let snap = p.take_snapshot(11_000, &[50, 20], &[5_000, 0]);
        assert_eq!(snap.elapsed, 10_000);
        assert!((snap.apc_alone[0] - 0.01).abs() < 1e-12);
        // No interference → alone rate equals shared rate.
        assert!((snap.apc_alone[1] - 0.002).abs() < 1e-12);
        assert!((snap.apc_shared[1] - 0.002).abs() < 1e-12);
        // Next epoch starts at the snapshot point.
        assert_eq!(p.epoch_start(), 11_000);
    }

    #[test]
    fn interference_floor_prevents_blowup() {
        let mut p = ApcProfiler::new(0);
        // Interference ≈ the whole epoch: without the floor the estimate
        // would explode.
        let snap = p.take_snapshot(10_000, &[10], &[10_000]);
        let floor_alone = (10_000.0 * 0.02) as u64;
        assert!((snap.apc_alone[0] - 10.0 / floor_alone as f64).abs() < 1e-12);
    }

    #[test]
    fn api_and_ipc_alone_derivations() {
        let mut p = ApcProfiler::new(0);
        let snap = p.take_snapshot(10_000, &[100, 0], &[2_000, 0]);
        let api = snap.api(&[20_000, 5_000]);
        assert!((api[0] - 0.005).abs() < 1e-12);
        assert_eq!(api[1], 0.0);
        let ipc = snap.ipc_alone(&[20_000, 5_000]);
        // APC_alone = 100/8000 = 0.0125; IPC = 0.0125 / 0.005 = 2.5.
        assert!((ipc[0] - 2.5).abs() < 1e-12);
        assert_eq!(ipc[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero length")]
    fn zero_length_epoch_rejected() {
        let mut p = ApcProfiler::new(5);
        let _ = p.take_snapshot(5, &[1], &[0]);
    }
}
