//! Online `APC_alone` estimation (Section IV-C, Eq. 12–13).
//!
//! Three counters per application suffice:
//!
//! * `N_accesses,i` — memory accesses served (reads and writes),
//! * `T_cyc,shared,i` — cycles elapsed in the shared context (the epoch
//!   length for continuously-running applications), and
//! * `T_cyc,interference,i` — cycles the application was blocked by other
//!   applications' traffic.
//!
//! Then `T_cyc,alone,i = T_cyc,shared,i − T_cyc,interference,i` (Eq. 13) and
//! `APC_alone,i = N_accesses,i / T_cyc,alone,i` (Eq. 12).
//!
//! The estimate is an approximation; as the paper notes, consistency is
//! what matters — the same estimated values feed both the partitioning
//! computation and the metric denominators.

use serde::{Deserialize, Serialize};

/// One epoch's profile estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Epoch length in cycles (`T_cyc,shared`).
    pub elapsed: u64,
    /// Accesses served per application (`N_accesses`).
    pub accesses: Vec<u64>,
    /// Interference cycles per application (`T_cyc,interference`).
    pub interference: Vec<u64>,
    /// Estimated standalone bandwidth per application (`APC_alone`, Eq. 12).
    pub apc_alone: Vec<f64>,
    /// Observed shared-mode bandwidth per application (`APC_shared`).
    pub apc_shared: Vec<f64>,
}

/// Epoch-based profiler: feed it the controller's counters at an epoch
/// boundary and it produces the Eq. 12 estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApcProfiler {
    epoch_start: u64,
    /// Floor on `T_cyc,alone` as a fraction of the epoch, guarding the
    /// estimate against pathological interference counts.
    min_alone_fraction: f64,
}

impl ApcProfiler {
    /// Start profiling at `now`.
    pub fn new(now: u64) -> Self {
        ApcProfiler {
            epoch_start: now,
            min_alone_fraction: 0.02,
        }
    }

    /// Cycle the current epoch began.
    pub fn epoch_start(&self) -> u64 {
        self.epoch_start
    }

    /// Produce the Eq. 12 estimate for the epoch `[epoch_start, now)` and
    /// begin a new epoch at `now`. `accesses[i]` and `interference[i]` must
    /// be the per-application counts accumulated over this epoch.
    pub fn take_snapshot(
        &mut self,
        now: u64,
        accesses: &[u64],
        interference: &[u64],
    ) -> ProfileSnapshot {
        assert_eq!(accesses.len(), interference.len());
        assert!(now > self.epoch_start, "epoch must have non-zero length");
        let elapsed = now - self.epoch_start;
        let floor = (elapsed as f64 * self.min_alone_fraction) as u64;
        let apc_alone = accesses
            .iter()
            .zip(interference)
            .map(|(&n, &intf)| {
                // Eq. 13: T_alone = T_shared − T_interference, floored.
                let t_alone = elapsed.saturating_sub(intf).max(floor).max(1);
                n as f64 / t_alone as f64
            })
            .collect();
        let apc_shared = accesses
            .iter()
            .map(|&n| n as f64 / elapsed as f64)
            .collect();
        let snap = ProfileSnapshot {
            elapsed,
            accesses: accesses.to_vec(),
            interference: interference.to_vec(),
            apc_alone,
            apc_shared,
        };
        self.epoch_start = now;
        snap
    }
}

/// One increment of the three Section IV-C counters, as reported by a
/// telemetry source (a simulated controller, a hardware PMU read, or a
/// `bwpartd` client) since its previous report.
///
/// Deltas are what an online service can actually collect: counter reads
/// arrive asynchronously and per-application, so absolute epoch-boundary
/// counts (what [`ApcProfiler::take_snapshot`] consumes) are not available.
/// Folding deltas into a [`DeltaAccumulator`] recovers the same Eq. 12–13
/// estimate without requiring a synchronized epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TelemetryDelta {
    /// Memory accesses served (`ΔN_accesses`).
    pub accesses: u64,
    /// Cycles elapsed in the shared context (`ΔT_cyc,shared`).
    pub shared_cycles: u64,
    /// Cycles blocked by other applications' traffic
    /// (`ΔT_cyc,interference`).
    pub interference_cycles: u64,
}

impl TelemetryDelta {
    /// True when the delta carries no signal at all (an idle report).
    pub fn is_empty(&self) -> bool {
        self.accesses == 0 && self.shared_cycles == 0
    }
}

/// Fold-from-deltas profiler: sums [`TelemetryDelta`]s and produces the
/// Eq. 12–13 `APC_alone` estimate on demand.
///
/// Unlike [`ApcProfiler::take_snapshot`] this never divides by zero: an
/// accumulator that has seen no cycles yet (or only idle reports) yields
/// `None` from [`DeltaAccumulator::apc_alone`], and interference counts
/// that would drive `T_cyc,alone` to zero are floored the same way the
/// epoch profiler floors them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeltaAccumulator {
    /// Total accesses folded so far.
    pub accesses: u64,
    /// Total shared-context cycles folded so far.
    pub shared_cycles: u64,
    /// Total interference cycles folded so far.
    pub interference_cycles: u64,
}

impl DeltaAccumulator {
    /// Fresh accumulator with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one delta in (saturating, so malicious or wrapped counter
    /// reports cannot overflow the totals).
    pub fn fold(&mut self, d: TelemetryDelta) {
        self.accesses = self.accesses.saturating_add(d.accesses);
        self.shared_cycles = self.shared_cycles.saturating_add(d.shared_cycles);
        self.interference_cycles = self
            .interference_cycles
            .saturating_add(d.interference_cycles);
    }

    /// Merge another accumulator (e.g. per-connection partial sums).
    pub fn merge(&mut self, other: &DeltaAccumulator) {
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.shared_cycles = self.shared_cycles.saturating_add(other.shared_cycles);
        self.interference_cycles = self
            .interference_cycles
            .saturating_add(other.interference_cycles);
    }

    /// Reset all counters to zero (start of a new epoch window).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// True when nothing has been folded (or only idle reports).
    pub fn is_idle(&self) -> bool {
        self.shared_cycles == 0
    }

    /// Eq. 12–13 estimate over everything folded so far:
    /// `APC_alone = N / max(T_shared − T_interference, floor)` with the
    /// same `min_alone_fraction` floor the epoch profiler applies.
    /// Returns `None` while no shared cycles have been observed — the
    /// caller decides how to treat an all-idle window (a `bwpartd` epoch
    /// keeps its previous estimate rather than fabricating a zero rate).
    pub fn apc_alone(&self, min_alone_fraction: f64) -> Option<f64> {
        if self.shared_cycles == 0 {
            return None;
        }
        let floor = (self.shared_cycles as f64 * min_alone_fraction) as u64;
        let t_alone = self
            .shared_cycles
            .saturating_sub(self.interference_cycles)
            .max(floor)
            .max(1);
        Some(self.accesses as f64 / t_alone as f64)
    }

    /// Observed shared-mode bandwidth over the folded window
    /// (`APC_shared = N / T_shared`), `None` while idle.
    pub fn apc_shared(&self) -> Option<f64> {
        if self.shared_cycles == 0 {
            return None;
        }
        Some(self.accesses as f64 / self.shared_cycles as f64)
    }
}

impl ApcProfiler {
    /// The `T_cyc,alone` floor fraction this profiler applies (shared with
    /// the fold-from-deltas path so both estimators agree).
    pub fn min_alone_fraction(&self) -> f64 {
        self.min_alone_fraction
    }

    /// Produce a [`ProfileSnapshot`] from per-application delta
    /// accumulators instead of epoch-boundary counters. `now` advances the
    /// profiler's epoch start exactly like
    /// [`ApcProfiler::take_snapshot`]; the snapshot's `elapsed` is the
    /// maximum shared-cycle window any application reported (applications
    /// report asynchronously, so windows need not agree).
    pub fn fold_snapshot(&mut self, now: u64, accs: &[DeltaAccumulator]) -> ProfileSnapshot {
        let elapsed = accs
            .iter()
            .map(|a| a.shared_cycles)
            .max()
            .unwrap_or(0)
            .max(1);
        let apc_alone = accs
            .iter()
            .map(|a| a.apc_alone(self.min_alone_fraction).unwrap_or(0.0))
            .collect();
        let apc_shared = accs.iter().map(|a| a.apc_shared().unwrap_or(0.0)).collect();
        let snap = ProfileSnapshot {
            elapsed,
            accesses: accs.iter().map(|a| a.accesses).collect(),
            interference: accs.iter().map(|a| a.interference_cycles).collect(),
            apc_alone,
            apc_shared,
        };
        if now > self.epoch_start {
            self.epoch_start = now;
        }
        snap
    }
}

impl ProfileSnapshot {
    /// Estimated `API` per application given instruction counts retired
    /// over the same epoch (the core-side counter).
    pub fn api(&self, instructions: &[u64]) -> Vec<f64> {
        assert_eq!(instructions.len(), self.accesses.len());
        self.accesses
            .iter()
            .zip(instructions)
            .map(|(&n, &instr)| n as f64 / instr.max(1) as f64)
            .collect()
    }

    /// Estimated standalone IPC per application (Eq. 1 applied to the
    /// estimates): `APC_alone / API`.
    pub fn ipc_alone(&self, instructions: &[u64]) -> Vec<f64> {
        self.apc_alone
            .iter()
            .zip(self.api(instructions))
            .map(|(&apc, api)| if api > 0.0 { apc / api } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn eq12_eq13_arithmetic() {
        let mut p = ApcProfiler::new(1000);
        // Over 10_000 cycles: app 0 served 50 accesses with 5_000 cycles of
        // interference → APC_alone = 50 / 5_000 = 0.01.
        let snap = p.take_snapshot(11_000, &[50, 20], &[5_000, 0]);
        assert_eq!(snap.elapsed, 10_000);
        assert!((snap.apc_alone[0] - 0.01).abs() < 1e-12);
        // No interference → alone rate equals shared rate.
        assert!((snap.apc_alone[1] - 0.002).abs() < 1e-12);
        assert!((snap.apc_shared[1] - 0.002).abs() < 1e-12);
        // Next epoch starts at the snapshot point.
        assert_eq!(p.epoch_start(), 11_000);
    }

    #[test]
    fn interference_floor_prevents_blowup() {
        let mut p = ApcProfiler::new(0);
        // Interference ≈ the whole epoch: without the floor the estimate
        // would explode.
        let snap = p.take_snapshot(10_000, &[10], &[10_000]);
        let floor_alone = (10_000.0 * 0.02) as u64;
        assert!((snap.apc_alone[0] - 10.0 / floor_alone as f64).abs() < 1e-12);
    }

    #[test]
    fn api_and_ipc_alone_derivations() {
        let mut p = ApcProfiler::new(0);
        let snap = p.take_snapshot(10_000, &[100, 0], &[2_000, 0]);
        let api = snap.api(&[20_000, 5_000]);
        assert!((api[0] - 0.005).abs() < 1e-12);
        assert_eq!(api[1], 0.0);
        let ipc = snap.ipc_alone(&[20_000, 5_000]);
        // APC_alone = 100/8000 = 0.0125; IPC = 0.0125 / 0.005 = 2.5.
        assert!((ipc[0] - 2.5).abs() < 1e-12);
        assert_eq!(ipc[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero length")]
    fn zero_length_epoch_rejected() {
        let mut p = ApcProfiler::new(5);
        let _ = p.take_snapshot(5, &[1], &[0]);
    }

    #[test]
    fn delta_fold_matches_epoch_snapshot() {
        // Folding the same counters as deltas reproduces take_snapshot's
        // Eq. 12 estimate exactly, regardless of how the deltas are split.
        let mut epoch = ApcProfiler::new(0);
        let snap = epoch.take_snapshot(10_000, &[50, 20], &[5_000, 0]);

        let mut acc0 = DeltaAccumulator::new();
        for _ in 0..5 {
            acc0.fold(TelemetryDelta {
                accesses: 10,
                shared_cycles: 2_000,
                interference_cycles: 1_000,
            });
        }
        let mut acc1 = DeltaAccumulator::new();
        acc1.fold(TelemetryDelta {
            accesses: 20,
            shared_cycles: 10_000,
            interference_cycles: 0,
        });

        let frac = epoch.min_alone_fraction();
        assert!((acc0.apc_alone(frac).unwrap() - snap.apc_alone[0]).abs() < 1e-12);
        assert!((acc1.apc_alone(frac).unwrap() - snap.apc_alone[1]).abs() < 1e-12);
        assert!((acc1.apc_shared().unwrap() - snap.apc_shared[1]).abs() < 1e-12);
    }

    #[test]
    fn all_idle_accumulator_yields_none_not_nan() {
        // Regression: an all-idle epoch (no cycles reported) must not
        // divide by zero — the estimate is absent, never NaN/inf.
        let acc = DeltaAccumulator::new();
        assert!(acc.is_idle());
        assert_eq!(acc.apc_alone(0.02), None);
        assert_eq!(acc.apc_shared(), None);

        // Zero accesses over a live window is a legitimate zero rate.
        let mut quiet = DeltaAccumulator::new();
        quiet.fold(TelemetryDelta {
            accesses: 0,
            shared_cycles: 10_000,
            interference_cycles: 0,
        });
        let est = quiet.apc_alone(0.02).unwrap();
        assert!(est.is_finite());
        assert_eq!(est, 0.0);
    }

    #[test]
    fn interference_floor_applies_to_deltas_too() {
        let mut acc = DeltaAccumulator::new();
        acc.fold(TelemetryDelta {
            accesses: 10,
            shared_cycles: 10_000,
            interference_cycles: 10_000,
        });
        let floor_alone = (10_000.0 * 0.02) as u64;
        let est = acc.apc_alone(0.02).unwrap();
        assert!((est - 10.0 / floor_alone as f64).abs() < 1e-12);
    }

    #[test]
    fn fold_saturates_instead_of_overflowing() {
        let mut acc = DeltaAccumulator::new();
        acc.fold(TelemetryDelta {
            accesses: u64::MAX,
            shared_cycles: u64::MAX,
            interference_cycles: 0,
        });
        acc.fold(TelemetryDelta {
            accesses: u64::MAX,
            shared_cycles: 1,
            interference_cycles: 1,
        });
        assert_eq!(acc.accesses, u64::MAX);
        assert_eq!(acc.shared_cycles, u64::MAX);
        assert!(acc.apc_alone(0.02).unwrap().is_finite());
    }

    #[test]
    fn merge_and_reset() {
        let mut a = DeltaAccumulator::new();
        a.fold(TelemetryDelta {
            accesses: 5,
            shared_cycles: 100,
            interference_cycles: 10,
        });
        let mut b = DeltaAccumulator::new();
        b.fold(TelemetryDelta {
            accesses: 7,
            shared_cycles: 200,
            interference_cycles: 20,
        });
        a.merge(&b);
        assert_eq!(a.accesses, 12);
        assert_eq!(a.shared_cycles, 300);
        assert_eq!(a.interference_cycles, 30);
        a.reset();
        assert!(a.is_idle());
        assert_eq!(a.accesses, 0);
    }

    #[test]
    fn fold_snapshot_mirrors_accumulators() {
        let mut p = ApcProfiler::new(0);
        let mut acc = DeltaAccumulator::new();
        acc.fold(TelemetryDelta {
            accesses: 50,
            shared_cycles: 10_000,
            interference_cycles: 5_000,
        });
        let idle = DeltaAccumulator::new();
        let snap = p.fold_snapshot(10_000, &[acc.clone(), idle]);
        assert_eq!(snap.elapsed, 10_000);
        assert!((snap.apc_alone[0] - 0.01).abs() < 1e-12);
        // Idle app: zero estimate, no NaN.
        assert_eq!(snap.apc_alone[1], 0.0);
        assert_eq!(snap.apc_shared[1], 0.0);
        assert_eq!(p.epoch_start(), 10_000);
    }
}
