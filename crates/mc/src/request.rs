//! Memory request records as seen by the controller.

use serde::{Deserialize, Serialize};

/// One line-granular memory request from a core (demand miss or writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Issuing application (core) index.
    pub app: usize,
    /// Physical byte address.
    pub addr: u64,
    /// Write (writeback) or read (demand miss).
    pub is_write: bool,
    /// CPU cycle the request arrived at the controller.
    pub arrival: u64,
}

impl MemRequest {
    /// Convenience constructor for a demand read.
    pub fn read(app: usize, addr: u64, arrival: u64) -> Self {
        MemRequest {
            app,
            addr,
            is_write: false,
            arrival,
        }
    }

    /// Convenience constructor for a writeback.
    pub fn write(app: usize, addr: u64, arrival: u64) -> Self {
        MemRequest {
            app,
            addr,
            is_write: true,
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_direction() {
        let r = MemRequest::read(2, 0x40, 100);
        assert!(!r.is_write);
        assert_eq!(r.app, 2);
        let w = MemRequest::write(1, 0x80, 200);
        assert!(w.is_write);
        assert_eq!(w.arrival, 200);
    }
}
