//! The memory controller: per-application queues in front of the DRAM
//! system, a scheduling policy deciding service order on each DRAM command
//! clock, and the Section IV-C interference/profiling counters.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bwpart_obs::obs_count;
use serde::{Deserialize, Serialize};

use bwpart_dram::{Completion, DramConfig, DramSystem, MemTransaction, ProbeCache};

use crate::interference::InterferenceTracker;
use crate::obs::McObsHooks;
use crate::policy::{Candidate, Policy};
use crate::queue::AppQueues;
use crate::request::MemRequest;

/// Controller-level statistics (DRAM-side counters live in
/// [`DramSystem::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct McStats {
    /// Requests served per application (lifetime).
    pub served: Vec<u64>,
    /// Sum of (completion − arrival) latency per application, CPU cycles.
    pub latency_sum: Vec<u64>,
    /// DRAM command clocks on which nothing could be scheduled although
    /// requests were pending (head-of-line / timing stalls).
    pub stalled_ticks: u64,
    /// DRAM command clocks with at least one pending request.
    pub busy_ticks: u64,
}

impl McStats {
    fn new(apps: usize) -> Self {
        McStats {
            served: vec![0; apps],
            latency_sum: vec![0; apps],
            stalled_ticks: 0,
            busy_ticks: 0,
        }
    }

    /// Average queue+service latency for `app`.
    pub fn avg_latency(&self, app: usize) -> f64 {
        if self.served[app] == 0 {
            0.0
        } else {
            self.latency_sum[app] as f64 / self.served[app] as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Pending {
    done: u64,
    seq: u64,
    completion: Completion,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.done, self.seq).cmp(&(other.done, other.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One per-application slot of the parallel gather's persistent scratch
/// (see [`MemoryController::tick`]): the pool workers write their scan
/// results in place, so the steady-state parallel branch allocates
/// nothing at this layer — slot growth is one-time per application count,
/// and each slot's `refreshed` spill keeps its capacity across ticks.
#[derive(Debug, Clone, Default)]
struct FanSlot {
    /// Application scanned by this slot.
    app: usize,
    /// Chosen candidate: `(window position, arrival, row_hit)`.
    chosen: Option<(usize, u64, bool)>,
    /// Head-of-queue blocker attribution (window position 0 only).
    head_blocker: Option<usize>,
    /// Probe caches refreshed against local copies during the scan,
    /// written back in input order after the fan-out joins.
    refreshed: Vec<(usize, ProbeCache)>,
}

/// The shared memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: DramSystem,
    queues: AppQueues,
    policy: Policy,
    interference: InterferenceTracker,
    completions: BinaryHeap<Reverse<Pending>>,
    stats: McStats,
    /// Accesses served per application in the current profiling epoch.
    epoch_accesses: Vec<u64>,
    tck: u64,
    next_tick: u64,
    seq: u64,
    /// Per-application scheduling-window depth: how far past the FIFO head
    /// the controller looks for an issuable request.
    sched_window: usize,
    /// Scratch candidate buffer reused across ticks (never observable:
    /// cleared and refilled inside [`tick`](Self::tick)).
    cand_buf: Vec<Candidate>,
    /// Scratch window-position buffer parallel to `cand_buf`.
    pos_buf: Vec<usize>,
    /// Scratch per-candidate head-blocker cache parallel to `cand_buf`:
    /// the interference attribution of each blocked head as of the gather
    /// pass, valid for the interference loop only while no request was
    /// issued in between (a stalled tick).
    blocker_buf: Vec<Option<usize>>,
    /// Scratch list of pending applications for the gather pass (the
    /// per-slot probe caches need `&mut self.queues`, so the pending set is
    /// snapshotted first).
    app_buf: Vec<usize>,
    /// Persistent per-application scratch for the parallel gather's
    /// fan-out (one [`FanSlot`] per pending application, reused across
    /// ticks). Never observable: fully reset inside
    /// [`tick`](Self::tick) before every fan-out.
    fan_slots: Vec<FanSlot>,
    /// Per-channel `(version, floor)` cache of
    /// [`DramSystem::channel_floor`]: while a channel's version is
    /// unchanged and its floor lies beyond `now`, no request on it can
    /// issue and the scheduling window need not be scanned past the head.
    floor_cache: Vec<(u64, u64)>,
    /// Fan the candidate gather over the vendored thread pool
    /// (bit-identical to the sequential gather; see [`tick`](Self::tick)).
    parallel_channels: bool,
    /// Optional observability hooks (pre-resolved metric handles). Never
    /// observable by the simulation: written only through the zero-cost
    /// `obs_*!` macros, shared by clones.
    obs: Option<Box<McObsHooks>>,
}

impl MemoryController {
    /// Build a controller for `apps` applications over a fresh DRAM system.
    pub fn new(cfg: DramConfig, apps: usize, policy: Policy) -> Self {
        let mut dram = DramSystem::new(cfg);
        dram.set_app_count(apps);
        let tck = dram.timings().tck;
        let channels = dram.num_channels();
        MemoryController {
            dram,
            queues: AppQueues::new(apps),
            policy,
            interference: InterferenceTracker::new(apps),
            completions: BinaryHeap::new(),
            stats: McStats::new(apps),
            epoch_accesses: vec![0; apps],
            tck,
            next_tick: 0,
            seq: 0,
            sched_window: 8,
            cand_buf: Vec::with_capacity(apps),
            pos_buf: Vec::with_capacity(apps),
            blocker_buf: Vec::with_capacity(apps),
            app_buf: Vec::with_capacity(apps),
            fan_slots: Vec::with_capacity(apps),
            floor_cache: vec![(0, 0); channels],
            parallel_channels: false,
            obs: None,
        }
    }

    /// Attach observability hooks (controller + DRAM system) resolved
    /// against `registry`. Live counting only happens in builds with the
    /// `bwpart-obs/trace` feature; otherwise the hooks sit inert.
    pub fn attach_obs(&mut self, registry: &bwpart_obs::Registry) {
        self.obs = Some(Box::new(McObsHooks::resolve(registry)));
        self.dram.attach_obs(registry);
    }

    /// Publish derived controller + DRAM gauges into `registry` over
    /// `elapsed` CPU cycles. Cold path: phase/epoch boundaries only.
    pub fn publish_metrics(&self, registry: &bwpart_obs::Registry, elapsed: u64) {
        let queue_lens: Vec<usize> = (0..self.queues.apps())
            .map(|a| self.queues.len(a))
            .collect();
        crate::obs::publish(registry, &self.stats, self.interference.all(), &queue_lens);
        self.dram.publish_metrics(registry, elapsed);
    }

    /// Override the per-application scheduling-window depth (1 = strict
    /// FIFO within each application).
    pub fn set_sched_window(&mut self, window: usize) {
        assert!(window >= 1, "window must be at least 1");
        self.sched_window = window;
    }

    /// Fan the per-application candidate gather over the vendored thread
    /// pool. Probes are read-only against committed channel state, so the
    /// gathered candidates — and therefore every scheduling decision and
    /// counter — are bit-identical to the sequential gather.
    pub fn set_parallel_channels(&mut self, on: bool) {
        self.parallel_channels = on;
    }

    /// Whether the parallel candidate gather is enabled.
    pub fn parallel_channels(&self) -> bool {
        self.parallel_channels
    }

    /// Number of applications.
    pub fn apps(&self) -> usize {
        self.queues.apps()
    }

    /// The DRAM system (stats, config).
    pub fn dram(&self) -> &DramSystem {
        &self.dram
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Mutable access to the policy (epoch repartitioning:
    /// [`Policy::set_shares`] / [`Policy::set_keys`]).
    pub fn policy_mut(&mut self) -> &mut Policy {
        &mut self.policy
    }

    /// Replace the policy wholesale (e.g. switching schemes mid-run).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// Controller statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// Pending request count for `app`.
    pub fn queue_len(&self, app: usize) -> usize {
        self.queues.len(app)
    }

    /// Total pending requests.
    pub fn total_queued(&self) -> usize {
        self.queues.total_len()
    }

    /// True while any request is queued or in flight.
    pub fn busy(&self) -> bool {
        !self.queues.is_empty() || !self.completions.is_empty()
    }

    /// Accept a request from a core.
    pub fn enqueue(&mut self, req: MemRequest) {
        self.queues.push(req);
    }

    /// Advance the controller to CPU cycle `now`. Scheduling work happens
    /// on DRAM command-clock boundaries; calling every CPU cycle is cheap
    /// (early-out between clocks).
    pub fn tick(&mut self, now: u64) {
        if now < self.next_tick {
            return;
        }
        self.next_tick = (now / self.tck + 1) * self.tck;
        if self.queues.is_empty() {
            return;
        }
        self.stats.busy_ticks += 1;

        // Gather candidates: for each pending application, the oldest
        // *issuable* request within its scheduling window, falling back to
        // the (blocked) head. The buffers live on `self` so the per-tick
        // gather allocates nothing in steady state. Every window position
        // is answered through its slot's version-tagged probe cache
        // (`DramSystem::sched_probe`): while the channel is unchanged the
        // test collapses to a few integer compares, and the head's
        // interference attribution rides along for free.
        //
        // Two further cuts keep the (dominant) stalled-tick path flat:
        //  * when a lone channel's conservative floor lies beyond `now`,
        //    nothing anywhere on it can issue, so only each head is probed
        //    (its attribution is still needed for interference accounting);
        //  * with `parallel_channels` the per-application scans fan over
        //    the vendored pool: probes run on local copies of the slot
        //    caches against `&DramSystem` (committed state only), so the
        //    answers are bit-identical to the sequential scan, and the
        //    refreshed caches are written back in input order afterwards.
        self.cand_buf.clear();
        self.pos_buf.clear();
        self.blocker_buf.clear();
        self.app_buf.clear();
        self.app_buf.extend(self.queues.pending_apps());
        let floor_skip = self.dram.num_channels() == 1 && self.cached_channel_floor(0) > now;

        // A 1-wide pool would run the fan-out inline anyway; take the
        // sequential path outright and skip its per-tick buffer clones.
        // Identical results either way — the parallel branch is
        // bit-identical by construction.
        let fan_out = self.parallel_channels
            && self.app_buf.len() > 1
            && rayon::pool::current_num_threads() > 1;
        if !fan_out {
            for i in 0..self.app_buf.len() {
                let app = self.app_buf[i];
                let limit = if floor_skip {
                    1
                } else {
                    self.sched_window.min(self.queues.len(app))
                };
                let mut chosen: Option<(usize, u64, bool)> = None; // (pos, arrival, row_hit)
                let mut head_blocker: Option<usize> = None;
                for pos in 0..limit {
                    // lint: allow(R1): pos < queues.len(app) by the loop bound
                    let (req, cache) = self.queues.slot_mut(app, pos).expect("in range");
                    let txn = MemTransaction {
                        app: req.app,
                        addr: req.addr,
                        is_write: req.is_write,
                    };
                    let arrival = req.arrival;
                    let probe = self.dram.sched_probe(&txn, now, cache);
                    if probe.issuable {
                        let row_hit = probe.kind == bwpart_dram::bank::AccessKind::RowHit;
                        chosen = Some((pos, arrival, row_hit));
                        break;
                    }
                    if pos == 0 {
                        head_blocker = probe.head_blocker;
                    }
                }
                self.push_candidate(app, chosen, head_blocker);
            }
        } else {
            // The fan-out writes into persistent per-application slots
            // (results and refreshed caches in place), so the steady-state
            // parallel branch performs no fresh allocation at this layer
            // (hot-path purity rule A1); growth is one-time per
            // application count and each slot's spill keeps its capacity.
            let pending = self.app_buf.len();
            if self.fan_slots.len() < pending {
                self.fan_slots.resize_with(pending, FanSlot::default);
            }
            for (slot, &app) in self.fan_slots.iter_mut().zip(&self.app_buf) {
                slot.app = app;
                slot.chosen = None;
                slot.head_blocker = None;
                slot.refreshed.clear();
            }
            let dram = &self.dram;
            let queues = &self.queues;
            let sched_window = self.sched_window;
            rayon::pool::for_each_mut(&mut self.fan_slots[..pending], |slot| {
                let app = slot.app;
                let limit = if floor_skip {
                    1
                } else {
                    sched_window.min(queues.len(app))
                };
                for pos in 0..limit {
                    // lint: allow(R1): pos < queues.len(app) by the loop bound
                    let (req, cache) = queues.slot(app, pos).expect("in range");
                    let txn = MemTransaction {
                        app: req.app,
                        addr: req.addr,
                        is_write: req.is_write,
                    };
                    let mut local = *cache;
                    let probe = dram.sched_probe(&txn, now, &mut local);
                    if local != *cache {
                        slot.refreshed.push((pos, local));
                    }
                    if probe.issuable {
                        let row_hit = probe.kind == bwpart_dram::bank::AccessKind::RowHit;
                        slot.chosen = Some((pos, req.arrival, row_hit));
                        break;
                    }
                    if pos == 0 {
                        slot.head_blocker = probe.head_blocker;
                    }
                }
            });
            for i in 0..pending {
                for j in 0..self.fan_slots[i].refreshed.len() {
                    let (pos, cache) = self.fan_slots[i].refreshed[j];
                    if let Some((_, cache_slot)) = self.queues.slot_mut(self.fan_slots[i].app, pos)
                    {
                        *cache_slot = cache;
                    }
                }
                let (app, chosen, head_blocker) = {
                    let s = &self.fan_slots[i];
                    (s.app, s.chosen, s.head_blocker)
                };
                self.push_candidate(app, chosen, head_blocker);
            }
        }

        let served = self.policy.pick(&self.cand_buf);
        if let Some(app) = served {
            let idx = self
                .cand_buf
                .iter()
                .position(|c| c.app == app)
                // lint: allow(R1): Policy::pick returns an app from `candidates`
                .expect("picked app is a candidate");
            let req = self
                .queues
                .remove(app, self.pos_buf[idx])
                // lint: allow(R1): pos_buf[idx] was probed in the gather loop above
                .expect("picked request exists");
            let txn = MemTransaction {
                app: req.app,
                addr: req.addr,
                is_write: req.is_write,
            };
            let completion = self.dram.issue(&txn, now);
            obs_count!(self.obs, issued);
            if self.pos_buf[idx] > 0 {
                obs_count!(self.obs, window_bypass);
            }
            self.policy.on_served(app);
            self.stats.served[app] += 1;
            self.stats.latency_sum[app] += completion.done_cycle.saturating_sub(req.arrival);
            self.epoch_accesses[app] += 1;
            self.seq += 1;
            self.completions.push(Reverse(Pending {
                done: completion.done_cycle,
                seq: self.seq,
                completion,
            }));
        } else {
            self.stats.stalled_ticks += 1;
        }

        // Section IV-C interference accounting for the un-served apps.
        for (c, cached_blocker) in self.cand_buf.iter().zip(&self.blocker_buf) {
            if Some(c.app) == served {
                continue;
            }
            if c.issuable {
                // The request could have started, but the scheduler chose
                // another application's request.
                if served.is_some() {
                    self.interference.charge(c.app, self.tck);
                    obs_count!(self.obs, interference_charges);
                }
            } else {
                // Blocked by a DRAM resource: charge only if that resource
                // is held by another application's traffic. On a stalled
                // tick nothing was issued since the gather pass, so the
                // head's cached attribution is still exact; after an issue
                // the DRAM state changed and the head must be re-probed.
                let blocker = if served.is_none() {
                    *cached_blocker
                } else {
                    // lint: allow(R1): candidates only contains apps with queued requests
                    let (head, cache) = self.queues.slot_mut(c.app, 0).expect("still pending");
                    let txn = MemTransaction {
                        app: head.app,
                        addr: head.addr,
                        is_write: head.is_write,
                    };
                    // `SchedProbe::head_blocker` is exactly
                    // `DramSystem::blocking_app`'s answer, and refreshing
                    // the head's cache here pre-pays the next tick's probe.
                    self.dram.sched_probe(&txn, now, cache).head_blocker
                };
                if blocker.is_some() {
                    self.interference.charge(c.app, self.tck);
                    obs_count!(self.obs, interference_charges);
                }
            }
        }
    }

    /// Push the scan result for `app` onto the candidate buffers.
    fn push_candidate(
        &mut self,
        app: usize,
        chosen: Option<(usize, u64, bool)>,
        head_blocker: Option<usize>,
    ) {
        match chosen {
            Some((pos, arrival, row_hit)) => {
                self.cand_buf.push(Candidate {
                    app,
                    arrival,
                    issuable: true,
                    row_hit,
                    queue_len: self.queues.len(app),
                });
                self.pos_buf.push(pos);
                self.blocker_buf.push(None);
            }
            None => {
                // lint: allow(R1): app came from pending_apps(), its queue is non-empty
                let head = self.queues.head(app).expect("pending app has a head");
                self.cand_buf.push(Candidate {
                    app,
                    arrival: head.arrival,
                    issuable: false,
                    row_hit: false,
                    queue_len: self.queues.len(app),
                });
                self.pos_buf.push(0);
                self.blocker_buf.push(head_blocker);
            }
        }
    }

    /// `DramSystem::channel_floor`, memoized per channel version: the
    /// floor is a pure function of committed channel state, so it stays
    /// valid until the next commit bumps the version.
    fn cached_channel_floor(&mut self, channel: usize) -> u64 {
        let version = self.dram.channel_version(channel);
        if self.floor_cache[channel].0 != version {
            self.floor_cache[channel] = (version, self.dram.channel_floor(channel));
        }
        self.floor_cache[channel].1
    }

    /// Apply a closed-form analytic jump of the hybrid stepper: credit the
    /// paper-model predictions for a skipped steady-state window directly
    /// to the controller's counters. `served_delta`, `latency_delta` and
    /// `interference_delta` are per-application; `busy`/`stalled` are DRAM
    /// command clocks. Micro-state (queues, bank wheels, in-flight
    /// completions) is deliberately left untouched — the hybrid stepper
    /// resumes cycle-exact simulation from it after the jump.
    pub fn analytic_jump(
        &mut self,
        served_delta: &[u64],
        latency_delta: &[u64],
        interference_delta: &[u64],
        busy: u64,
        stalled: u64,
    ) {
        for app in 0..self.queues.apps() {
            self.stats.served[app] += served_delta[app];
            self.stats.latency_sum[app] += latency_delta[app];
            self.epoch_accesses[app] += served_delta[app];
            if interference_delta[app] > 0 {
                self.interference.charge(app, interference_delta[app]);
            }
        }
        self.stats.busy_ticks += busy;
        self.stats.stalled_ticks += stalled;
    }

    /// Pop the oldest completion with `done_cycle ≤ now`, if any — the
    /// allocation-free form of [`drain_completions`](Self::drain_completions)
    /// for callers polling every CPU cycle.
    pub fn pop_completion(&mut self, now: u64) -> Option<Completion> {
        if self
            .completions
            .peek()
            .is_some_and(|Reverse(p)| p.done <= now)
        {
            self.completions.pop().map(|Reverse(p)| p.completion)
        } else {
            None
        }
    }

    /// Pop all completions with `done_cycle ≤ now`, in completion order.
    pub fn drain_completions(&mut self, now: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = self.pop_completion(now) {
            out.push(c);
        }
        out
    }

    /// Earliest pending completion cycle, if any (idle-skip support).
    pub fn next_completion_at(&self) -> Option<u64> {
        self.completions.peek().map(|Reverse(p)| p.done)
    }

    /// The next CPU cycle **at or after** `now` at which this controller
    /// can change observable state, or `None` when it is fully idle.
    ///
    /// With requests queued, that is the next DRAM command clock — every
    /// tick on the grid schedules, accounts `busy_ticks`/`stalled_ticks`
    /// and charges interference, so those cycles cannot be jumped over.
    /// Between grid points (and when the queues are empty) only pending
    /// completions matter, and those may finish off-grid; the minimum of
    /// the two bounds every cycle on which [`tick`](Self::tick) or
    /// [`drain_completions`](Self::drain_completions) would do anything.
    ///
    /// `CmpSystem::run`'s event-driven fast-forward relies on exactly that
    /// guarantee: skipping to the returned cycle (or anywhere before it)
    /// with only per-cycle-idle compensation leaves every controller
    /// counter bit-identical to per-cycle stepping.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let completion = self.next_completion_at();
        if let Some(done) = completion {
            // Cross-layer contract: a pending completion is committed DRAM
            // work, so it cannot finish after the DRAM system's quiesce
            // horizon (every committed burst has drained by then).
            bwpart_core::invariant!(
                done <= self.dram.quiesce_at(),
                "pending completion at {} beyond DRAM quiesce horizon {}",
                done,
                self.dram.quiesce_at()
            );
        }
        let tick = if self.queues.is_empty() {
            None
        } else {
            Some(self.next_tick.max(now))
        };
        match (tick, completion) {
            (Some(t), Some(c)) => Some(t.min(c)),
            (t, c) => t.or(c),
        }
    }

    /// Interference cycles charged to `app` this epoch
    /// (`T_cyc,interference,i`).
    pub fn interference_cycles(&self, app: usize) -> u64 {
        self.interference.cycles(app)
    }

    /// Accesses served per application this epoch (`N_accesses,i`).
    pub fn epoch_accesses(&self) -> &[u64] {
        &self.epoch_accesses
    }

    /// Return `(N_accesses, T_cyc,interference)` for the epoch and reset
    /// both counters (epoch boundary).
    pub fn take_epoch_counters(&mut self) -> (Vec<u64>, Vec<u64>) {
        let acc = std::mem::replace(&mut self.epoch_accesses, vec![0; self.queues.apps()]);
        let intf = self.interference.all().to_vec();
        self.interference.reset();
        (acc, intf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwpart_dram::DramConfig;

    /// Drive the controller with `apps` synthetic streams that each always
    /// have a request ready (full saturation) for `cycles` CPU cycles, and
    /// return per-app served counts.
    fn run_saturated(policy: Policy, apps: usize, cycles: u64) -> Vec<u64> {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), apps, policy);
        let mut next_line: Vec<u64> = (0..apps as u64).map(|a| a << 32).collect();
        // Keep a small backlog per app so queues never run dry.
        for now in 0..cycles {
            for (app, line) in next_line.iter_mut().enumerate() {
                while mc.queue_len(app) < 4 {
                    mc.enqueue(MemRequest::read(app, *line * 64, now));
                    *line += 1;
                }
            }
            mc.tick(now);
            let _ = mc.drain_completions(now);
        }
        mc.stats().served.clone()
    }

    #[test]
    fn stf_enforces_share_vector_under_saturation() {
        let served = run_saturated(Policy::stf(vec![0.6, 0.3, 0.1]), 3, 600_000);
        let total: u64 = served.iter().sum();
        assert!(total > 3_000, "should serve many requests, got {total}");
        let frac: Vec<f64> = served.iter().map(|&s| s as f64 / total as f64).collect();
        assert!((frac[0] - 0.6).abs() < 0.05, "fractions {frac:?}");
        assert!((frac[1] - 0.3).abs() < 0.05, "fractions {frac:?}");
        assert!((frac[2] - 0.1).abs() < 0.05, "fractions {frac:?}");
    }

    #[test]
    fn equal_shares_serve_equally() {
        let served = run_saturated(Policy::stf(vec![0.25; 4]), 4, 400_000);
        let total: u64 = served.iter().sum();
        for &s in &served {
            let f = s as f64 / total as f64;
            assert!((f - 0.25).abs() < 0.04, "served {served:?}");
        }
    }

    #[test]
    fn priority_starves_low_priority_under_saturation() {
        // App 0 has the worst (highest) key: it should be almost fully
        // starved while apps 1..2 saturate the bus.
        let served = run_saturated(Policy::priority(vec![9.0, 1.0, 2.0]), 3, 400_000);
        let total: u64 = served.iter().sum();
        assert!(total > 2_000);
        let starved_frac = served[0] as f64 / total as f64;
        assert!(
            starved_frac < 0.02,
            "app 0 should starve, got {starved_frac} of {served:?}"
        );
        // The top-priority app takes (nearly) everything: with a
        // scheduling window over a sequential backlog it almost always has
        // an issuable request, so even app 2 sees only leftovers.
        assert!(
            served[1] as f64 / total as f64 > 0.9,
            "top priority should dominate: {served:?}"
        );
    }

    #[test]
    fn fcfs_serves_in_arrival_order_when_unconstrained() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 2, Policy::fcfs(2));
        // Two requests to different banks, app 1 arrives first.
        mc.enqueue(MemRequest::read(1, 64, 10));
        mc.enqueue(MemRequest::read(0, 128, 20));
        let mut done = Vec::new();
        for now in 0..20_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                done.push(c.app);
            }
        }
        assert_eq!(done, vec![1, 0]);
    }

    #[test]
    fn interference_counted_for_blocked_app() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 2, Policy::fcfs(2));
        // App 0 saturates; app 1 sends one request that must queue behind.
        for i in 0..8u64 {
            mc.enqueue(MemRequest::read(0, i * 64, 0));
        }
        mc.enqueue(MemRequest::read(1, 1 << 20, 1));
        for now in 0..50_000 {
            mc.tick(now);
            let _ = mc.drain_completions(now);
            if !mc.busy() {
                break;
            }
        }
        assert!(
            mc.interference_cycles(1) > 0,
            "app 1 should observe interference from app 0"
        );
        // App 0's own backlog is self-inflicted: far less interference per
        // request than app 1 experienced.
        let (acc, intf) = mc.take_epoch_counters();
        assert_eq!(acc, vec![8, 1]);
        assert!(intf[1] > 0);
        // Counters reset after the epoch boundary.
        assert_eq!(mc.epoch_accesses(), &[0, 0]);
        assert_eq!(mc.interference_cycles(1), 0);
    }

    #[test]
    fn completions_drain_in_done_order() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 2, Policy::fcfs(2));
        for i in 0..6u64 {
            mc.enqueue(MemRequest::read((i % 2) as usize, i * 64, 0));
        }
        let mut last = 0u64;
        for now in 0..100_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                assert!(c.done_cycle >= last);
                assert!(c.done_cycle <= now);
                last = c.done_cycle;
            }
            if !mc.busy() {
                break;
            }
        }
        assert!(!mc.busy());
        assert_eq!(mc.stats().served, vec![3, 3]);
    }

    #[test]
    fn next_completion_supports_idle_skip() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 1, Policy::fcfs(1));
        assert_eq!(mc.next_completion_at(), None);
        mc.enqueue(MemRequest::read(0, 64, 0));
        for now in 0..5_000 {
            mc.tick(now);
            if let Some(at) = mc.next_completion_at() {
                // Jump straight to the completion cycle.
                assert!(mc.drain_completions(at - 1).is_empty());
                let done = mc.drain_completions(at);
                assert_eq!(done.len(), 1);
                return;
            }
        }
        panic!("request never issued");
    }

    #[test]
    fn next_event_cycle_tracks_ticks_and_completions() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 1, Policy::fcfs(1));
        // Fully idle: no event at all.
        assert_eq!(mc.next_event_cycle(0), None);
        // A queued request makes the next DRAM clock the event.
        mc.enqueue(MemRequest::read(0, 64, 0));
        assert_eq!(mc.next_event_cycle(0), Some(0));
        mc.tick(0); // issues the request; queue drains, completion pending
        let done = mc.next_completion_at().expect("request in flight");
        // Queues empty now: the only event is the completion, off-grid.
        assert_eq!(mc.next_event_cycle(1), Some(done));
        assert_ne!(done % 25, 0, "completion drains off the command grid");
        // Skipping straight to it observes the same drain as stepping.
        assert!(mc.drain_completions(done - 1).is_empty());
        assert_eq!(mc.drain_completions(done).len(), 1);
        assert_eq!(mc.next_event_cycle(done + 1), None);
    }

    #[test]
    fn next_event_cycle_never_skips_a_scheduling_tick() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 2, Policy::fcfs(2));
        for i in 0..6u64 {
            mc.enqueue(MemRequest::read((i % 2) as usize, i * 64, 0));
        }
        let mut now = 0u64;
        while mc.busy() {
            let Some(ev) = mc.next_event_cycle(now) else {
                break;
            };
            assert!(ev >= now, "event {ev} before now {now}");
            // With work queued, no scheduling tick may lie in (now, ev):
            // ticks account busy/stalled/interference counters.
            if !mc.queues.is_empty() {
                let next_grid = (now / 25 + 1) * 25;
                assert!(
                    ev <= next_grid,
                    "event {ev} would jump the tick at {next_grid}"
                );
            }
            now = ev;
            mc.tick(now);
            let _ = mc.drain_completions(now);
            now += 1;
        }
        assert_eq!(mc.stats().served, vec![3, 3]);
    }

    #[test]
    fn writes_consume_bandwidth_too() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 1, Policy::fcfs(1));
        mc.enqueue(MemRequest::write(0, 64, 0));
        mc.enqueue(MemRequest::read(0, 1 << 20, 0));
        for now in 0..50_000 {
            mc.tick(now);
            let _ = mc.drain_completions(now);
            if !mc.busy() {
                break;
            }
        }
        assert_eq!(mc.dram().stats().writes, 1);
        assert_eq!(mc.dram().stats().reads, 1);
    }

    #[test]
    fn parallel_gather_is_bit_identical_to_sequential() {
        let run = |par: bool| {
            let mut mc =
                MemoryController::new(DramConfig::ddr2_400(), 3, Policy::stf(vec![0.5, 0.3, 0.2]));
            mc.set_parallel_channels(par);
            let mut next_line: Vec<u64> = (0..3u64).map(|a| a << 32).collect();
            for now in 0..120_000 {
                for (app, line) in next_line.iter_mut().enumerate() {
                    while mc.queue_len(app) < 4 {
                        mc.enqueue(MemRequest::read(app, *line * 64, now));
                        *line += 1;
                    }
                }
                mc.tick(now);
                let _ = mc.drain_completions(now);
            }
            let intf: Vec<u64> = (0..3).map(|a| mc.interference_cycles(a)).collect();
            (mc.stats().clone(), intf, mc.dram().stats().clone())
        };
        rayon::pool::set_num_threads(2);
        let par = run(true);
        rayon::pool::set_num_threads(0);
        let seq = run(false);
        assert_eq!(seq, par);
    }

    #[test]
    fn analytic_jump_credits_counters_only() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 2, Policy::fcfs(2));
        mc.analytic_jump(&[10, 4], &[1000, 600], &[0, 250], 14, 3);
        assert_eq!(mc.stats().served, vec![10, 4]);
        assert_eq!(mc.stats().latency_sum, vec![1000, 600]);
        assert_eq!(mc.stats().busy_ticks, 14);
        assert_eq!(mc.stats().stalled_ticks, 3);
        assert_eq!(mc.epoch_accesses(), &[10, 4]);
        assert_eq!(mc.interference_cycles(0), 0);
        assert_eq!(mc.interference_cycles(1), 250);
        // No micro-state was fabricated: the controller is still idle.
        assert!(!mc.busy());
    }

    #[test]
    fn stats_latency_accounts_queueing() {
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 1, Policy::fcfs(1));
        // Two same-bank requests: the second's latency includes waiting for
        // the first's row cycle.
        mc.enqueue(MemRequest::read(0, 64, 0));
        let same_bank_stride = (4 * 8 * 128) as u64 * 64;
        mc.enqueue(MemRequest::read(0, 64 + same_bank_stride, 0));
        for now in 0..100_000 {
            mc.tick(now);
            let _ = mc.drain_completions(now);
            if !mc.busy() {
                break;
            }
        }
        assert_eq!(mc.stats().served[0], 2);
        // Average latency must exceed a single isolated access's latency.
        let t = mc.dram().timings();
        let single = (t.trcd + t.cl + t.tburst) as f64;
        assert!(mc.stats().avg_latency(0) > single);
    }
}
