//! Property tests for the scheduling policies and the controller's
//! enforcement behaviour under randomized share vectors and workloads.

use bwpart_dram::DramConfig;
use bwpart_mc::policy::Candidate;
use bwpart_mc::{MemRequest, MemoryController, Policy};
use proptest::prelude::*;

/// Saturating synthetic driver: every app always has backlog.
fn run_saturated(policy: Policy, apps: usize, cycles: u64) -> Vec<u64> {
    let mut mc = MemoryController::new(DramConfig::ddr2_400(), apps, policy);
    let mut next_line: Vec<u64> = (0..apps as u64).map(|a| a << 32).collect();
    for now in 0..cycles {
        for (app, line) in next_line.iter_mut().enumerate() {
            while mc.queue_len(app) < 4 {
                mc.enqueue(MemRequest::read(app, *line * 64, now));
                *line += 1;
            }
        }
        mc.tick(now);
        let _ = mc.drain_completions(now);
    }
    mc.stats().served.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// STF enforces arbitrary share vectors within a few percent under
    /// saturation (the Section IV-B guarantee).
    #[test]
    fn stf_enforces_random_shares(raw in prop::collection::vec(0.1f64..1.0, 2..5)) {
        let sum: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let n = shares.len();
        let served = run_saturated(Policy::stf(shares.clone()), n, 400_000);
        let total: u64 = served.iter().sum();
        prop_assert!(total > 2_000);
        for (i, (&s, &target)) in served.iter().zip(&shares).enumerate() {
            let frac = s as f64 / total as f64;
            prop_assert!(
                (frac - target).abs() < 0.06,
                "app {i}: served {frac:.3} vs share {target:.3} (all: {served:?})"
            );
        }
    }

    /// Strict priority: the best-priority app's service dominates, and
    /// service counts are monotone in priority order under saturation.
    #[test]
    fn priority_service_is_monotone_in_keys(perm in 0usize..6) {
        // All permutations of three distinct keys.
        let perms = [
            [1.0, 2.0, 3.0], [1.0, 3.0, 2.0], [2.0, 1.0, 3.0],
            [2.0, 3.0, 1.0], [3.0, 1.0, 2.0], [3.0, 2.0, 1.0],
        ];
        let keys = perms[perm];
        let served = run_saturated(Policy::priority(keys.to_vec()), 3, 300_000);
        // Sort apps by key; served counts must be non-increasing.
        let mut order: Vec<usize> = (0..3).collect();
        order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap());
        prop_assert!(
            served[order[0]] >= served[order[1]]
                && served[order[1]] >= served[order[2]],
            "keys {keys:?} served {served:?}"
        );
        // The top app takes the overwhelming majority.
        let total: u64 = served.iter().sum();
        prop_assert!(served[order[0]] as f64 / total as f64 > 0.8);
    }

    /// The policy pick function never selects a non-issuable candidate and
    /// never returns an app that is not a candidate.
    #[test]
    fn pick_respects_issuability(
        flags in prop::collection::vec(any::<bool>(), 1..6),
        kind in 0usize..4,
    ) {
        let n = flags.len();
        let mut policy = match kind {
            0 => Policy::fcfs(n),
            1 => Policy::fr_fcfs(n),
            2 => Policy::stf(vec![1.0 / n as f64; n]),
            _ => Policy::priority((0..n).map(|i| i as f64).collect()),
        };
        let cands: Vec<Candidate> = flags
            .iter()
            .enumerate()
            .map(|(app, &issuable)| Candidate {
                app,
                arrival: (n - app) as u64,
                issuable,
                row_hit: app % 2 == 0,
                queue_len: 4,
            })
            .collect();
        match policy.pick(&cands) {
            Some(app) => {
                prop_assert!(flags[app], "picked non-issuable app {app}");
            }
            None => {
                prop_assert!(flags.iter().all(|f| !f), "pick=None with issuable apps");
            }
        }
    }

    /// STF tags are monotone non-decreasing and advance by exactly 1/β per
    /// service.
    #[test]
    fn stf_tags_advance_by_inverse_share(
        raw in prop::collection::vec(0.05f64..1.0, 2..5),
        services in prop::collection::vec(0usize..4, 1..40),
    ) {
        let sum: f64 = raw.iter().sum();
        let shares: Vec<f64> = raw.iter().map(|r| r / sum).collect();
        let n = shares.len();
        let mut policy = Policy::stf(shares.clone());
        let mut expected = vec![0.0f64; n];
        for &app in services.iter().filter(|&&a| a < n) {
            policy.on_served(app);
            expected[app] += 1.0 / shares[app];
            prop_assert!((policy.tag(app) - expected[app]).abs() < 1e-9);
        }
    }

    /// Conservation: the controller serves exactly what was enqueued once
    /// drained, for any request pattern.
    #[test]
    fn controller_conserves_requests(
        pattern in prop::collection::vec((0usize..3, 0u64..512, any::<bool>()), 1..60),
    ) {
        let mut mc = MemoryController::new(
            DramConfig::ddr2_400(),
            3,
            Policy::stf(vec![0.5, 0.3, 0.2]),
        );
        let mut pushed = [0u64; 3];
        for (i, &(app, line, w)) in pattern.iter().enumerate() {
            let addr = ((app as u64) << 32) | (line * 64);
            let req = if w {
                MemRequest::write(app, addr, i as u64)
            } else {
                MemRequest::read(app, addr, i as u64)
            };
            mc.enqueue(req);
            pushed[app] += 1;
        }
        let mut drained = [0u64; 3];
        for now in 0..3_000_000u64 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                drained[c.app] += 1;
            }
            if !mc.busy() {
                break;
            }
        }
        prop_assert!(!mc.busy(), "controller failed to drain");
        prop_assert_eq!(drained, pushed);
    }
}
