//! Self-tests for the loomlite model checker: it must *find* seeded
//! concurrency bugs (lost updates, deadlocks, broken critical sections)
//! and must *pass* correct protocols, exhausting small schedule spaces.

use loomlite::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loomlite::sync::{Condvar, Mutex};
use loomlite::{explore, replay, Config};

fn small(max_schedules: usize) -> Config {
    Config {
        max_schedules,
        random_schedules: 0,
        ..Config::default()
    }
}

#[test]
fn finds_lost_update_race() {
    // Classic non-atomic increment: load + store lets two threads read the
    // same value, and one increment is lost. DFS must find a schedule
    // where the final count is 1, not 2.
    let report = explore(&small(1_000), || {
        let counter = AtomicUsize::new(0);
        loomlite::thread::scope(|s| {
            s.spawn(|| {
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.failure.expect("the lost-update race must be found");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {}",
        failure.message
    );
    // The failing schedule must reproduce deterministically.
    let replayed = replay(
        &Config::default(),
        || {
            let counter = AtomicUsize::new(0);
            loomlite::thread::scope(|s| {
                s.spawn(|| {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                });
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            });
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        },
        &failure.schedule,
    );
    assert!(
        replayed.is_some_and(|m| m.contains("lost update")),
        "replaying the reported schedule must reproduce the failure"
    );
}

#[test]
fn atomic_increment_is_race_free_and_exhausts() {
    let report = explore(&small(10_000), || {
        let counter = AtomicUsize::new(0);
        loomlite::thread::scope(|s| {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
    assert!(
        report.exhausted,
        "two fetch_adds have a tiny schedule space; DFS must exhaust it \
         (explored {})",
        report.distinct_schedules
    );
    assert!(
        report.distinct_schedules > 1,
        "must explore more than one interleaving"
    );
}

#[test]
fn mutex_provides_mutual_exclusion() {
    // Inside the lock, a raw flag checks that no two threads ever overlap
    // in the critical section; the count checks no increment is lost.
    let report = explore(&small(10_000), || {
        let shared = Mutex::new(0u64);
        let in_cs = AtomicBool::new(false);
        loomlite::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let mut g = shared.lock().unwrap_or_else(|e| e.into_inner());
                    assert!(
                        !in_cs.swap(true, Ordering::SeqCst),
                        "two threads inside the critical section"
                    );
                    *g += 1;
                    in_cs.store(false, Ordering::SeqCst);
                    drop(g);
                });
            }
        });
        assert_eq!(*shared.lock().unwrap_or_else(|e| e.into_inner()), 2);
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
    assert!(report.distinct_schedules > 1);
}

#[test]
fn detects_abba_deadlock() {
    let report = explore(&small(1_000), || {
        let a = Mutex::new(());
        let b = Mutex::new(());
        loomlite::thread::scope(|s| {
            s.spawn(|| {
                let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
                let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            });
            let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
            let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
        });
    });
    let failure = report.failure.expect("AB-BA ordering must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn condvar_handoff_completes() {
    // One thread waits for a flag under a mutex+condvar; the other sets it
    // and notifies. Every schedule must terminate with the flag observed.
    let report = explore(&small(5_000), || {
        let state = Mutex::new(false);
        let cv = Condvar::new();
        loomlite::thread::scope(|s| {
            s.spawn(|| {
                let mut g = state.lock().unwrap_or_else(|e| e.into_inner());
                *g = true;
                drop(g);
                cv.notify_all();
            });
            let mut g = state.lock().unwrap_or_else(|e| e.into_inner());
            while !*g {
                g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            assert!(*g);
        });
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
    assert!(report.exhausted, "handoff space is small; must exhaust");
}

#[test]
fn exploration_is_deterministic() {
    let run = || {
        explore(
            &Config {
                max_schedules: 200,
                random_schedules: 50,
                ..Config::default()
            },
            || {
                let counter = AtomicUsize::new(0);
                loomlite::thread::scope(|s| {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    counter.fetch_add(1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(counter.load(Ordering::SeqCst), 4);
            },
        )
    };
    let a = run();
    let b = run();
    assert!(a.passed() && b.passed());
    assert_eq!(a.distinct_schedules, b.distinct_schedules);
    assert_eq!(a.dfs_schedules, b.dfs_schedules);
    assert_eq!(a.exhausted, b.exhausted);
}

#[test]
fn dfs_bound_is_respected() {
    // Three threads of two ops each: space far larger than the cap.
    let report = explore(&small(37), || {
        let counter = AtomicUsize::new(0);
        loomlite::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
    assert_eq!(report.dfs_schedules, 37, "DFS must stop at the bound");
    assert!(!report.exhausted);
}

#[test]
fn randomized_phase_adds_distinct_schedules() {
    let cfg = Config {
        max_schedules: 20,
        random_schedules: 60,
        ..Config::default()
    };
    let report = explore(&cfg, || {
        let counter = AtomicUsize::new(0);
        loomlite::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
    assert_eq!(report.random_runs, 60);
    assert!(
        report.distinct_schedules > report.dfs_schedules,
        "random phase found no schedule DFS missed: {} vs {}",
        report.distinct_schedules,
        report.dfs_schedules
    );
}

#[test]
fn nested_scopes_join_in_order() {
    // A scope inside a scoped thread: inner threads must finish before
    // the outer join completes, so the total is always fully visible.
    let report = explore(&small(2_000), || {
        let counter = AtomicUsize::new(0);
        loomlite::thread::scope(|outer| {
            outer.spawn(|| {
                loomlite::thread::scope(|inner| {
                    inner.spawn(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    });
    assert!(report.passed(), "failure: {:?}", report.failure);
}
