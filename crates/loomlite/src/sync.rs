//! Shim synchronization primitives, API-compatible with the `std::sync`
//! subset the `vendor/rayon` pool uses.
//!
//! Inside a model execution every operation first calls into the
//! scheduler ([`crate::sched`]) so the explorer can interleave it against
//! the other model threads. Outside a model (no execution context bound to
//! the calling thread), atomics and `OnceLock` degrade to their plain
//! `std` behaviour; `Mutex` and `Condvar` refuse to operate, because
//! without a scheduler there is nothing to provide mutual exclusion.
//!
//! **Memory-model caveat:** all operations execute sequentially
//! consistent regardless of the [`atomic::Ordering`] argument. loomlite
//! explores *interleavings*, not weak-memory *reorderings* — see the
//! crate docs for what that does and does not prove.

use std::cell::UnsafeCell;
use std::sync::LockResult;

use crate::sched::{ctx, Block};

/// Shim atomics. The `Ordering` argument is accepted for API parity and
/// ignored: every access is sequentially consistent.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::ctx;

    /// Scheduling point before an atomic access, when inside a model.
    fn yield_op() {
        if let Some((exec, me)) = ctx() {
            exec.yield_op(me);
        }
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Model-checked stand-in for the `std` atomic of the same
            /// name: each access is a scheduling point inside a model.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Create the atomic (usable in statics, like `std`'s).
                #[must_use]
                pub const fn new(v: $val) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Load the value (scheduling point; always SeqCst).
                pub fn load(&self, _order: Ordering) -> $val {
                    yield_op();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Store `v` (scheduling point; always SeqCst).
                pub fn store(&self, v: $val, _order: Ordering) {
                    yield_op();
                    self.inner.store(v, Ordering::SeqCst);
                }

                /// Swap in `v`, returning the previous value
                /// (scheduling point; always SeqCst).
                pub fn swap(&self, v: $val, _order: Ordering) -> $val {
                    yield_op();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange (scheduling point; always SeqCst).
                ///
                /// # Errors
                /// Returns the actual value when it differs from `current`.
                pub fn compare_exchange(
                    &self,
                    current: $val,
                    new: $val,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$val, $val> {
                    yield_op();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicUsize {
        /// Add `v`, returning the previous value (scheduling point).
        pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
            yield_op();
            self.inner.fetch_add(v, Ordering::SeqCst)
        }

        /// Subtract `v`, returning the previous value (scheduling point).
        pub fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
            yield_op();
            self.inner.fetch_sub(v, Ordering::SeqCst)
        }
    }

    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicU64 {
        /// Add `v`, returning the previous value (scheduling point).
        pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
            yield_op();
            self.inner.fetch_add(v, Ordering::SeqCst)
        }
    }

    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
}

/// Unique ids for mutexes/condvars so the scheduler can track who blocks
/// on what. Plain std atomic: allocation order across executions does not
/// matter, only uniqueness.
fn next_sync_id() -> usize {
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    // hb: none needed — the counter only hands out unique values; no other
    // memory is published through it, so Relaxed is sufficient.
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Model-checked mutual-exclusion lock, API-compatible with the
/// `std::sync::Mutex` subset the pool uses (`lock` + poisoning shape).
/// Only usable from inside a model execution.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    /// Whether some model thread currently holds the lock. Only mutated by
    /// the single running thread, so a plain SeqCst atomic suffices.
    held: std::sync::atomic::AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and the
// `held` protocol gives `MutexGuard` exclusive access to `data`, so the
// shim upholds the same aliasing discipline as `std::sync::Mutex`.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — shared references only hand out data access through
// the exclusive guard protocol.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Wrap `value` in a fresh model mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            id: next_sync_id(),
            held: std::sync::atomic::AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquire the lock, parking the model thread while it is contended.
    ///
    /// # Errors
    /// Never returns `Err`: the shim does not track poisoning (a panicking
    /// model thread fails the whole execution instead). The signature
    /// mirrors `std` so call sites compile unchanged against either.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (exec, me) = ctx()
            // lint: allow(R1): misuse of the shim outside a model is a
            // programming error in checker harness code, not model state.
            .expect("loomlite::sync::Mutex used outside a model execution");
        loop {
            exec.yield_op(me);
            // Exclusive: only the running thread executes between
            // scheduling points, so this test-and-set cannot race.
            if !self.held.swap(true, std::sync::atomic::Ordering::SeqCst) {
                return Ok(MutexGuard { lock: self });
            }
            exec.block_on(me, Block::Mutex(self.id));
        }
    }
}

/// Exclusive access to a [`Mutex`]'s data; releases the lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard proves this model thread holds the lock, and
        // the scheduler runs one thread at a time, so no aliasing access
        // to the cell exists while the guard lives.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — the guard is the unique access path
        // while it lives, and only one model thread runs at a time.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock
            .held
            .store(false, std::sync::atomic::Ordering::SeqCst);
        if let Some((exec, _me)) = ctx() {
            exec.unblock_mutex_waiters(self.lock.id);
        }
    }
}

/// Model-checked condition variable (wait / notify subset).
#[derive(Debug)]
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Create a fresh model condvar.
    #[must_use]
    pub fn new() -> Self {
        Condvar { id: next_sync_id() }
    }

    /// Release `guard`'s mutex, park until notified, then re-acquire.
    ///
    /// # Errors
    /// Never returns `Err` (no poisoning, as with [`Mutex::lock`]).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (exec, me) = ctx()
            // lint: allow(R1): misuse outside a model is harness error.
            .expect("loomlite::sync::Condvar used outside a model execution");
        let lock = guard.lock;
        // Release the mutex without re-running Drop's unblock twice.
        drop(guard);
        exec.block_on(me, Block::Condvar(self.id));
        loop {
            if !lock.held.swap(true, std::sync::atomic::Ordering::SeqCst) {
                return Ok(MutexGuard { lock });
            }
            exec.block_on(me, Block::Mutex(lock.id));
        }
    }

    /// Wake every model thread waiting on this condvar.
    pub fn notify_all(&self) {
        if let Some((exec, _me)) = ctx() {
            exec.notify_condvar(self.id, true);
        }
    }

    /// Wake one waiting model thread (the lowest tid — deterministic).
    pub fn notify_one(&self) {
        if let Some((exec, _me)) = ctx() {
            exec.notify_condvar(self.id, false);
        }
    }
}

/// Shim `OnceLock`: a thin wrapper over `std::sync::OnceLock` that adds a
/// scheduling point before initialization, so racing `get_or_init` calls
/// are explored.
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Create an empty cell (usable in statics, like `std`'s).
    #[must_use]
    pub const fn new() -> Self {
        OnceLock {
            inner: std::sync::OnceLock::new(),
        }
    }

    /// The stored value, if initialized.
    pub fn get(&self) -> Option<&T> {
        self.inner.get()
    }

    /// Get the value, initializing it with `f` if empty (scheduling point
    /// inside a model).
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        if let Some((exec, me)) = ctx() {
            exec.yield_op(me);
        }
        self.inner.get_or_init(f)
    }
}
