//! loomlite — a dependency-free, loom-inspired concurrency model checker.
//!
//! The `vendor/rayon` work-stealing pool executes every scheme sweep in
//! this repository, and the paper reproduction's validity rests on that
//! pool being data-race-free and deterministic (bit-identical per-scheme
//! outcomes). loomlite provides the machinery to check the pool's
//! protocols systematically instead of hoping stress tests get lucky:
//!
//! * [`sync`] and [`thread`] are shim types API-compatible with the
//!   `std::sync` / `std::thread` subset the pool uses. The pool aliases
//!   them behind `cfg(loomlite)` (see `vendor/rayon/src/shim.rs`), so the
//!   *same* pool source runs under the model checker and in production.
//! * [`explore`](fn@explore) runs a model closure under a controlled
//!   scheduler that permits exactly one thread to run at a time and makes
//!   every shimmed operation a scheduling point. A bounded exhaustive
//!   (DFS-backtracking) phase enumerates distinct interleavings, and a
//!   seeded randomized phase scatters additional coverage across large
//!   spaces.
//!
//! # What loomlite proves — and what it does not
//!
//! * **Proves (within bounds):** absence of interleaving-dependent
//!   failures — lost/duplicated work items, broken mutual exclusion,
//!   deadlocks, torn protocol states — for every schedule explored, under
//!   *sequentially consistent* semantics. When the DFS phase reports
//!   `exhausted`, the claim covers the whole schedule space of that model.
//! * **Does not prove:** weak-memory correctness. All shim operations
//!   execute SeqCst regardless of their `Ordering` argument, so a bug
//!   that only manifests through `Relaxed`/`Acquire`/`Release` reordering
//!   is invisible here (that is what the Miri/TSan CI jobs and lint rule
//!   R6's justification discipline are for). It also cannot see raw
//!   non-shimmed shared state, and bounded (non-exhausted) exploration is
//!   evidence, not proof.
//!
//! # Example
//!
//! ```
//! use loomlite::sync::atomic::{AtomicUsize, Ordering};
//! use loomlite::{explore, Config};
//!
//! let report = explore(&Config::default(), || {
//!     let counter = AtomicUsize::new(0);
//!     loomlite::thread::scope(|s| {
//!         s.spawn(|| {
//!             counter.fetch_add(1, Ordering::SeqCst);
//!         });
//!         counter.fetch_add(1, Ordering::SeqCst);
//!     });
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.passed() && report.exhausted);
//! ```

mod sched;

pub mod explore;
pub mod sync;
pub mod thread;

pub use explore::{explore, replay, Config, Failure, Report};
