//! The controlled scheduler underneath every loomlite model execution.
//!
//! One model execution runs the user's closure (model thread 0) plus any
//! threads it spawns through [`crate::thread::scope`] as *real* OS threads,
//! but allows exactly **one** of them to run at any instant. Every shimmed
//! synchronization operation ([`crate::sync`]) first calls into the
//! scheduler, which picks the next thread to run from the currently
//! *enabled* (runnable, not blocked, not finished) set. The sequence of
//! picks is the **schedule**; replaying a recorded prefix and deviating at
//! the end is how the explorer ([`crate::explore`]) enumerates distinct
//! interleavings.
//!
//! Because only one thread runs between scheduling points, the shimmed
//! operations themselves execute in mutual exclusion: the interleaving the
//! model observes is exactly the schedule, sequentially consistent by
//! construction. (This is also loomlite's key limitation — see the crate
//! docs — it cannot reproduce weak-memory reorderings.)

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a thread cannot currently be scheduled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting to acquire the shim mutex with this id.
    Mutex(usize),
    /// Waiting inside `Condvar::wait` on the condvar with this id.
    Condvar(usize),
    /// Waiting in a scope join for its spawned threads to finish.
    Join,
}

/// Lifecycle state of one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum State {
    /// Eligible to be picked at the next scheduling point.
    Runnable,
    /// Parked until another thread's action re-enables it.
    Blocked(Block),
    /// Ran to completion (or unwound after a failure).
    Finished,
}

/// One recorded scheduling decision: which rank of the enabled set was
/// chosen, out of how many enabled threads.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    /// Index into the (ascending-tid) enabled list.
    pub chosen: usize,
    /// Size of the enabled list at this point.
    pub enabled: usize,
}

/// How choices beyond the replay prefix are made.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Chooser {
    /// Always pick rank 0 — the DFS explorer's "leftmost descent".
    Dfs,
    /// Pick pseudo-randomly from an LCG seeded with this state.
    Random(u64),
}

struct Inner {
    states: Vec<State>,
    /// For a thread in `Blocked(Join)`, the tids it waits on.
    join_targets: Vec<Vec<usize>>,
    /// The single thread currently allowed to run.
    current: usize,
    /// Forced choice ranks for the first `replay.len()` decisions.
    replay: Vec<usize>,
    /// Every decision taken so far in this execution.
    decisions: Vec<Decision>,
    chooser: Chooser,
    /// First failure (assertion, deadlock, divergence); sticky.
    failure: Option<String>,
    /// Hard cap on decisions per execution (runaway-model guard).
    max_steps: usize,
}

/// One model execution's scheduling state, shared by all its threads.
pub(crate) struct Execution {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// Outcome of one finished execution, consumed by the explorer.
pub(crate) struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub failure: Option<String>,
}

thread_local! {
    /// The execution this OS thread currently belongs to, and its model tid.
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Bind the current OS thread to `exec` as model thread `tid`.
pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

/// Unbind the current OS thread from its execution.
pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The current thread's execution context, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Ignore poisoning on the scheduler's own lock: a panicking model thread
/// records its failure before unwinding, so the state stays meaningful.
fn lock_inner(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Execution {
    pub(crate) fn new(replay: Vec<usize>, chooser: Chooser, max_steps: usize) -> Arc<Self> {
        Arc::new(Execution {
            inner: Mutex::new(Inner {
                states: Vec::new(),
                join_targets: Vec::new(),
                current: 0,
                replay,
                decisions: Vec::new(),
                chooser,
                failure: None,
                max_steps,
            }),
            cv: Condvar::new(),
        })
    }

    /// Register a new model thread; it is immediately eligible for
    /// scheduling and must call [`Execution::park_new_thread`] (or, for
    /// thread 0, simply start running) before touching shared state.
    pub(crate) fn register_thread(&self) -> usize {
        let mut g = lock_inner(&self.inner);
        g.states.push(State::Runnable);
        g.join_targets.push(Vec::new());
        g.states.len() - 1
    }

    /// Record a failure (first one wins) and wake every waiter so the
    /// execution unwinds promptly instead of hanging.
    fn set_failure(g: &mut Inner, cv: &Condvar, msg: String) {
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        cv.notify_all();
    }

    /// Pick the next thread to run and publish it as `current`. Called
    /// with the lock held, by the thread that is currently running (which
    /// has just yielded, blocked, or finished).
    fn choose_and_dispatch(g: &mut Inner, cv: &Condvar) {
        let enabled: Vec<usize> = (0..g.states.len())
            .filter(|&t| g.states[t] == State::Runnable)
            .collect();
        if enabled.is_empty() {
            if g.states.iter().all(|&s| s == State::Finished) {
                // Execution complete; nothing left to schedule.
                cv.notify_all();
                return;
            }
            let stuck: Vec<String> = g
                .states
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    State::Blocked(b) => Some(format!("t{t} blocked on {b:?}")),
                    _ => None,
                })
                .collect();
            Self::set_failure(g, cv, format!("deadlock: {}", stuck.join(", ")));
            return;
        }
        if g.decisions.len() >= g.max_steps {
            Self::set_failure(g, cv, format!("model exceeded max_steps ({})", g.max_steps));
            return;
        }
        let step = g.decisions.len();
        let rank = if step < g.replay.len() {
            let r = g.replay[step];
            if r >= enabled.len() {
                Self::set_failure(
                    g,
                    cv,
                    format!(
                        "schedule divergence: replay step {step} wants rank {r} \
                         but only {} threads are enabled (model is nondeterministic \
                         beyond its schedule)",
                        enabled.len()
                    ),
                );
                return;
            }
            r
        } else {
            match &mut g.chooser {
                Chooser::Dfs => 0,
                Chooser::Random(state) => {
                    // Deterministic LCG (Knuth MMIX constants); upper bits
                    // have the best statistical quality.
                    *state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((*state >> 33) as usize) % enabled.len()
                }
            }
        };
        g.decisions.push(Decision {
            chosen: rank,
            enabled: enabled.len(),
        });
        g.current = enabled[rank];
        cv.notify_all();
    }

    /// Park until this thread is `current` (and runnable). Panics — which
    /// unwinds the model thread so the execution can be torn down — if the
    /// execution has failed.
    fn wait_until_scheduled(&self, mut g: MutexGuard<'_, Inner>, me: usize) {
        loop {
            if g.failure.is_some() {
                drop(g);
                // lint: allow(R1): failure propagation is by-design a panic —
                // it unwinds every parked model thread so scoped joins finish.
                panic!("loomlite: execution failed (see explorer report)");
            }
            if g.current == me && g.states[me] == State::Runnable {
                return;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Scheduling point before a shimmed operation: offer the scheduler a
    /// chance to run any other enabled thread first.
    pub(crate) fn yield_op(&self, me: usize) {
        let mut g = lock_inner(&self.inner);
        if g.failure.is_some() {
            drop(g);
            // lint: allow(R1): failure propagation is by-design a panic.
            panic!("loomlite: execution failed (see explorer report)");
        }
        Self::choose_and_dispatch(&mut g, &self.cv);
        self.wait_until_scheduled(g, me);
    }

    /// Block this thread on `b` and run something else. Returns once a
    /// peer has re-enabled this thread *and* the scheduler picked it.
    pub(crate) fn block_on(&self, me: usize, b: Block) {
        let mut g = lock_inner(&self.inner);
        g.states[me] = State::Blocked(b);
        Self::choose_and_dispatch(&mut g, &self.cv);
        self.wait_until_scheduled(g, me);
    }

    /// Re-enable every thread blocked on the shim mutex `id` (they will
    /// re-attempt acquisition when scheduled).
    pub(crate) fn unblock_mutex_waiters(&self, id: usize) {
        let mut g = lock_inner(&self.inner);
        for s in g.states.iter_mut() {
            if *s == State::Blocked(Block::Mutex(id)) {
                *s = State::Runnable;
            }
        }
    }

    /// Re-enable threads blocked on condvar `id`: all of them, or just the
    /// lowest-tid one (`notify_one` — deterministic by construction).
    pub(crate) fn notify_condvar(&self, id: usize, all: bool) {
        let mut g = lock_inner(&self.inner);
        for s in g.states.iter_mut() {
            if *s == State::Blocked(Block::Condvar(id)) {
                *s = State::Runnable;
                if !all {
                    break;
                }
            }
        }
    }

    /// Mark this thread finished, wake any satisfied join waiters, and
    /// hand the schedule to the next enabled thread. The caller's OS
    /// thread exits afterwards.
    pub(crate) fn finish(&self, me: usize) {
        let mut g = lock_inner(&self.inner);
        g.states[me] = State::Finished;
        Self::wake_satisfied_joiners(&mut g);
        Self::choose_and_dispatch(&mut g, &self.cv);
    }

    fn wake_satisfied_joiners(g: &mut Inner) {
        let n = g.states.len();
        for t in 0..n {
            if g.states[t] == State::Blocked(Block::Join)
                && g.join_targets[t]
                    .iter()
                    .all(|&w| g.states[w] == State::Finished)
            {
                g.states[t] = State::Runnable;
            }
        }
    }

    /// Model-level join: block until every tid in `targets` has finished.
    /// Called by a scope owner before the underlying OS-level join, so the
    /// OS join can never park a thread the scheduler believes is running.
    pub(crate) fn join_all(&self, me: usize, targets: &[usize]) {
        loop {
            let mut g = lock_inner(&self.inner);
            if g.failure.is_some() {
                drop(g);
                // lint: allow(R1): failure propagation is by-design a panic.
                panic!("loomlite: execution failed (see explorer report)");
            }
            if targets.iter().all(|&t| g.states[t] == State::Finished) {
                return;
            }
            g.join_targets[me] = targets.to_vec();
            g.states[me] = State::Blocked(Block::Join);
            Self::choose_and_dispatch(&mut g, &self.cv);
            self.wait_until_scheduled(g, me);
        }
    }

    /// First park of a freshly spawned model thread: wait to be scheduled
    /// for the first time.
    pub(crate) fn park_new_thread(&self, me: usize) {
        let g = lock_inner(&self.inner);
        self.wait_until_scheduled(g, me);
    }

    /// A scope-owner thread panicked but keeps unwinding (it does not
    /// exit): record the failure and wake all parked threads so they
    /// unwind too, letting the scope's OS-level join complete.
    pub(crate) fn fail_from_panic_keep_running(&self, msg: &str) {
        let mut g = lock_inner(&self.inner);
        Self::set_failure(&mut g, &self.cv, format!("scope owner panicked: {msg}"));
    }

    /// A model thread panicked with `msg`: record the failure (unless one
    /// is already set), mark the thread finished, and wake everyone.
    pub(crate) fn fail_from_panic(&self, me: usize, msg: String) {
        let mut g = lock_inner(&self.inner);
        g.states[me] = State::Finished;
        Self::wake_satisfied_joiners(&mut g);
        Self::set_failure(&mut g, &self.cv, format!("thread t{me} panicked: {msg}"));
    }

    /// Drain the execution's outcome after the model closure returned (or
    /// unwound) on thread 0.
    pub(crate) fn take_outcome(&self) -> RunOutcome {
        let mut g = lock_inner(&self.inner);
        RunOutcome {
            decisions: std::mem::take(&mut g.decisions),
            failure: g.failure.take(),
        }
    }
}
