//! Shim threading, API-compatible with the `std::thread` subset the
//! `vendor/rayon` pool uses: `scope`, `Scope::spawn`, and
//! `available_parallelism`.
//!
//! Spawned closures run on real OS threads (so non-`'static` borrows work
//! exactly as with `std::thread::scope`), but each registers with the
//! model scheduler and parks until scheduled; from then on it advances
//! only between scheduling points like every other model thread. The
//! scope performs a *model-level* join (through the scheduler) before the
//! underlying OS-level join, so the OS join can never block a thread the
//! scheduler still believes is runnable.

use std::cell::RefCell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::sched::{clear_ctx, ctx, set_ctx, Execution};

/// Render a panic payload for failure reports.
pub(crate) fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A scope for spawning model threads; mirrors `std::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    std_scope: &'scope std::thread::Scope<'scope, 'env>,
    exec: Arc<Execution>,
    spawned: RefCell<Vec<usize>>,
}

impl<'scope> Scope<'scope, '_> {
    /// Spawn a model thread running `f`. Unlike `std`, no join handle is
    /// returned: the scope joins everything at the end, which is the only
    /// pattern the pool uses.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let tid = self.exec.register_thread();
        self.spawned.borrow_mut().push(tid);
        let exec = Arc::clone(&self.exec);
        self.std_scope.spawn(move || {
            set_ctx(Arc::clone(&exec), tid);
            exec.park_new_thread(tid);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(()) => exec.finish(tid),
                Err(payload) => {
                    exec.fail_from_panic(tid, payload_msg(payload.as_ref()));
                }
            }
            clear_ctx();
        });
    }
}

/// Model-checked `std::thread::scope`: runs `f`, then joins every spawned
/// model thread through the scheduler before returning.
///
/// Must be called from inside a model execution.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    let (exec, me) = ctx()
        // lint: allow(R1): misuse outside a model is harness error.
        .expect("loomlite::thread::scope used outside a model execution");
    std::thread::scope(|s| {
        let ls = Scope {
            std_scope: s,
            exec: Arc::clone(&exec),
            spawned: RefCell::new(Vec::new()),
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&ls)));
        let ids = ls.spawned.borrow().clone();
        match out {
            Ok(v) => {
                // Model-level join: the scheduler runs the spawned threads
                // to completion while this thread is parked; the OS-level
                // join inside `std::thread::scope` then returns instantly.
                exec.join_all(me, &ids);
                v
            }
            Err(payload) => {
                // The scope body itself panicked (e.g. an assertion inside
                // the pool's inline worker). Record the failure so every
                // parked model thread unwinds, then let `std`'s scope wait
                // for their OS threads before re-raising.
                exec.fail_from_panic_keep_running(&payload_msg(payload.as_ref()));
                resume_unwind(payload);
            }
        }
    })
}

/// Deterministic stand-in for `std::thread::available_parallelism`: models
/// must not depend on host core counts, so this is a constant 2.
///
/// # Errors
/// Never fails; the `Result` mirrors the `std` signature.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    Ok(NonZeroUsize::MIN.saturating_add(1))
}
