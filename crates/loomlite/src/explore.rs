//! The schedule explorer: runs a model closure many times, each time
//! under a different thread interleaving, and reports either the first
//! failing schedule or the number of distinct schedules that passed.
//!
//! Two phases:
//!
//! 1. **Bounded exhaustive (DFS).** Schedules are enumerated by
//!    backtracking over recorded decision sequences: replay a prefix,
//!    deviate at the last incrementable decision, descend leftmost (rank
//!    0) from there. Every enumerated schedule is distinct by
//!    construction; if the space is exhausted before the bound, the model
//!    is *fully* verified (under loomlite's SC semantics).
//! 2. **Randomized top-up.** Additional runs pick uniformly among enabled
//!    threads from a seeded LCG, deduplicated against everything already
//!    seen. This scatters coverage across large spaces that DFS alone
//!    would only probe near its leftmost corner.

use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::sched::{clear_ctx, set_ctx, Chooser, Decision, Execution};
use crate::thread::payload_msg;

/// Exploration bounds and seeds.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum schedules enumerated by the DFS phase.
    pub max_schedules: usize,
    /// Additional randomized runs after DFS (deduplicated; only schedules
    /// not already seen count toward the distinct total).
    pub random_schedules: usize,
    /// Seed for the randomized phase's LCG.
    pub seed: u64,
    /// Per-execution decision cap: a model exceeding it fails (guards
    /// against accidental unbounded loops inside a model).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 1_000,
            random_schedules: 0,
            seed: 0xB417_2013,
            max_steps: 10_000,
        }
    }
}

/// One failing schedule, reproducible by replaying `schedule`.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (panic message, deadlock report, ...).
    pub message: String,
    /// The decision ranks that led there (replayable prefix).
    pub schedule: Vec<usize>,
}

/// What the explorer found.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct schedules that ran to completion without failure.
    pub distinct_schedules: usize,
    /// How many of those came from the DFS phase.
    pub dfs_schedules: usize,
    /// Randomized runs executed (including duplicates of seen schedules).
    pub random_runs: usize,
    /// Whether DFS enumerated the *entire* schedule space.
    pub exhausted: bool,
    /// The first failing schedule, if any (exploration stops at it).
    pub failure: Option<Failure>,
}

impl Report {
    /// True when every explored schedule passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

struct RunResult {
    decisions: Vec<Decision>,
    failure: Option<String>,
}

/// Run `model` once under the scheduler, forcing `replay` choices first.
fn run_once<F: Fn()>(
    model: &F,
    replay: Vec<usize>,
    chooser: Chooser,
    max_steps: usize,
) -> RunResult {
    let exec = Execution::new(replay, chooser, max_steps);
    let tid = exec.register_thread();
    debug_assert_eq!(tid, 0, "thread 0 must be the model closure");
    set_ctx(std::sync::Arc::clone(&exec), 0);
    let caught = catch_unwind(AssertUnwindSafe(model));
    clear_ctx();
    let outcome = exec.take_outcome();
    let failure = outcome.failure.or_else(|| {
        caught
            .err()
            .map(|p| format!("model panicked: {}", payload_msg(p.as_ref())))
    });
    RunResult {
        decisions: outcome.decisions,
        failure,
    }
}

fn chosen_ranks(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}

fn schedule_hash(ranks: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    ranks.hash(&mut h);
    h.finish()
}

/// The next DFS replay prefix after observing `decisions`, or `None` when
/// the space is exhausted: backtrack to the last decision whose chosen
/// rank can still be incremented.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    let mut i = decisions.len();
    while i > 0 {
        i -= 1;
        let d = decisions[i];
        if d.chosen + 1 < d.enabled {
            let mut prefix = chosen_ranks(&decisions[..i]);
            prefix.push(d.chosen + 1);
            return Some(prefix);
        }
    }
    None
}

/// Explore `model` under `cfg`. The model closure is invoked once per
/// schedule; it must be deterministic apart from thread interleaving
/// (same spawns, same sync-operation sequence per thread), or the
/// explorer reports a schedule-divergence failure.
pub fn explore<F: Fn()>(cfg: &Config, model: F) -> Report {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut report = Report {
        distinct_schedules: 0,
        dfs_schedules: 0,
        random_runs: 0,
        exhausted: false,
        failure: None,
    };

    // Phase 1: bounded exhaustive DFS.
    let mut replay: Vec<usize> = Vec::new();
    loop {
        let run = run_once(&model, replay.clone(), Chooser::Dfs, cfg.max_steps);
        let ranks = chosen_ranks(&run.decisions);
        if let Some(message) = run.failure {
            report.failure = Some(Failure {
                message,
                schedule: ranks,
            });
            return report;
        }
        seen.insert(schedule_hash(&ranks));
        report.distinct_schedules += 1;
        report.dfs_schedules += 1;
        match next_prefix(&run.decisions) {
            None => {
                report.exhausted = true;
                break;
            }
            Some(next) => {
                if report.dfs_schedules >= cfg.max_schedules {
                    break;
                }
                replay = next;
            }
        }
    }

    // Phase 2: randomized top-up (pointless if DFS covered everything).
    if !report.exhausted {
        for i in 0..cfg.random_schedules {
            // Distinct seed per run, deterministic across invocations.
            let seed = cfg
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let run = run_once(&model, Vec::new(), Chooser::Random(seed), cfg.max_steps);
            report.random_runs += 1;
            let ranks = chosen_ranks(&run.decisions);
            if let Some(message) = run.failure {
                report.failure = Some(Failure {
                    message,
                    schedule: ranks,
                });
                return report;
            }
            if seen.insert(schedule_hash(&ranks)) {
                report.distinct_schedules += 1;
            }
        }
    }

    report
}

/// Replay a single specific schedule (e.g. a reported failure) against
/// `model`, returning the failure message if it still fails.
pub fn replay<F: Fn()>(cfg: &Config, model: F, schedule: &[usize]) -> Option<String> {
    run_once(&model, schedule.to_vec(), Chooser::Dfs, cfg.max_steps).failure
}
