//! End-to-end determinism: a scheme sweep fanned out over the work-stealing
//! pool with event-driven fast-forward enabled must produce bit-identical
//! outcomes to the sequential, per-cycle-stepped baseline (the seed
//! behaviour before the performance work).

use bwpart_cmp::{CmpConfig, PhaseConfig, Runner, ShareSource, SimOutcome};
use bwpart_core::schemes::PartitionScheme;
use bwpart_workloads::mixes::fig1_mix;
use rayon::prelude::*;

const SEED: u64 = 0xB417_2013;

fn phases() -> PhaseConfig {
    PhaseConfig {
        warmup: 20_000,
        profile: 40_000,
        measure: 60_000,
        repartition_epoch: None,
    }
}

fn sweep(fast_forward: bool, parallel: bool) -> Vec<SimOutcome> {
    let runner = Runner {
        cmp: CmpConfig {
            fast_forward,
            ..CmpConfig::default()
        },
        phases: phases(),
    };
    let mix = fig1_mix();
    let run_one = |s: PartitionScheme| {
        let (w, cc) = mix.build(1, SEED);
        runner.run_scheme(s, w, cc, ShareSource::OnlineProfile)
    };
    if parallel {
        PartitionScheme::ENFORCED_SCHEMES
            .par_iter()
            .map(|&s| run_one(s))
            .collect()
    } else {
        PartitionScheme::ENFORCED_SCHEMES
            .iter()
            .map(|&s| run_one(s))
            .collect()
    }
}

/// Serialize to compare every counter bit-for-bit, not just a summary.
fn fingerprint(outcomes: &[SimOutcome]) -> String {
    serde_json::to_string(outcomes).expect("SimOutcome serializes")
}

#[test]
fn parallel_fast_forward_sweep_is_bit_identical_to_sequential_baseline() {
    // Seed behaviour: one pool thread, per-cycle stepping.
    rayon::pool::set_num_threads(1);
    let baseline = fingerprint(&sweep(false, false));

    // Optimized: four pool threads + fast-forward, fanned out via par_iter.
    rayon::pool::set_num_threads(4);
    let optimized = fingerprint(&sweep(true, true));
    rayon::pool::set_num_threads(0);

    assert_eq!(
        baseline, optimized,
        "parallel + fast-forwarded sweep diverged from the sequential \
         per-cycle baseline"
    );
}

#[test]
fn fast_forward_alone_is_bit_identical_per_scheme() {
    rayon::pool::set_num_threads(1);
    let per_cycle = sweep(false, false);
    let skipped = sweep(true, false);
    rayon::pool::set_num_threads(0);

    assert_eq!(per_cycle.len(), skipped.len());
    for (a, b) in per_cycle.iter().zip(&skipped) {
        assert_eq!(
            fingerprint(std::slice::from_ref(a)),
            fingerprint(std::slice::from_ref(b)),
            "fast-forward changed the outcome of scheme {}",
            a.scheme
        );
    }
}
