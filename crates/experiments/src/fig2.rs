//! Figure 2: the main evaluation.
//!
//! All 14 Table IV mixes × six partitioning schemes (Equal, Proportional,
//! Square_root, 2/3_power, Priority_APC, Priority_API) × four system
//! objectives, normalized to No_partitioning — plus the per-group averages
//! behind the paper's headline numbers:
//!
//! * vs **No_partitioning** (hetero): Hsp +20.3%, MinF +49.8%, Wsp +32.8%,
//!   IPCsum +64.2% with the corresponding optimal schemes;
//! * vs **Equal** (hetero): +2.1%, +38.7%, +7.6%, +24%.

use bwpart_core::prelude::*;
use bwpart_workloads::mixes::{hetero_mixes, homo_mixes};
use serde::{Deserialize, Serialize};

use crate::harness::{geomean, pct, ExpConfig, MixResults, Table};

/// Per-mix, per-scheme normalized metric values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Mix names in run order (7 homo then 7 hetero).
    pub mixes: Vec<String>,
    /// Whether each mix is in the heterogeneous group.
    pub is_hetero: Vec<bool>,
    /// `normalized[mix][scheme][metric]` over
    /// [`PartitionScheme::ENFORCED_SCHEMES`] × [`Metric::ALL`], normalized
    /// to No_partitioning.
    pub normalized: Vec<Vec<Vec<f64>>>,
}

/// The paper's headline averages for heterogeneous workloads: per metric,
/// (optimal scheme, improvement over No_partitioning, over Equal).
pub const PAPER_HETERO_HEADLINE: [(Metric, PartitionScheme, f64, f64); 4] = [
    (
        Metric::HarmonicWeightedSpeedup,
        PartitionScheme::SquareRoot,
        0.203,
        0.021,
    ),
    (
        Metric::MinFairness,
        PartitionScheme::Proportional,
        0.498,
        0.387,
    ),
    (
        Metric::WeightedSpeedup,
        PartitionScheme::PriorityApc,
        0.328,
        0.076,
    ),
    (Metric::SumOfIpcs, PartitionScheme::PriorityApi, 0.642, 0.24),
];

/// Run the full grid.
pub fn run(cfg: &ExpConfig) -> Fig2Result {
    let mut mixes = homo_mixes();
    let n_homo = mixes.len();
    mixes.extend(hetero_mixes());
    let grid = cfg.run_grid(&mixes, &PartitionScheme::PAPER_SCHEMES);
    collect(grid, n_homo)
}

fn collect(grid: Vec<MixResults>, n_homo: usize) -> Fig2Result {
    let mut out = Fig2Result {
        mixes: Vec::new(),
        is_hetero: Vec::new(),
        normalized: Vec::new(),
    };
    for (i, mr) in grid.iter().enumerate() {
        out.mixes.push(mr.mix.clone());
        out.is_hetero.push(i >= n_homo);
        let per_scheme = PartitionScheme::ENFORCED_SCHEMES
            .iter()
            .map(|&s| {
                Metric::ALL
                    .iter()
                    .map(|&m| {
                        mr.normalized(s, PartitionScheme::NoPartitioning, m)
                            // lint: allow(R1): run_schemes covered every enforced scheme
                            .expect("scheme was run")
                    })
                    .collect()
            })
            .collect();
        out.normalized.push(per_scheme);
    }
    out
}

impl Fig2Result {
    /// Geometric-mean normalized value of `scheme` on `metric` over one
    /// group (`hetero = true/false`).
    pub fn group_avg(&self, scheme: PartitionScheme, metric: Metric, hetero: bool) -> f64 {
        let si = PartitionScheme::ENFORCED_SCHEMES
            .iter()
            .position(|&s| s == scheme)
            // lint: allow(R1): callers pass a scheme from ENFORCED_SCHEMES
            .expect("enforced scheme");
        let mi = Metric::ALL
            .iter()
            .position(|&m| m == metric)
            // lint: allow(R1): Metric::ALL contains every Metric variant
            .expect("Metric::ALL is exhaustive");
        let vals: Vec<f64> = self
            .normalized
            .iter()
            .zip(&self.is_hetero)
            .filter(|(_, &h)| h == hetero)
            .map(|(mix, _)| mix[si][mi])
            .collect();
        geomean(&vals)
    }

    /// Improvement of each optimal scheme over No_partitioning and over
    /// Equal for the heterogeneous group: `(metric, vs_nopart, vs_equal)`.
    pub fn hetero_headline(&self) -> Vec<(Metric, f64, f64)> {
        PAPER_HETERO_HEADLINE
            .iter()
            .map(|&(metric, scheme, _, _)| {
                let opt = self.group_avg(scheme, metric, true);
                let equal = self.group_avg(PartitionScheme::Equal, metric, true);
                (metric, opt - 1.0, opt / equal - 1.0)
            })
            .collect()
    }
}

/// Render per-metric tables (one per sub-figure) plus the averages.
pub fn render(r: &Fig2Result) -> String {
    let mut out = String::new();
    for (mi, m) in Metric::ALL.iter().enumerate() {
        out.push_str(&format!(
            "\nFigure 2{} — {} (normalized to No_partitioning)\n",
            ["a", "b", "c", "d"][mi],
            m.label()
        ));
        let mut header = vec!["workload".to_string()];
        for s in PartitionScheme::ENFORCED_SCHEMES {
            header.push(s.name());
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        for (i, mix) in r.mixes.iter().enumerate() {
            let mut row = vec![mix.clone()];
            for (si, _) in PartitionScheme::ENFORCED_SCHEMES.iter().enumerate() {
                row.push(format!("{:.3}", r.normalized[i][si][mi]));
            }
            t.row(row);
        }
        for hetero in [false, true] {
            let mut row = vec![if hetero {
                "avg(hetero)".to_string()
            } else {
                "avg(homo)".to_string()
            }];
            for &s in &PartitionScheme::ENFORCED_SCHEMES {
                row.push(format!("{:.3}", r.group_avg(s, *m, hetero)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }

    out.push_str("\nHeadline (heterogeneous workloads, optimal scheme per metric):\n");
    let mut t = Table::new(&[
        "metric",
        "scheme",
        "vs No_part (meas)",
        "vs No_part (paper)",
        "vs Equal (meas)",
        "vs Equal (paper)",
    ]);
    let headline = r.hetero_headline();
    for ((metric, vs_np, vs_eq), (pm, scheme, p_np, p_eq)) in
        headline.iter().zip(PAPER_HETERO_HEADLINE)
    {
        assert_eq!(*metric, pm);
        t.row(vec![
            metric.label().into(),
            scheme.name(),
            pct(1.0 + vs_np),
            pct(1.0 + p_np),
            pct(1.0 + vs_eq),
            pct(1.0 + p_eq),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwpart_workloads::Mix;

    /// Build a tiny fake grid to validate aggregation without simulating.
    fn fake() -> Fig2Result {
        // Two mixes (one homo, one hetero); values chosen so group averages
        // are easy to verify.
        Fig2Result {
            mixes: vec!["homo-x".into(), "hetero-x".into()],
            is_hetero: vec![false, true],
            normalized: vec![
                vec![vec![1.0; 4]; 6],
                vec![
                    vec![1.1, 1.2, 1.3, 1.4], // Equal
                    vec![1.0, 1.5, 1.0, 1.0], // Proportional
                    vec![1.2, 1.3, 1.2, 1.2], // SquareRoot
                    vec![1.1, 1.3, 1.1, 1.1], // TwoThirdsPower
                    vec![1.0, 0.5, 1.4, 1.5], // PriorityApc
                    vec![1.0, 0.5, 1.4, 1.6], // PriorityApi
                ],
            ],
        }
    }

    #[test]
    fn group_avg_filters_by_group() {
        let r = fake();
        let eq_hetero = r.group_avg(
            PartitionScheme::Equal,
            Metric::HarmonicWeightedSpeedup,
            true,
        );
        assert!((eq_hetero - 1.1).abs() < 1e-12);
        let eq_homo = r.group_avg(
            PartitionScheme::Equal,
            Metric::HarmonicWeightedSpeedup,
            false,
        );
        assert!((eq_homo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn headline_compares_optimal_to_baselines() {
        let r = fake();
        let h = r.hetero_headline();
        // Hsp: sqrt 1.2 → +20% vs No_partitioning; vs Equal = 1.2/1.1 − 1.
        assert_eq!(h[0].0, Metric::HarmonicWeightedSpeedup);
        assert!((h[0].1 - 0.2).abs() < 1e-12);
        assert!((h[0].2 - (1.2 / 1.1 - 1.0)).abs() < 1e-12);
        // IPCsum: Priority_API 1.6 → +60%.
        assert!((h[3].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn render_contains_all_subfigures() {
        let s = render(&fake());
        for sub in ["Figure 2a", "Figure 2b", "Figure 2c", "Figure 2d"] {
            assert!(s.contains(sub));
        }
        assert!(s.contains("avg(hetero)"));
        assert!(s.contains("Headline"));
    }

    /// One real (but tiny) simulated mix through the collect path.
    #[test]
    fn collect_on_real_run() {
        let cfg = ExpConfig::fast();
        let mix = Mix {
            name: "hetero-5-mini".into(),
            benches: vec![
                "libquantum".into(),
                "milc".into(),
                "gromacs".into(),
                "gobmk".into(),
            ],
        };
        let grid = vec![crate::harness::MixResults {
            mix: mix.name.clone(),
            results: cfg.run_schemes(&mix, &PartitionScheme::PAPER_SCHEMES),
        }];
        let r = collect(grid, 0);
        assert_eq!(r.mixes.len(), 1);
        assert!(r.is_hetero[0]);
        for scheme_row in &r.normalized[0] {
            for &v in scheme_row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }
}
