#![warn(missing_docs)]

//! # bwpart-experiments — the paper's evaluation, regenerated
//!
//! One module (and one binary) per table/figure of the IPDPS'13 paper:
//!
//! | module | artifact | what it reproduces |
//! |---|---|---|
//! | [`table3`] | Table III | standalone benchmark classification (APKC/APKI) |
//! | [`table4`] | Table IV | workload mixes and their heterogeneity (RSD) |
//! | [`fig1`] | Figure 1 | motivation: 4 metrics × 5 schemes on one mix |
//! | [`fig2`] | Figure 2 | 14 mixes × 6 schemes × 4 metrics vs No_partitioning |
//! | [`fig3`] | Figure 3 | QoS-guaranteed partitioning on two mixes |
//! | [`fig4`] | Figure 4 | scalability: 3.2→12.8 GB/s with 4→16 cores |
//! | [`model_vs_sim`] | (extension) | analytical predictions vs simulation |
//!
//! Extensions beyond the paper: [`model_vs_sim`] (prediction accuracy),
//! [`profiling`] (Eq. 12 estimator accuracy vs ground truth),
//! [`heuristics`] (PARBS/ATLAS-style schedulers vs the derived optima),
//! [`adaptation`] (epoch repartitioning tracking a behaviour change),
//! [`shared_l2`] (the footnote-1 way-partitioned shared L2) and
//! [`ablation`] (scheduling window, power-family α on the simulator, page
//! policy / FR-FCFS / address mapping).
//!
//! [`harness`] holds the shared machinery: parallel sweeps (rayon),
//! normalization, averaging, and ASCII table rendering. Binaries named
//! after each module print the same rows/series the paper reports,
//! side-by-side with the paper's numbers where available.

pub mod ablation;
pub mod adaptation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod harness;
pub mod heuristics;
pub mod model_vs_sim;
pub mod profiling;
pub mod shared_l2;
pub mod table3;
pub mod table4;
