//! Regenerate Figure 4: scalability with bandwidth and core count.

use bwpart_experiments::fig4;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = if fast {
        fig4::run_with_limit(&cfg, 2)
    } else {
        fig4::run(&cfg)
    };
    println!("Figure 4 — scalability (optimal schemes normalized to Equal)\n");
    println!("{}", fig4::render(&r));
}
