//! Run the ablation studies: scheduling window, power-family α on the
//! simulator, and page policy / FR-FCFS.

use bwpart_experiments::ablation;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    println!(
        "{}",
        ablation::render_window(&ablation::window_sweep(&cfg, &[1, 2, 4, 8, 16]))
    );
    println!(
        "{}",
        ablation::render_alpha(&ablation::alpha_sweep(
            &cfg,
            &[0.0, 0.25, 0.5, 2.0 / 3.0, 1.0, 1.25, 1.5],
        ))
    );
    println!(
        "{}",
        ablation::render_page_policy(&ablation::page_policy(&cfg))
    );
}
