//! Regenerate Table III: standalone benchmark classification.

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::table3;

fn main() {
    let mut cfg = ExpConfig::default();
    if std::env::args().any(|a| a == "--fast") {
        cfg = ExpConfig::fast();
    }
    let rows = table3::run(&cfg);
    println!("Table III — standalone benchmark classification (DDR2-400)\n");
    println!("{}", table3::render(&rows));
    println!(
        "APKC ordering concordance vs paper: {:.1}%",
        table3::ordering_concordance(&rows) * 100.0
    );
    let class_match = rows.iter().filter(|r| r.class == r.paper_class).count();
    println!("intensity class agreement: {class_match}/{}", rows.len());
}
