//! Regenerate Figure 2: the main evaluation grid.

use bwpart_experiments::fig2;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = fig2::run(&cfg);
    println!("Figure 2 — 14 mixes × 6 schemes × 4 metrics");
    println!("{}", fig2::render(&r));
}
