//! Regenerate Figure 3: QoS-guaranteed partitioning.

use bwpart_experiments::fig3;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = fig3::run(&cfg);
    println!("Figure 3 — QoS guarantee (hmmer target IPC 0.6)\n");
    println!("{}", fig3::render(&r));
}
