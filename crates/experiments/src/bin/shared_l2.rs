//! Run the shared-L2 way-partitioning experiment (footnote 1).

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::shared_l2;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    println!("{}", shared_l2::render(&shared_l2::run(&cfg)));
}
