//! Run the adaptive-repartitioning experiment (behaviour change mid-run).

use bwpart_experiments::adaptation;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    println!("{}", adaptation::render(&adaptation::run(&cfg)));
}
