//! Compare heuristic schedulers (PARBS/ATLAS-style) against the paper's
//! derived per-objective optima.

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::heuristics;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = if fast {
        heuristics::run_with_limit(&cfg, 2)
    } else {
        heuristics::run(&cfg)
    };
    println!("{}", heuristics::render(&r));
}
