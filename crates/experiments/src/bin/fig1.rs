//! Regenerate Figure 1: the motivation experiment.

use bwpart_experiments::fig1;
use bwpart_experiments::harness::ExpConfig;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = fig1::run(&cfg);
    println!("Figure 1 — normalized performance on libquantum-milc-gromacs-gobmk\n");
    println!("{}", fig1::render(&r));
    println!("expected winners (paper): Hsp→Square_root, MinF→Proportional, Wsp→Priority_APC, IPCsum→Priority_API");
}
