//! Regenerate Table IV: workload heterogeneity classification.

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::table4;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let rows = table4::run(&cfg);
    println!("Table IV — workload construction and heterogeneity\n");
    println!("{}", table4::render(&rows));
    let agree = rows
        .iter()
        .filter(|r| r.is_hetero() == r.paper_is_hetero())
        .count();
    println!(
        "homo/hetero classification agreement: {agree}/{}",
        rows.len()
    );
}
