//! Quantify the Eq. 12-13 online APC_alone estimator against ground truth.

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::profiling;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    println!("{}", profiling::render(&profiling::run(&cfg)));
}
