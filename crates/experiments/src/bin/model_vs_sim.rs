//! Extension: analytical-model predictions vs cycle-level simulation.

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::model_vs_sim;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };
    let r = model_vs_sim::run(&cfg);
    println!("{}", model_vs_sim::render(&r));
}
