//! Run every experiment in sequence (the full paper regeneration).

use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::{
    ablation, adaptation, fig1, fig2, fig3, fig4, heuristics, model_vs_sim, profiling, shared_l2,
    table3, table4,
};

fn main() {
    let cfg = if std::env::args().any(|a| a == "--fast") {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    };

    println!("=== Table III ===\n");
    let t3 = table3::run(&cfg);
    println!("{}", table3::render(&t3));
    println!(
        "APKC ordering concordance: {:.1}%  class agreement: {}/{}\n",
        table3::ordering_concordance(&t3) * 100.0,
        t3.iter().filter(|r| r.class == r.paper_class).count(),
        t3.len()
    );

    println!("=== Table IV ===\n");
    let t4 = table4::from_table3(&t3);
    println!("{}", table4::render(&t4));

    println!("\n=== Figure 1 ===\n");
    println!("{}", fig1::render(&fig1::run(&cfg)));

    println!("\n=== Figure 2 ===");
    println!("{}", fig2::render(&fig2::run(&cfg)));

    println!("\n=== Figure 3 ===\n");
    println!("{}", fig3::render(&fig3::run(&cfg)));

    println!("\n=== Figure 4 ===\n");
    let f4 = if std::env::args().any(|a| a == "--fast") {
        fig4::run_with_limit(&cfg, 2)
    } else {
        fig4::run(&cfg)
    };
    println!("{}", fig4::render(&f4));

    println!("\n=== Model vs simulator ===\n");
    println!("{}", model_vs_sim::render(&model_vs_sim::run(&cfg)));

    println!("\n=== Ablations ===\n");
    println!(
        "{}",
        ablation::render_window(&ablation::window_sweep(&cfg, &[1, 2, 4, 8, 16]))
    );
    println!(
        "{}",
        ablation::render_alpha(&ablation::alpha_sweep(
            &cfg,
            &[0.0, 0.25, 0.5, 2.0 / 3.0, 1.0, 1.25, 1.5],
        ))
    );
    println!(
        "{}",
        ablation::render_page_policy(&ablation::page_policy(&cfg))
    );

    println!("\n=== Adaptation ===\n");
    println!("{}", adaptation::render(&adaptation::run(&cfg)));

    println!("\n=== Profiling accuracy ===\n");
    println!("{}", profiling::render(&profiling::run(&cfg)));

    println!("\n=== Shared L2 (footnote 1) ===\n");
    println!("{}", shared_l2::render(&shared_l2::run(&cfg)));

    println!("\n=== Heuristic schedulers ===\n");
    let h = if std::env::args().any(|a| a == "--fast") {
        heuristics::run_with_limit(&cfg, 2)
    } else {
        heuristics::run(&cfg)
    };
    println!("{}", heuristics::render(&h));
}
