//! Figure 4: scalability (Section VI-C).
//!
//! Off-chip bandwidth scales 3.2 → 6.4 → 12.8 GB/s (bus frequency only;
//! latency parameters fixed in ns) while the core count scales 4 → 8 → 16
//! (1, 2, 4 copies of each heterogeneous mix). Each metric is reported for
//! its optimal partitioning scheme, normalized to Equal partitioning. The
//! paper's claim: the improvements *grow* with scale, because bandwidth-
//! bound applications' `APC_alone` grows faster than latency-bound ones',
//! making the workloads more heterogeneous.

use bwpart_core::prelude::*;
use bwpart_dram::DramConfig;
use bwpart_workloads::mixes::hetero_mixes;
use serde::{Deserialize, Serialize};

use crate::harness::{geomean, ExpConfig, Table};

/// The optimal scheme per metric, in `Metric::ALL` order.
pub const OPTIMAL: [(Metric, PartitionScheme); 4] = [
    (Metric::HarmonicWeightedSpeedup, PartitionScheme::SquareRoot),
    (Metric::MinFairness, PartitionScheme::Proportional),
    (Metric::WeightedSpeedup, PartitionScheme::PriorityApc),
    (Metric::SumOfIpcs, PartitionScheme::PriorityApi),
];

/// One bandwidth/core-count scaling point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Label, e.g. "3.2GB/s (4 cores)".
    pub label: String,
    /// Per-metric (in `Metric::ALL` order): geomean over the heterogeneous
    /// mixes of optimal-scheme performance normalized to Equal.
    pub normalized_to_equal: [f64; 4],
}

/// Full scalability results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// The three scaling points, in increasing bandwidth order.
    pub points: Vec<Fig4Point>,
}

/// The three scaling points: (label, DRAM config, mix copies).
pub fn scaling_points() -> Vec<(String, DramConfig, usize)> {
    vec![
        ("3.2GB/s-4core".into(), DramConfig::ddr2_400(), 1),
        ("6.4GB/s-8core".into(), DramConfig::ddr2_800(), 2),
        ("12.8GB/s-16core".into(), DramConfig::ddr2_1600(), 4),
    ]
}

/// Run the scalability sweep. `mix_limit` bounds how many heterogeneous
/// mixes are used (all 7 in full runs; fewer for smoke tests).
pub fn run_with_limit(cfg: &ExpConfig, mix_limit: usize) -> Fig4Result {
    let mixes: Vec<_> = hetero_mixes().into_iter().take(mix_limit).collect();
    let schemes: Vec<PartitionScheme> = std::iter::once(PartitionScheme::Equal)
        .chain(OPTIMAL.iter().map(|&(_, s)| s))
        .collect();
    let mut points = Vec::new();
    for (label, dram, copies) in scaling_points() {
        let point_cfg = ExpConfig {
            dram,
            copies,
            ..cfg.clone()
        };
        let grid = point_cfg.run_grid(&mixes, &schemes);
        let mut normalized = [0.0f64; 4];
        for (mi, &(metric, scheme)) in OPTIMAL.iter().enumerate() {
            let vals: Vec<f64> = grid
                .iter()
                .filter_map(|mr| mr.normalized(scheme, PartitionScheme::Equal, metric))
                .collect();
            normalized[mi] = geomean(&vals);
        }
        points.push(Fig4Point {
            label,
            normalized_to_equal: normalized,
        });
    }
    Fig4Result { points }
}

/// Run with all seven heterogeneous mixes.
pub fn run(cfg: &ExpConfig) -> Fig4Result {
    run_with_limit(cfg, usize::MAX)
}

/// Render the figure's series.
pub fn render(r: &Fig4Result) -> String {
    let mut t = Table::new(&[
        "scaling point",
        "Hsp (Square_root)",
        "MinF (Proportional)",
        "Wsp (Priority_APC)",
        "IPCsum (Priority_API)",
    ]);
    for p in &r.points {
        let mut row = vec![p.label.clone()];
        for v in p.normalized_to_equal {
            row.push(format!("{v:.3}"));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str("\n(optimal scheme per metric, normalized to Equal partitioning;\n the paper's Figure 4 shape: every column grows with bandwidth)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_double_bandwidth() {
        let pts = scaling_points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].2, 1);
        assert_eq!(pts[1].2, 2);
        assert_eq!(pts[2].2, 4);
        let b0 = pts[0].1.peak_bandwidth_bytes_per_sec();
        let b1 = pts[1].1.peak_bandwidth_bytes_per_sec();
        let b2 = pts[2].1.peak_bandwidth_bytes_per_sec();
        assert!(b1 > 1.8 * b0 && b2 > 3.6 * b0);
    }

    #[test]
    fn optimal_table_covers_all_metrics_in_order() {
        for (i, (m, _)) in OPTIMAL.iter().enumerate() {
            assert_eq!(*m, Metric::ALL[i]);
        }
    }

    /// Smoke: one mix, all three scaling points, fast phases.
    #[test]
    fn fast_scaling_run_is_finite() {
        let r = run_with_limit(&ExpConfig::fast(), 1);
        assert_eq!(r.points.len(), 3);
        for p in &r.points {
            for v in p.normalized_to_equal {
                assert!(v.is_finite() && v > 0.0, "{}: {v}", p.label);
            }
        }
        let s = render(&r);
        assert!(s.contains("12.8GB/s-16core"));
    }
}
