//! Figure 1: the motivation experiment.
//!
//! Four SPEC2006 applications (libquantum, milc, gromacs, gobmk) on a
//! four-core CMP with DDR2-400, under five partitioning schemes (Equal,
//! Proportional, Square_root, Priority_API, Priority_APC). Four system
//! objectives, all normalized to No_partitioning. The qualitative claim to
//! reproduce: *each derived scheme wins its own metric, and no single
//! scheme wins everything*.

use bwpart_core::prelude::*;
use bwpart_workloads::mixes::fig1_mix;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, MixResults, Table};

/// The five enforced schemes Figure 1 compares.
pub const FIG1_SCHEMES: [PartitionScheme; 5] = [
    PartitionScheme::Equal,
    PartitionScheme::Proportional,
    PartitionScheme::SquareRoot,
    PartitionScheme::PriorityApi,
    PartitionScheme::PriorityApc,
];

/// Figure 1 results: normalized metric values per scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// `norm[scheme_idx][metric_idx]` in `FIG1_SCHEMES` × `Metric::ALL`
    /// order, normalized to No_partitioning.
    pub normalized: Vec<Vec<f64>>,
}

impl Fig1Result {
    /// The winning scheme (index into `FIG1_SCHEMES`) per metric.
    pub fn winner(&self, metric_idx: usize) -> usize {
        (0..FIG1_SCHEMES.len())
            .max_by(|&a, &b| {
                self.normalized[a][metric_idx].total_cmp(&self.normalized[b][metric_idx])
            })
            // lint: allow(R1): FIG1_SCHEMES is a non-empty const, max_by is Some
            .expect("FIG1_SCHEMES is non-empty")
    }
}

/// Run the motivation experiment.
pub fn run(cfg: &ExpConfig) -> Fig1Result {
    let mix = fig1_mix();
    let mut schemes = vec![PartitionScheme::NoPartitioning];
    schemes.extend(FIG1_SCHEMES);
    let results = MixResults {
        mix: mix.name.clone(),
        results: cfg.run_schemes(&mix, &schemes),
    };
    let normalized = FIG1_SCHEMES
        .iter()
        .map(|&s| {
            Metric::ALL
                .iter()
                .map(|&m| {
                    results
                        .normalized(s, PartitionScheme::NoPartitioning, m)
                        // lint: allow(R1): every scheme in FIG1_SCHEMES was just run
                        .expect("all schemes were run")
                })
                .collect()
        })
        .collect();
    Fig1Result { normalized }
}

/// Render the normalized table (rows = metrics, columns = schemes, as in
/// the figure).
pub fn render(r: &Fig1Result) -> String {
    let header: Vec<String> = std::iter::once("metric".to_string())
        .chain(FIG1_SCHEMES.iter().map(|s| s.name()))
        .collect();
    let header: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header);
    for (mi, m) in Metric::ALL.iter().enumerate() {
        let mut row = vec![m.label().to_string()];
        for (si, _) in FIG1_SCHEMES.iter().enumerate() {
            let v = r.normalized[si][mi];
            let mark = if r.winner(mi) == si { "*" } else { "" };
            row.push(format!("{}{}", f3(v), mark));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str("\n(normalized to No_partitioning; * marks the per-metric winner)\n");
    out
}

/// The paper's qualitative expectations: metric index in `Metric::ALL` →
/// expected winner index in `FIG1_SCHEMES`.
pub fn expected_winners() -> [(Metric, PartitionScheme); 4] {
    [
        (Metric::HarmonicWeightedSpeedup, PartitionScheme::SquareRoot),
        (Metric::MinFairness, PartitionScheme::Proportional),
        (Metric::WeightedSpeedup, PartitionScheme::PriorityApc),
        (Metric::SumOfIpcs, PartitionScheme::PriorityApi),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_and_metrics_align() {
        let ws = expected_winners();
        for (i, (m, _)) in ws.iter().enumerate() {
            assert_eq!(*m, Metric::ALL[i]);
        }
    }

    /// End-to-end smoke: the experiment runs in fast mode and every
    /// normalized value is positive and finite.
    #[test]
    fn fast_run_produces_finite_ratios() {
        let r = run(&ExpConfig::fast());
        assert_eq!(r.normalized.len(), FIG1_SCHEMES.len());
        for row in &r.normalized {
            assert_eq!(row.len(), 4);
            for &v in row {
                assert!(v.is_finite() && v > 0.0, "bad normalized value {v}");
            }
        }
        let rendered = render(&r);
        assert!(rendered.contains("Square_root"));
        assert!(rendered.contains('*'));
    }
}
