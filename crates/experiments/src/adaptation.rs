//! Adaptive repartitioning under behaviour change (extension experiment).
//!
//! Section IV-C: the paper profiles `APC_alone` every ~10 M cycles and
//! updates shares "when an application's behavior changes". This
//! experiment constructs that scenario explicitly: one application morphs
//! from a light (`povray`-like) phase into a heavy (`libquantum`-like)
//! phase mid-run, co-scheduled with three static applications. We compare
//!
//! * **static** Square_root shares frozen from the initial profile, vs.
//! * **adaptive** Square_root shares re-derived every epoch,
//!
//! on the measurement window that spans the behaviour change. Adaptive
//! repartitioning should track the morph and win on harmonic weighted
//! speedup and fairness.

use bwpart_cmp::{CmpConfig, Runner, ShareSource, SimOutcome};
use bwpart_core::prelude::*;
use bwpart_workloads::phased::PhasedWorkload;
use bwpart_workloads::{BenchProfile, Mix};
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// Results of the adaptation experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationResult {
    /// Metrics with frozen shares: `(metric, value)` in `Metric::ALL` order.
    pub static_metrics: Vec<f64>,
    /// Metrics with epoch repartitioning.
    pub adaptive_metrics: Vec<f64>,
    /// The morphing app's shared-mode IPC under each variant.
    pub morph_ipc_static: f64,
    /// Its IPC with adaptive shares.
    pub morph_ipc_adaptive: f64,
}

fn build_workloads(
    cfg: &ExpConfig,
    switch_after: u64,
) -> (
    Vec<Box<dyn bwpart_cmp::Workload>>,
    Vec<bwpart_cmp::CoreConfig>,
) {
    // lint: allow(R1): both names are in the compile-time benchmark table
    let light = BenchProfile::by_name("povray").expect("povray is a known benchmark");
    // lint: allow(R1): both names are in the compile-time benchmark table
    let heavy = BenchProfile::by_name("libquantum").expect("libquantum is a known benchmark");
    let statics = Mix {
        name: "static".into(),
        benches: vec!["milc".into(), "gromacs".into(), "gobmk".into()],
    };
    let (mut workloads, mut cfgs) = statics.build(1, cfg.seed);
    // The morphing app: light for `switch_after` accesses, then heavy.
    // Its core takes the heavy profile's limits (the hardware doesn't
    // change; the program does).
    workloads.push(Box::new(PhasedWorkload::two_phase(
        "morph",
        light.spawn(cfg.seed ^ 0x99),
        switch_after,
        heavy.spawn(cfg.seed ^ 0x9A),
    )));
    cfgs.push(heavy.core_config());
    (workloads, cfgs)
}

/// Run the experiment. The morph happens roughly one third into the
/// measurement phase.
pub fn run(cfg: &ExpConfig) -> AdaptationResult {
    let runner = Runner {
        cmp: CmpConfig {
            dram: cfg.dram.clone(),
            ..CmpConfig::default()
        },
        phases: cfg.phases,
    };
    // The switch point is counted in workload *accesses* (memory
    // instructions). Place it roughly one third into the measurement
    // window: during the light phase the app runs at IPC ≈ 0.8 and issues
    // one memory instruction every (gap + 1) instructions.
    // lint: allow(R1): "povray" is in the compile-time benchmark table
    let light_profile = BenchProfile::by_name("povray").expect("povray is a known benchmark");
    let pre_cycles = cfg.phases.warmup + cfg.phases.profile + cfg.phases.measure / 3;
    let light_ipc = 0.8;
    let switch_after = (pre_cycles as f64 * light_ipc / (light_profile.gap as f64 + 1.0)) as u64;

    // Static shares: profile once, enforce Square_root, never update.
    let mut static_runner = runner.clone();
    static_runner.phases.repartition_epoch = None;
    let (w, cc) = build_workloads(cfg, switch_after);
    let static_out = static_runner.run_scheme(
        PartitionScheme::SquareRoot,
        w,
        cc,
        ShareSource::OnlineProfile,
    );

    // Adaptive: same, but re-profile and re-partition every epoch.
    let mut adaptive_runner = runner;
    adaptive_runner.phases.repartition_epoch = Some((cfg.phases.measure / 8).max(1));
    let (w, cc) = build_workloads(cfg, switch_after);
    let adaptive_out = adaptive_runner.run_scheme(
        PartitionScheme::SquareRoot,
        w,
        cc,
        ShareSource::OnlineProfile,
    );

    // Fair comparison: evaluate both against the *same* reference values
    // (the adaptive run's post-hoc estimates would differ; use static's).
    let eval = |out: &SimOutcome| -> Vec<f64> {
        Metric::ALL
            .iter()
            .map(|&m| {
                bwpart_core::metrics::evaluate(m, &out.ipc_shared(), &static_out.ipc_alone_ref())
                    // lint: allow(R1): ipc_alone_ref() clamps to positive finite values
                    .expect("reference vectors are clamped positive")
            })
            .collect()
    };
    AdaptationResult {
        static_metrics: eval(&static_out),
        adaptive_metrics: eval(&adaptive_out),
        morph_ipc_static: static_out.ipc_shared()[3],
        morph_ipc_adaptive: adaptive_out.ipc_shared()[3],
    }
}

/// Render the comparison.
pub fn render(r: &AdaptationResult) -> String {
    let mut t = Table::new(&["metric", "static shares", "adaptive shares", "delta"]);
    for (i, m) in Metric::ALL.iter().enumerate() {
        let s = r.static_metrics[i];
        let a = r.adaptive_metrics[i];
        t.row(vec![
            m.label().into(),
            f3(s),
            f3(a),
            format!("{:+.1}%", (a / s - 1.0) * 100.0),
        ]);
    }
    let mut out =
        String::from("Adaptation under behaviour change (morphing app: povray→libquantum)\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmorphing app IPC: static {:.3} vs adaptive {:.3}\n",
        r.morph_ipc_static, r.morph_ipc_adaptive
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_runs_and_produces_finite_metrics() {
        let mut cfg = ExpConfig::fast();
        cfg.phases = bwpart_cmp::PhaseConfig {
            warmup: 100_000,
            profile: 200_000,
            measure: 600_000,
            repartition_epoch: None,
        };
        let r = run(&cfg);
        for (s, a) in r.static_metrics.iter().zip(&r.adaptive_metrics) {
            assert!(s.is_finite() && *s > 0.0);
            assert!(a.is_finite() && *a > 0.0);
        }
        assert!(r.morph_ipc_static > 0.0 && r.morph_ipc_adaptive > 0.0);
        let rendered = render(&r);
        assert!(rendered.contains("adaptive"));
    }
}
