//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`window_sweep`] — the memory controller's per-application scheduling
//!   window (1 = strict FIFO … 16): DESIGN.md claims head-of-line blocking
//!   caps a single streamer far below bus bandwidth; this quantifies it.
//! * [`alpha_sweep`] — the power family `β ∝ APC_alone^α` *on the
//!   simulator* (the model's α*-per-metric predictions, validated with the
//!   full machine in the loop).
//! * [`page_policy`] — close page + FCFS (the paper's Table II baseline)
//!   vs open page + FR-FCFS: row-hit rate and utilization, demonstrating
//!   the bandwidth-utilization mechanisms of Section II-A1 that the
//!   partitioning model deliberately holds constant.

use bwpart_cmp::{CmpConfig, CmpSystem, Runner, ShareSource};
use bwpart_core::prelude::*;
use bwpart_dram::{MappingScheme, PagePolicy};
use bwpart_mc::Policy;
use bwpart_workloads::{mixes, BenchProfile};
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// One row of the scheduling-window ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowPoint {
    /// Window depth.
    pub window: usize,
    /// Standalone lbm bandwidth (APKC) at this depth.
    pub lbm_alone_apkc: f64,
    /// Hetero-mix Hsp under Square_root at this depth.
    pub mix_hsp: f64,
}

/// Sweep the scheduling window.
pub fn window_sweep(cfg: &ExpConfig, windows: &[usize]) -> Vec<WindowPoint> {
    // lint: allow(R1): "lbm" is in the compile-time benchmark table
    let lbm = BenchProfile::by_name("lbm").expect("lbm is a known benchmark");
    let mix = mixes::hetero_mixes().remove(4);
    windows
        .iter()
        .map(|&window| {
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    sched_window: window,
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let alone = runner.run_alone(lbm.spawn(cfg.seed), lbm.core_config());
            let (w, cc) = mix.build(1, cfg.seed);
            let out = runner.run_scheme(
                PartitionScheme::SquareRoot,
                w,
                cc,
                ShareSource::OnlineProfile,
            );
            WindowPoint {
                window,
                lbm_alone_apkc: alone.stats.apkc(),
                mix_hsp: out.metric(Metric::HarmonicWeightedSpeedup),
            }
        })
        .collect()
}

/// Render the window sweep.
pub fn render_window(points: &[WindowPoint]) -> String {
    let mut t = Table::new(&["window", "lbm alone APKC", "hetero-5 Hsp (sqrt)"]);
    for p in points {
        t.row(vec![
            p.window.to_string(),
            f3(p.lbm_alone_apkc),
            f3(p.mix_hsp),
        ]);
    }
    let mut out = String::from("Scheduling-window ablation\n");
    out.push_str(&t.render());
    out.push_str("\n(window 1 = strict per-app FIFO: head-of-line blocking costs\n bandwidth; ≥8 approaches the saturated bus)\n");
    out
}

/// One row of the α sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlphaPoint {
    /// The power-family exponent.
    pub alpha: f64,
    /// Simulated metrics in `Metric::ALL` order.
    pub metrics: Vec<f64>,
}

/// Sweep `α` on the simulator over one heterogeneous mix.
pub fn alpha_sweep(cfg: &ExpConfig, alphas: &[f64]) -> Vec<AlphaPoint> {
    let mix = mixes::hetero_mixes().remove(4);
    alphas
        .iter()
        .map(|&alpha| {
            let out = cfg.run_one(&mix, PartitionScheme::Power(alpha));
            AlphaPoint {
                alpha,
                metrics: Metric::ALL.iter().map(|&m| out.metric(m)).collect(),
            }
        })
        .collect()
}

/// Render the α sweep, marking each metric's simulated argmax.
pub fn render_alpha(points: &[AlphaPoint]) -> String {
    let mut t = Table::new(&["alpha", "Hsp", "MinF", "Wsp", "IPCsum"]);
    let argmax: Vec<usize> = (0..4)
        .map(|mi| {
            (0..points.len())
                .max_by(|&a, &b| points[a].metrics[mi].total_cmp(&points[b].metrics[mi]))
                .unwrap_or(0)
        })
        .collect();
    for (pi, p) in points.iter().enumerate() {
        let mut row = vec![format!("{:.2}", p.alpha)];
        for (mi, &v) in p.metrics.iter().enumerate() {
            row.push(format!(
                "{}{}",
                f3(v),
                if argmax[mi] == pi { "*" } else { "" }
            ));
        }
        t.row(row);
    }
    let mut out = String::from("Power-family α ablation on the simulator (hetero-5)\n");
    out.push_str(&t.render());
    out.push_str("\n(model predicts: Hsp* at α=0.5, MinF* at α=1.0; * marks the\n simulated argmax per metric)\n");
    out
}

/// Page-policy ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagePolicyResult {
    /// Policy label.
    pub label: String,
    /// Row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Data-bus utilization over the run.
    pub bus_utilization: f64,
    /// Sum of IPCs achieved.
    pub ipc_sum: f64,
}

/// Compare close page + FCFS against open page + FR-FCFS, both for a
/// single sequential streamer running alone (row locality survives: open
/// page wins) and for a multiprogrammed heterogeneous mix (cross-
/// application row conflicts destroy locality under the paper's
/// rank-interleaved mapping — which is precisely why Table II's close-page
/// baseline is reasonable).
pub fn page_policy(cfg: &ExpConfig) -> Vec<PagePolicyResult> {
    // Mix 5 is lbm+libquantum: long row runs.
    let mix = mixes::hetero_mixes().remove(5);
    // lint: allow(R1): "libquantum" is in the compile-time benchmark table
    let libq = BenchProfile::by_name("libquantum").expect("libquantum is a known benchmark");
    let paper_map = MappingScheme::ChRowColBankRank;
    let row_major = MappingScheme::ChRowBankRankCol;
    let cases = [
        (
            "alone: close page + FCFS",
            PagePolicy::ClosePage,
            false,
            true,
            paper_map,
        ),
        (
            "alone: open page + FR-FCFS",
            PagePolicy::OpenPage,
            true,
            true,
            paper_map,
        ),
        (
            "alone: open page + FR-FCFS, row-major map",
            PagePolicy::OpenPage,
            true,
            true,
            row_major,
        ),
        (
            "mix: close page + FCFS",
            PagePolicy::ClosePage,
            false,
            false,
            paper_map,
        ),
        (
            "mix: open page + FCFS",
            PagePolicy::OpenPage,
            false,
            false,
            paper_map,
        ),
        (
            "mix: open page + FR-FCFS",
            PagePolicy::OpenPage,
            true,
            false,
            paper_map,
        ),
        (
            "mix: open page + FR-FCFS, row-major map",
            PagePolicy::OpenPage,
            true,
            false,
            row_major,
        ),
    ];
    cases
        .iter()
        .map(|(label, policy, fr, alone, mapping)| {
            let mut dram = cfg.dram.clone();
            dram.page_policy = *policy;
            dram.mapping = *mapping;
            let cmp_cfg = CmpConfig {
                dram,
                ..CmpConfig::default()
            };
            let (w, cc) = if *alone {
                (vec![libq.spawn(cfg.seed)], vec![libq.core_config()])
            } else {
                mix.build(1, cfg.seed)
            };
            let n = w.len();
            let pol = if *fr {
                Policy::fr_fcfs(n)
            } else {
                Policy::fcfs(n)
            };
            let mut sys = CmpSystem::new(&cmp_cfg, w, cc, pol);
            sys.run(cfg.phases.warmup);
            sys.reset_phase_counters();
            sys.mc_mut().dram(); // no-op read to keep the borrow simple
            let start = sys.snapshot();
            let dram_stats_start = sys.mc().dram().stats().clone();
            sys.run(cfg.phases.measure);
            let end = sys.snapshot();
            let stats = sys.window_stats(&start, &end);
            let ds = sys.mc().dram().stats();
            let served = ds.served - dram_stats_start.served;
            let hits = ds.row_hits - dram_stats_start.row_hits;
            let busy = ds.bus_busy_cycles - dram_stats_start.bus_busy_cycles;
            PagePolicyResult {
                label: label.to_string(),
                row_hit_rate: if served == 0 {
                    0.0
                } else {
                    hits as f64 / served as f64
                },
                bus_utilization: busy as f64 / cfg.phases.measure as f64,
                ipc_sum: stats.iter().map(|s| s.ipc()).sum(),
            }
        })
        .collect()
}

/// Render the page-policy comparison.
pub fn render_page_policy(rows: &[PagePolicyResult]) -> String {
    let mut t = Table::new(&["configuration", "row hit rate", "bus util", "IPCsum"]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.1}%", r.row_hit_rate * 100.0),
            format!("{:.1}%", r.bus_utilization * 100.0),
            f3(r.ipc_sum),
        ]);
    }
    let mut out = String::from("Page-policy / scheduler ablation (No_partitioning)\n");
    out.push_str(&t.render());
    out.push_str("\n(close page: zero row hits by construction. A lone sequential\n streamer row-hits under open page + FR-FCFS; in the multiprogrammed\n mix, cross-application conflicts under the rank-interleaved mapping\n destroy row locality — the Section II-A1 utilization mechanisms,\n orthogonal to partitioning.)\n");
    out
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn window_one_loses_bandwidth() {
        let cfg = ExpConfig::fast();
        let pts = window_sweep(&cfg, &[1, 8]);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].lbm_alone_apkc > pts[0].lbm_alone_apkc * 1.2,
            "window 8 ({}) should beat strict FIFO ({})",
            pts[1].lbm_alone_apkc,
            pts[0].lbm_alone_apkc
        );
    }

    #[test]
    fn close_page_has_no_row_hits_open_page_does() {
        let mut cfg = ExpConfig::fast();
        cfg.phases.measure = 300_000;
        let rows = page_policy(&cfg);
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].row_hit_rate, 0.0, "close page cannot row-hit");
        assert_eq!(rows[3].row_hit_rate, 0.0, "close page cannot row-hit");
        assert!(
            rows[1].row_hit_rate > 0.3,
            "a lone sequential streamer should row-hit under open page, got {}",
            rows[1].row_hit_rate
        );
        // The row-major mapping concentrates a sequential stream in one
        // row: even more hits than the paper's rank-interleaved mapping.
        assert!(
            rows[2].row_hit_rate > rows[1].row_hit_rate,
            "row-major mapping should maximize standalone row hits: {} vs {}",
            rows[2].row_hit_rate,
            rows[1].row_hit_rate
        );
        // Multiprogrammed: conflicts destroy most locality under the
        // paper's mapping.
        assert!(
            rows[5].row_hit_rate < rows[1].row_hit_rate,
            "mix hit rate should be below the standalone streamer's"
        );
    }

    #[test]
    fn alpha_sweep_is_finite_and_marked() {
        let cfg = ExpConfig::fast();
        let pts = alpha_sweep(&cfg, &[0.0, 0.5, 1.0]);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.metrics.iter().all(|v| v.is_finite() && *v > 0.0));
        }
        let s = render_alpha(&pts);
        assert!(s.contains('*'));
    }
}
