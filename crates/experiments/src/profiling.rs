//! Online-profiler accuracy (extension experiment).
//!
//! Section IV-C concedes that the Eq. 12 `APC_alone` estimate "is an
//! approximation" whose inaccuracy "will not affect the efficiency of our
//! partitioning scheme since APC_alone,i is just a reference value". This
//! experiment quantifies the approximation: for every heterogeneous mix,
//! compare each application's online estimate (from the contended profile
//! phase, with interference subtraction) against its ground-truth
//! standalone rate — and then check the paper's consistency claim by
//! showing the *share vectors* derived from estimates vs ground truth are
//! close.

use bwpart_cmp::{CmpConfig, Runner, ShareSource};
use bwpart_core::prelude::*;
use bwpart_workloads::mixes::hetero_mixes;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// Estimate-vs-truth for one application in one mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfiledApp {
    /// Mix name.
    pub mix: String,
    /// Benchmark name.
    pub bench: String,
    /// Online estimate of `APC_alone` (Eq. 12).
    pub estimate: f64,
    /// Ground truth from a standalone run.
    pub truth: f64,
}

/// Full profiling-accuracy results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfilingResult {
    /// Per-application rows.
    pub apps: Vec<ProfiledApp>,
    /// Mean share-vector L1 distance between estimate-derived and
    /// truth-derived Square_root shares, per mix.
    pub mean_share_l1: f64,
}

/// Run the accuracy sweep over the heterogeneous mixes.
pub fn run(cfg: &ExpConfig) -> ProfilingResult {
    let runner = Runner {
        cmp: CmpConfig {
            dram: cfg.dram.clone(),
            ..CmpConfig::default()
        },
        phases: cfg.phases,
    };

    // Ground truth per benchmark (each runs alone once).
    let mut truth = std::collections::HashMap::new();
    for p in bwpart_workloads::table3_profiles() {
        let alone = runner.run_alone(p.spawn(cfg.seed), p.core_config());
        truth.insert(p.name.to_string(), alone.apc_alone);
    }

    let mut apps = Vec::new();
    let mut share_l1 = Vec::new();
    for mix in hetero_mixes() {
        let (w, cc) = mix.build(1, cfg.seed);
        let out = runner.run_scheme(
            PartitionScheme::NoPartitioning,
            w,
            cc,
            ShareSource::OnlineProfile,
        );
        let mut est_profiles = Vec::new();
        let mut true_profiles = Vec::new();
        for (i, bench) in mix.benches.iter().enumerate() {
            let estimate = out.apc_alone_ref[i];
            let t = truth[bench];
            apps.push(ProfiledApp {
                mix: mix.name.clone(),
                bench: bench.clone(),
                estimate,
                truth: t,
            });
            est_profiles.push(
                AppProfile::new(bench.clone(), out.api_ref[i].max(1e-9), estimate.max(1e-9))
                    // lint: allow(R1): inputs are clamped to positive finite values
                    .expect("clamped profile values are valid"),
            );
            true_profiles.push(
                AppProfile::new(bench.clone(), out.api_ref[i].max(1e-9), t.max(1e-9))
                    // lint: allow(R1): inputs are clamped to positive finite values
                    .expect("clamped profile values are valid"),
            );
        }
        let b = out.total_bandwidth;
        let est_shares = PartitionScheme::SquareRoot
            .shares(&est_profiles, b)
            // lint: allow(R1): SquareRoot is power-family, shares never fails
            .expect("power-family schemes always yield shares");
        let true_shares = PartitionScheme::SquareRoot
            .shares(&true_profiles, b)
            // lint: allow(R1): SquareRoot is power-family, shares never fails
            .expect("power-family schemes always yield shares");
        let l1: f64 = est_shares
            .iter()
            .zip(&true_shares)
            .map(|(a, b)| (a - b).abs())
            .sum();
        share_l1.push(l1);
    }

    ProfilingResult {
        apps,
        mean_share_l1: share_l1.iter().sum::<f64>() / share_l1.len().max(1) as f64,
    }
}

/// Mean |relative error| of the estimates.
pub fn mean_abs_rel_error(r: &ProfilingResult) -> f64 {
    if r.apps.is_empty() {
        return 0.0;
    }
    r.apps
        .iter()
        .map(|a| (a.estimate - a.truth).abs() / a.truth.max(1e-12))
        .sum::<f64>()
        / r.apps.len() as f64
}

/// Render the accuracy table.
pub fn render(r: &ProfilingResult) -> String {
    let mut t = Table::new(&["mix", "benchmark", "APKC est", "APKC truth", "rel.err"]);
    for a in &r.apps {
        t.row(vec![
            a.mix.clone(),
            a.bench.clone(),
            f3(a.estimate * 1000.0),
            f3(a.truth * 1000.0),
            format!("{:+.0}%", (a.estimate - a.truth) / a.truth * 100.0),
        ]);
    }
    let mut out = String::from("Online APC_alone profiling accuracy (Eq. 12-13)\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmean |relative error| of estimates: {:.1}%\n\
         mean L1 distance of derived Square_root share vectors: {:.3}\n\
         (the paper's consistency claim: the derived *shares* matter, not\n  the absolute estimates)\n",
        mean_abs_rel_error(r) * 100.0,
        r.mean_share_l1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_math() {
        let r = ProfilingResult {
            apps: vec![
                ProfiledApp {
                    mix: "m".into(),
                    bench: "a".into(),
                    estimate: 1.2,
                    truth: 1.0,
                },
                ProfiledApp {
                    mix: "m".into(),
                    bench: "b".into(),
                    estimate: 0.9,
                    truth: 1.0,
                },
            ],
            mean_share_l1: 0.05,
        };
        assert!((mean_abs_rel_error(&r) - 0.15).abs() < 1e-12);
        let s = render(&r);
        assert!(s.contains("+20%"));
        assert!(s.contains("-10%"));
    }
}
