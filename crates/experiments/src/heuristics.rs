//! Heuristic schedulers vs the derived optima (extension experiment).
//!
//! The paper's core motivation (Sections I, VII): heuristic memory
//! schedulers like PARBS and ATLAS "gain system performance by
//! distributing bandwidth among co-scheduled applications in a better way,
//! \[but\] they do not explicitly specify how much bandwidth should be
//! allocated to each application" — so none of them is optimal for any
//! *particular* objective. This experiment makes that argument empirical:
//! run PARBS-style batching, ATLAS-style least-attained-service and
//! TCM-style thread clustering on the heterogeneous mixes and compare each
//! metric against the paper's derived optimum for that metric.
//!
//! Expected shape: the heuristics land between No_partitioning and the
//! per-metric optimum on every objective, and neither wins any metric
//! outright.

use bwpart_cmp::{CmpConfig, CmpSystem, Runner, ShareSource};
use bwpart_core::prelude::*;
use bwpart_mc::Policy;
use bwpart_workloads::mixes::hetero_mixes;
use serde::{Deserialize, Serialize};

use crate::harness::{geomean, ExpConfig, Table};

/// Per-scheduler geomean normalized metrics over the hetero mixes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeuristicsResult {
    /// Scheduler labels (row order).
    pub labels: Vec<String>,
    /// `normalized[row][metric]` vs No_partitioning, `Metric::ALL` order.
    pub normalized: Vec<Vec<f64>>,
}

/// Run a mix under an arbitrary controller policy through the standard
/// phase methodology, reusing the runner's profiling for reference values.
fn run_policy(
    cfg: &ExpConfig,
    mix: &bwpart_workloads::Mix,
    policy_of: impl Fn(usize) -> Policy,
) -> bwpart_cmp::SimOutcome {
    // Profile with the standard No_partitioning phase first (for the
    // metric denominators), then measure under the custom policy.
    let runner = Runner {
        cmp: CmpConfig {
            dram: cfg.dram.clone(),
            ..CmpConfig::default()
        },
        phases: cfg.phases,
    };
    let (w, cc) = mix.build(1, cfg.seed);
    let base = runner.run_scheme(
        PartitionScheme::NoPartitioning,
        w,
        cc,
        ShareSource::OnlineProfile,
    );

    let (w, cc) = mix.build(1, cfg.seed);
    let n = w.len();
    let cmp_cfg = CmpConfig {
        dram: cfg.dram.clone(),
        ..CmpConfig::default()
    };
    let mut sys = CmpSystem::new(&cmp_cfg, w, cc, policy_of(n));
    sys.run(cfg.phases.warmup + cfg.phases.profile);
    sys.reset_phase_counters();
    let start = sys.snapshot();
    sys.run(cfg.phases.measure);
    let end = sys.snapshot();
    let stats = sys.window_stats(&start, &end);
    let total_bandwidth =
        stats.iter().map(|s| s.mem_accesses).sum::<u64>() as f64 / cfg.phases.measure as f64;
    bwpart_cmp::SimOutcome {
        scheme: "custom".into(),
        stats,
        apc_alone_ref: base.apc_alone_ref.clone(),
        api_ref: base.api_ref.clone(),
        total_bandwidth,
    }
}

/// Run the comparison over `mix_limit` heterogeneous mixes.
pub fn run_with_limit(cfg: &ExpConfig, mix_limit: usize) -> HeuristicsResult {
    let mixes: Vec<_> = hetero_mixes().into_iter().take(mix_limit).collect();
    // Rows: the two heuristics plus the per-metric optimum and Equal.
    let labels = vec![
        "PARBS (batching)".to_string(),
        "ATLAS (least-attained)".to_string(),
        "TCM (clustering)".to_string(),
        "Equal".to_string(),
        "per-metric optimum".to_string(),
    ];
    let optimum_for = [
        PartitionScheme::SquareRoot,   // Hsp
        PartitionScheme::Proportional, // MinF
        PartitionScheme::PriorityApc,  // Wsp
        PartitionScheme::PriorityApi,  // IPCsum
    ];

    let mut per_row: Vec<Vec<Vec<f64>>> = vec![Vec::new(); labels.len()];
    for mix in &mixes {
        let base = cfg.run_one(mix, PartitionScheme::NoPartitioning);
        let base_metrics: Vec<f64> = Metric::ALL.iter().map(|&m| base.metric(m)).collect();
        let normalize = |out: &bwpart_cmp::SimOutcome| -> Vec<f64> {
            Metric::ALL
                .iter()
                .zip(&base_metrics)
                .map(|(&m, &b)| out.metric(m) / b.max(1e-12))
                .collect()
        };

        let parbs = run_policy(cfg, mix, |n| Policy::parbs(n, 5));
        per_row[0].push(normalize(&parbs));
        let atlas = run_policy(cfg, mix, |n| Policy::atlas(n, 0.9999));
        per_row[1].push(normalize(&atlas));
        let tcm = run_policy(cfg, mix, |n| Policy::tcm(n, 2000));
        per_row[2].push(normalize(&tcm));
        let equal = cfg.run_one(mix, PartitionScheme::Equal);
        per_row[3].push(normalize(&equal));
        // Per-metric optimum: take each metric from its own optimal scheme.
        let mut opt = Vec::new();
        for (mi, &scheme) in optimum_for.iter().enumerate() {
            let out = cfg.run_one(mix, scheme);
            opt.push(out.metric(Metric::ALL[mi]) / base_metrics[mi].max(1e-12));
        }
        per_row[4].push(opt);
    }

    let normalized = per_row
        .into_iter()
        .map(|mix_rows| {
            (0..4)
                .map(|mi| geomean(&mix_rows.iter().map(|r| r[mi]).collect::<Vec<_>>()))
                .collect()
        })
        .collect();
    HeuristicsResult { labels, normalized }
}

/// Run over all seven heterogeneous mixes.
pub fn run(cfg: &ExpConfig) -> HeuristicsResult {
    run_with_limit(cfg, usize::MAX)
}

/// Render the comparison.
pub fn render(r: &HeuristicsResult) -> String {
    let mut t = Table::new(&["scheduler", "Hsp", "MinF", "Wsp", "IPCsum"]);
    for (label, row) in r.labels.iter().zip(&r.normalized) {
        let mut cells = vec![label.clone()];
        for v in row {
            cells.push(format!("{v:.3}"));
        }
        t.row(cells);
    }
    let mut out = String::from(
        "Heuristic schedulers vs derived optima (hetero mixes, normalized to\nNo_partitioning)\n",
    );
    out.push_str(&t.render());
    out.push_str(
        "\n(the paper's motivating claim: heuristics improve over the baseline\n but none matches the per-objective optimum on its own metric)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mix_comparison_is_finite_and_shaped() {
        let cfg = ExpConfig::fast();
        let r = run_with_limit(&cfg, 1);
        assert_eq!(r.labels.len(), 5);
        for row in &r.normalized {
            assert_eq!(row.len(), 4);
            for &v in row {
                assert!(v.is_finite() && v > 0.0);
            }
        }
        let s = render(&r);
        assert!(s.contains("PARBS"));
        assert!(s.contains("ATLAS"));
        assert!(s.contains("TCM"));
    }
}
