//! Table III: standalone benchmark classification.
//!
//! Runs every Table III benchmark alone on the DDR2-400 system and reports
//! measured `APKC_alone`, `APKI` and `IPC_alone` next to the paper's
//! values. The reproduction target is the memory-intensity *classes* and
//! *ordering*, which drive every downstream experiment.

use bwpart_cmp::{CmpConfig, Runner};
use bwpart_core::app::IntensityClass;
use bwpart_workloads::profile::{table3_profiles, PAPER_TABLE3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// One row of the reproduced Table III.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Measured accesses per kilo-cycle, standalone.
    pub apkc: f64,
    /// Measured accesses per kilo-instruction.
    pub apki: f64,
    /// Measured standalone IPC.
    pub ipc_alone: f64,
    /// Measured memory-intensity class.
    pub class: IntensityClass,
    /// Paper's APKC.
    pub paper_apkc: f64,
    /// Paper's APKI.
    pub paper_apki: f64,
    /// Paper's class.
    pub paper_class: IntensityClass,
}

/// Run the standalone sweep.
pub fn run(cfg: &ExpConfig) -> Vec<Table3Row> {
    let runner = Runner {
        cmp: CmpConfig {
            dram: cfg.dram.clone(),
            ..CmpConfig::default()
        },
        phases: cfg.phases,
    };
    table3_profiles()
        .par_iter()
        .map(|p| {
            let alone = runner.run_alone(p.spawn(cfg.seed), p.core_config());
            let (_, paper_apkc, paper_apki) = PAPER_TABLE3
                .iter()
                .find(|(n, _, _)| *n == p.name)
                .copied()
                // lint: allow(R1): table3_profiles() is derived from PAPER_TABLE3
                .expect("every profile has a paper row");
            Table3Row {
                name: p.name.to_string(),
                apkc: alone.stats.apkc(),
                apki: alone.stats.apki(),
                ipc_alone: alone.ipc_alone,
                class: IntensityClass::from_apkc(alone.stats.apkc()),
                paper_apkc,
                paper_apki,
                paper_class: IntensityClass::from_apkc(paper_apkc),
            }
        })
        .collect()
}

/// Render the paper-vs-measured table.
pub fn render(rows: &[Table3Row]) -> String {
    let mut t = Table::new(&[
        "benchmark",
        "APKC(meas)",
        "APKC(paper)",
        "APKI(meas)",
        "APKI(paper)",
        "IPC(meas)",
        "IPC(paper)",
        "class(meas)",
        "class(paper)",
    ]);
    for r in rows {
        t.row(vec![
            r.name.clone(),
            f3(r.apkc),
            f3(r.paper_apkc),
            f3(r.apki),
            f3(r.paper_apki),
            f3(r.ipc_alone),
            f3(r.paper_apkc / r.paper_apki),
            r.class.label().into(),
            r.paper_class.label().into(),
        ]);
    }
    t.render()
}

/// Spearman-style concordance: fraction of benchmark pairs whose measured
/// APKC ordering matches the paper's ordering.
pub fn ordering_concordance(rows: &[Table3Row]) -> f64 {
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            total += 1;
            let meas = rows[i].apkc.total_cmp(&rows[j].apkc);
            let paper = rows[i].paper_apkc.total_cmp(&rows[j].paper_apkc);
            if meas == paper {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single fast standalone run sanity-checks the plumbing; the full
    /// 16-benchmark calibration runs via the binary/bench in release mode.
    #[test]
    fn lbm_alone_is_high_intensity_even_in_fast_mode() {
        let mut cfg = ExpConfig::fast();
        cfg.phases.measure = 400_000;
        let runner = Runner {
            cmp: CmpConfig::default(),
            phases: cfg.phases,
        };
        let p = bwpart_workloads::BenchProfile::by_name("lbm").unwrap();
        let alone = runner.run_alone(p.spawn(cfg.seed), p.core_config());
        assert!(
            alone.stats.apkc() > 8.0,
            "lbm should saturate DDR2-400, got APKC {}",
            alone.stats.apkc()
        );
    }

    #[test]
    fn concordance_math() {
        let mk = |apkc: f64, paper: f64| Table3Row {
            name: "x".into(),
            apkc,
            apki: 1.0,
            ipc_alone: 1.0,
            class: IntensityClass::from_apkc(apkc),
            paper_apkc: paper,
            paper_apki: 1.0,
            paper_class: IntensityClass::from_apkc(paper),
        };
        // Perfectly concordant.
        let rows = vec![mk(3.0, 30.0), mk(2.0, 20.0), mk(1.0, 10.0)];
        assert!((ordering_concordance(&rows) - 1.0).abs() < 1e-12);
        // One inversion out of three pairs.
        let rows = vec![mk(2.0, 30.0), mk(3.0, 20.0), mk(1.0, 10.0)];
        assert!((ordering_concordance(&rows) - 2.0 / 3.0).abs() < 1e-12);
    }
}
