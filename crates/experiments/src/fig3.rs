//! Figure 3: QoS-guaranteed partitioning (Section VI-B).
//!
//! Two mixes — Mix-1 (lbm, libquantum, omnetpp, hmmer) and Mix-2 (h264ref,
//! zeusmp, leslie3d, hmmer) — where `hmmer` must be guaranteed an IPC of
//! 0.6 while the remaining best-effort applications are optimized. The
//! reproduction targets: (a) under No_partitioning hmmer's IPC is *not*
//! controlled; (b) the Eq. 11 reservation pins it at the target; (c) the
//! best-effort group's Hsp/Wsp/IPCsum improve over No_partitioning.

use bwpart_cmp::{CmpConfig, Runner, ShareSource, SimOutcome};
use bwpart_core::prelude::*;
use bwpart_workloads::mixes::qos_mixes;
use bwpart_workloads::Mix;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// The paper's IPC target for hmmer.
pub const HMMER_TARGET_IPC: f64 = 0.6;

/// Best-effort optimization variants shown in the figure.
pub const BE_VARIANTS: [(Metric, PartitionScheme); 3] = [
    (Metric::HarmonicWeightedSpeedup, PartitionScheme::SquareRoot),
    (Metric::WeightedSpeedup, PartitionScheme::PriorityApc),
    (Metric::SumOfIpcs, PartitionScheme::PriorityApi),
];

/// Results for one QoS mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Mix {
    /// Mix name.
    pub mix: String,
    /// The QoS application's IPC under No_partitioning.
    pub qos_ipc_nopart: f64,
    /// The QoS application's IPC under each QoS-guaranteed variant
    /// (same order as [`BE_VARIANTS`]).
    pub qos_ipc_guaranteed: Vec<f64>,
    /// The enforced target.
    pub target: f64,
    /// Best-effort group metric under each variant, normalized to the same
    /// metric under No_partitioning.
    pub be_normalized: Vec<f64>,
}

/// Full Figure 3 results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One entry per mix (Mix-1, Mix-2).
    pub mixes: Vec<Fig3Mix>,
}

/// Metric over the best-effort subset of an outcome.
fn be_metric(out: &SimOutcome, be: &[usize], metric: Metric) -> f64 {
    let ipc_shared = out.ipc_shared();
    let ipc_alone = out.ipc_alone_ref();
    let s: Vec<f64> = be.iter().map(|&i| ipc_shared[i]).collect();
    let a: Vec<f64> = be.iter().map(|&i| ipc_alone[i]).collect();
    // lint: allow(R1): ipc_alone_ref() clamps to positive finite values
    metrics::evaluate(metric, &s, &a).expect("well-formed subset")
}

fn run_mix(cfg: &ExpConfig, mix: &Mix, qos_app: usize) -> Fig3Mix {
    let runner = Runner {
        cmp: CmpConfig {
            dram: cfg.dram.clone(),
            ..CmpConfig::default()
        },
        phases: cfg.phases,
    };

    // Baseline: No_partitioning, with online profiling for reference values.
    let (w, cc) = mix.build(1, cfg.seed);
    let base = runner.run_scheme(
        PartitionScheme::NoPartitioning,
        w,
        cc,
        ShareSource::OnlineProfile,
    );
    let profiles: Vec<AppProfile> = base
        .stats
        .iter()
        .zip(base.apc_alone_ref.iter().zip(&base.api_ref))
        .map(|(s, (&apc, &api))| {
            AppProfile::new(s.name.clone(), api.max(1e-9), apc.max(1e-9))
                // lint: allow(R1): inputs are clamped to positive finite values
                .expect("clamped profile values are valid")
        })
        .collect();
    let b = base.total_bandwidth;
    // The target must be reachable given the profiled standalone IPC.
    let ipc_alone_est = profiles[qos_app].ipc_alone();
    let target = HMMER_TARGET_IPC.min(0.9 * ipc_alone_est);

    let be: Vec<usize> = (0..mix.len()).filter(|&i| i != qos_app).collect();
    let mut qos_ipc_guaranteed = Vec::new();
    let mut be_normalized = Vec::new();
    for &(metric, be_scheme) in &BE_VARIANTS {
        // Closed-loop reservation: Eq. 11 sizes the initial reserve; if the
        // work-conserving enforcement leaks share (a bursty QoS application
        // cannot always use its slot the instant it is offered), scale the
        // reservation up and retry — the paper's periodic repartitioning
        // performs the same correction online.
        let mut reserve_ipc = target;
        let mut out = None;
        for _ in 0..4 {
            let request = [QosRequest {
                app: qos_app,
                target_ipc: reserve_ipc.min(0.95 * ipc_alone_est),
            }];
            let part = qos::partition(&profiles, &request, be_scheme, b)
                // lint: allow(R1): target_ipc is clamped below ipc_alone, Eq. 11 holds
                .expect("reservation is feasible by construction");
            let (w, cc) = mix.build(1, cfg.seed);
            let o = runner.run_with_shares(
                part.shares(),
                &format!("QoS+{}", be_scheme.name()),
                w,
                cc,
                base.apc_alone_ref.clone(),
                base.api_ref.clone(),
            );
            let achieved = o.ipc_shared()[qos_app];
            let done = achieved >= 0.97 * target;
            out = Some(o);
            if done {
                break;
            }
            reserve_ipc =
                (reserve_ipc * (target / achieved.max(1e-6)).min(1.5)).min(0.95 * ipc_alone_est);
        }
        // lint: allow(R1): the retry loop always runs at least once
        let out = out.expect("at least one iteration ran");
        qos_ipc_guaranteed.push(out.ipc_shared()[qos_app]);
        let baseline = be_metric(&base, &be, metric);
        be_normalized.push(be_metric(&out, &be, metric) / baseline);
    }

    Fig3Mix {
        mix: mix.name.clone(),
        qos_ipc_nopart: base.ipc_shared()[qos_app],
        qos_ipc_guaranteed,
        target,
        be_normalized,
    }
}

/// Run the Figure 3 experiment on both mixes (hmmer is app index 3).
pub fn run(cfg: &ExpConfig) -> Fig3Result {
    Fig3Result {
        mixes: qos_mixes().iter().map(|m| run_mix(cfg, m, 3)).collect(),
    }
}

/// Render the figure's two groups: QoS IPC and best-effort performance.
pub fn render(r: &Fig3Result) -> String {
    let mut t = Table::new(&[
        "mix",
        "hmmer IPC (No_part)",
        "hmmer IPC (QoS)",
        "target",
        "BE Hsp (norm)",
        "BE Wsp (norm)",
        "BE IPCsum (norm)",
    ]);
    for m in &r.mixes {
        t.row(vec![
            m.mix.clone(),
            f3(m.qos_ipc_nopart),
            f3(m.qos_ipc_guaranteed[0]),
            f3(m.target),
            f3(m.be_normalized[0]),
            f3(m.be_normalized[1]),
            f3(m.be_normalized[2]),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\n(BE columns: best-effort group's metric under the QoS partition,\n normalized to No_partitioning; paper Figure 3 shape: hmmer pinned at\n the target while best-effort performance improves)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_metric_restricts_to_subset() {
        let out = SimOutcome {
            scheme: "x".into(),
            stats: vec![
                bwpart_cmp::AppStats {
                    name: "a".into(),
                    instructions: 100,
                    mem_accesses: 10,
                    cycles: 100,
                    l1_misses: 0,
                    l2_misses: 0,
                    interference_cycles: 0,
                },
                bwpart_cmp::AppStats {
                    name: "b".into(),
                    instructions: 200,
                    mem_accesses: 10,
                    cycles: 100,
                    l1_misses: 0,
                    l2_misses: 0,
                    interference_cycles: 0,
                },
            ],
            apc_alone_ref: vec![0.2, 0.1],
            api_ref: vec![0.1, 0.005],
            total_bandwidth: 0.2,
        };
        // Only app 1 in the subset: IPCsum = its IPC = 2.0.
        let v = be_metric(&out, &[1], Metric::SumOfIpcs);
        assert!((v - 2.0).abs() < 1e-12);
    }

    /// Fast end-to-end: the QoS machinery holds hmmer near its target even
    /// at reduced fidelity, and reports finite best-effort ratios.
    #[test]
    fn fast_qos_run_hits_target_approximately() {
        let cfg = ExpConfig::fast();
        let mix = qos_mixes().remove(1); // mix-2 is lighter: faster + stable
        let m = run_mix(&cfg, &mix, 3);
        assert!(m.target > 0.0);
        for (&ipc, &(metric, _)) in m.qos_ipc_guaranteed.iter().zip(&BE_VARIANTS) {
            // Enforcement is statistical; allow a loose band in fast mode.
            assert!(
                ipc > 0.55 * m.target,
                "{}: QoS IPC {ipc} far below target {} ({metric})",
                mix.name,
                m.target
            );
        }
        for &v in &m.be_normalized {
            assert!(v.is_finite() && v > 0.0);
        }
    }
}
