//! Model-vs-simulation validation (extension experiment).
//!
//! The analytical model of Section III predicts every metric from nothing
//! but `(API, APC_alone)` per application, the total bandwidth `B`, and
//! the share vector. This experiment closes the loop: for each enforced
//! scheme on a mix, compare the model's *predicted* metrics against the
//! cycle-level simulator's *measured* metrics.

use bwpart_core::prelude::*;
use bwpart_workloads::Mix;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// Predicted-vs-measured for one scheme.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeComparison {
    /// Scheme name.
    pub scheme: String,
    /// `(metric, predicted, measured)` in `Metric::ALL` order.
    pub rows: Vec<(String, f64, f64)>,
}

/// Full comparison for one mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelVsSim {
    /// Mix name.
    pub mix: String,
    /// One comparison per enforced scheme.
    pub schemes: Vec<SchemeComparison>,
}

/// Run the comparison on `mix`.
pub fn run_mix(cfg: &ExpConfig, mix: &Mix) -> ModelVsSim {
    let mut schemes = Vec::new();
    for &scheme in &PartitionScheme::ENFORCED_SCHEMES {
        let out = cfg.run_one(mix, scheme);
        // Feed the model exactly what the runner used: the profiled
        // reference values and the measured total bandwidth.
        let profiles: Vec<AppProfile> = out
            .stats
            .iter()
            .zip(out.apc_alone_ref.iter().zip(&out.api_ref))
            .map(|(s, (&apc, &api))| {
                AppProfile::new(s.name.clone(), api.max(1e-9), apc.max(1e-9))
                    // lint: allow(R1): inputs are clamped to positive finite values
                    .expect("clamped profile values are valid")
            })
            .collect();
        let pred = predict::evaluate_scheme(&profiles, scheme, out.total_bandwidth)
            // lint: allow(R1): ENFORCED_SCHEMES excludes NoPartitioning
            .expect("enforced schemes predict");
        let rows = Metric::ALL
            .iter()
            .map(|&m| (m.label().to_string(), pred.metric(m), out.metric(m)))
            .collect();
        schemes.push(SchemeComparison {
            scheme: scheme.name(),
            rows,
        });
    }
    ModelVsSim {
        mix: mix.name.clone(),
        schemes,
    }
}

/// Run on the Figure 1 motivation mix.
pub fn run(cfg: &ExpConfig) -> ModelVsSim {
    run_mix(cfg, &bwpart_workloads::mixes::fig1_mix())
}

/// Mean absolute relative error between prediction and measurement.
pub fn mean_abs_rel_error(r: &ModelVsSim) -> f64 {
    let mut errs = Vec::new();
    for s in &r.schemes {
        for (_, pred, meas) in &s.rows {
            if *meas > 0.0 {
                errs.push((pred - meas).abs() / meas);
            }
        }
    }
    if errs.is_empty() {
        0.0
    } else {
        errs.iter().sum::<f64>() / errs.len() as f64
    }
}

/// Render the table.
pub fn render(r: &ModelVsSim) -> String {
    let mut t = Table::new(&["scheme", "metric", "model", "simulator", "rel.err"]);
    for s in &r.schemes {
        for (m, pred, meas) in &s.rows {
            let err = if *meas > 0.0 {
                format!("{:+.1}%", (pred - meas) / meas * 100.0)
            } else {
                "n/a".into()
            };
            t.row(vec![s.scheme.clone(), m.clone(), f3(*pred), f3(*meas), err]);
        }
    }
    let mut out = format!("Model vs simulator on {}\n", r.mix);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmean |relative error| = {:.1}%\n",
        mean_abs_rel_error(r) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_math() {
        let r = ModelVsSim {
            mix: "m".into(),
            schemes: vec![SchemeComparison {
                scheme: "Equal".into(),
                rows: vec![("Hsp".into(), 1.1, 1.0), ("Wsp".into(), 0.9, 1.0)],
            }],
        };
        assert!((mean_abs_rel_error(&r) - 0.1).abs() < 1e-12);
        let s = render(&r);
        assert!(s.contains("+10.0%"));
        assert!(s.contains("-10.0%"));
    }

    /// Fast end-to-end: the model tracks the simulator within a loose bound
    /// even at reduced fidelity.
    #[test]
    fn model_tracks_simulator_loosely() {
        let cfg = ExpConfig::fast();
        let mix = Mix {
            name: "mini".into(),
            benches: vec!["libquantum".into(), "gobmk".into()],
        };
        let r = run_mix(&cfg, &mix);
        assert_eq!(r.schemes.len(), 6);
        let err = mean_abs_rel_error(&r);
        assert!(
            err < 0.6,
            "model should loosely track the simulator, err {err}"
        );
    }
}
