//! Shared-L2 extension (the paper's footnote 1).
//!
//! "Our model can also be extended to a partitioned shared L2 CMP system.
//! In a shared L2 CMP, an application's API will be affected by its L2
//! cache capacity share. Hence, we can extend our model by replacing
//! `API_i` with `API_shared,i` [...] constant to memory bandwidth
//! partitioning and obtained online."
//!
//! A *strictly way-partitioned* shared L2 is behaviourally identical to
//! private L2 slices whose capacity scales with the assigned ways at a
//! constant set count (each application's lines live only in its ways, and
//! lookups never hit another application's ways because private address
//! spaces don't overlap). This experiment exploits that equivalence:
//!
//! 1. run a mix under several L2 way allocations;
//! 2. show each application's measured `API` moves with its cache share
//!    (more ways → fewer misses → lower API) while remaining *invariant
//!    under bandwidth partitioning within a fixed allocation* — the
//!    property the model requires;
//! 3. show the forward model, fed the per-allocation `API_shared`, still
//!    ranks the bandwidth-partitioning schemes correctly.

use bwpart_cmp::cache::CacheConfig;
use bwpart_cmp::{CmpConfig, CmpSystem, PhaseConfig};
use bwpart_mc::Policy;
use bwpart_workloads::Mix;
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};

/// The shared L2's total geometry (Table II: 256 KB, 8-way).
fn slice_config(ways: usize) -> CacheConfig {
    // Constant set count (512): capacity scales with the way share.
    CacheConfig {
        capacity: 512 * ways * 64,
        ways,
        line_bytes: 64,
    }
}

/// Measured outcome for one L2 way allocation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct L2Point {
    /// Ways assigned per application (sums to the total 8 per 4 apps × 2,
    /// or any chosen budget).
    pub ways: Vec<usize>,
    /// Measured `API_shared` per application under this allocation.
    pub api: Vec<f64>,
    /// Measured IPC per application (Equal bandwidth shares).
    pub ipc: Vec<f64>,
}

/// Full shared-L2 experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedL2Result {
    /// Mix used.
    pub mix: String,
    /// One point per way allocation.
    pub points: Vec<L2Point>,
    /// `API` variation of the same allocation under two different
    /// *bandwidth* schemes (max relative difference) — the invariance the
    /// model requires (should be small).
    pub api_invariance_err: f64,
}

fn measure(
    cfg: &ExpConfig,
    mix: &Mix,
    ways: &[usize],
    policy_of: impl Fn(usize) -> Policy,
    phases: &PhaseConfig,
) -> (Vec<f64>, Vec<f64>) {
    let (w, cc) = mix.build(1, cfg.seed);
    let n = w.len();
    let l2s: Vec<CacheConfig> = ways.iter().map(|&wy| slice_config(wy)).collect();
    let cmp_cfg = CmpConfig {
        dram: cfg.dram.clone(),
        ..CmpConfig::default()
    };
    let mut sys = CmpSystem::new_with_l2(&cmp_cfg, w, cc, l2s, policy_of(n));
    sys.run(phases.warmup);
    sys.reset_phase_counters();
    let start = sys.snapshot();
    sys.run(phases.measure);
    let end = sys.snapshot();
    let stats = sys.window_stats(&start, &end);
    (
        stats.iter().map(|s| s.api()).collect(),
        stats.iter().map(|s| s.ipc()).collect(),
    )
}

/// Run the experiment on a cache-sensitive pair of applications plus two
/// streamers (cache shares matter most for hot-set apps).
pub fn run(cfg: &ExpConfig) -> SharedL2Result {
    // hmmer and bzip2 have cache-resident hot sets (cache-sensitive);
    // libquantum streams (cache-insensitive).
    let mix = Mix {
        name: "l2-sensitivity".into(),
        benches: vec![
            "hmmer".into(),
            "bzip2".into(),
            "libquantum".into(),
            "milc".into(),
        ],
    };
    let phases = PhaseConfig {
        warmup: cfg.phases.warmup,
        profile: 0,
        measure: cfg.phases.measure,
        repartition_epoch: None,
    };

    // Three allocations of a 16-way budget (2× the private baseline's 8).
    let allocations: Vec<Vec<usize>> = vec![
        vec![4, 4, 4, 4], // equal
        vec![8, 4, 2, 2], // favour the cache-sensitive apps
        vec![1, 1, 7, 7], // starve them
    ];
    let points: Vec<L2Point> = allocations
        .iter()
        .map(|ways| {
            let (api, ipc) = measure(
                cfg,
                &mix,
                ways,
                |n| Policy::stf(vec![1.0 / n as f64; n]),
                &phases,
            );
            L2Point {
                ways: ways.clone(),
                api,
                ipc,
            }
        })
        .collect();

    // API invariance under *bandwidth* partitioning: same way allocation,
    // two very different bandwidth schemes.
    let ways = &allocations[0];
    let (api_equal, _) = measure(
        cfg,
        &mix,
        ways,
        |n| Policy::stf(vec![1.0 / n as f64; n]),
        &phases,
    );
    let (api_skew, _) = measure(
        cfg,
        &mix,
        ways,
        |_| Policy::stf(vec![0.55, 0.25, 0.15, 0.05]),
        &phases,
    );
    let api_invariance_err = api_equal
        .iter()
        .zip(&api_skew)
        .map(|(a, b)| (a - b).abs() / a.max(1e-12))
        .fold(0.0f64, f64::max);

    SharedL2Result {
        mix: mix.name,
        points,
        api_invariance_err,
    }
}

/// Render the experiment.
pub fn render(r: &SharedL2Result) -> String {
    let mut t = Table::new(&[
        "L2 ways (hmmer,bzip2,libq,milc)",
        "API hmmer",
        "API bzip2",
        "API libq",
        "API milc",
        "IPC hmmer",
        "IPC bzip2",
    ]);
    for p in &r.points {
        t.row(vec![
            format!("{:?}", p.ways),
            f3(p.api[0] * 1000.0),
            f3(p.api[1] * 1000.0),
            f3(p.api[2] * 1000.0),
            f3(p.api[3] * 1000.0),
            f3(p.ipc[0]),
            f3(p.ipc[1]),
        ]);
    }
    let mut out =
        String::from("Shared-L2 way partitioning (footnote 1): API per kilo-instruction\n");
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nAPI invariance under bandwidth repartitioning (same ways, Equal vs\n skewed shares): max relative difference {:.1}% — `API_shared` is a\n stable model input, exactly as footnote 1 requires.\n",
        r.api_invariance_err * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_share_moves_api_of_sensitive_apps() {
        let mut cfg = ExpConfig::fast();
        cfg.phases.warmup = 300_000;
        cfg.phases.measure = 500_000;
        let r = run(&cfg);
        assert_eq!(r.points.len(), 3);
        // hmmer (hot set 24 KB) with 1 way (32 KB slice) misses far more
        // than with 8 ways (256 KB slice).
        let api_rich = r.points[1].api[0]; // 8 ways
        let api_poor = r.points[2].api[0]; // 1 way
        assert!(
            api_poor > api_rich * 1.15,
            "hmmer API should rise when its L2 share shrinks: rich {api_rich} poor {api_poor}"
        );
        // libquantum streams: its API barely depends on the cache share.
        let libq_rich = r.points[2].api[2]; // 7 ways
        let libq_poor = r.points[1].api[2]; // 2 ways
        assert!(
            (libq_poor - libq_rich).abs() / libq_rich < 0.25,
            "libquantum API should be cache-insensitive: {libq_rich} vs {libq_poor}"
        );
        // API is (approximately) invariant under bandwidth repartitioning.
        assert!(
            r.api_invariance_err < 0.25,
            "API must be a stable model input, err {}",
            r.api_invariance_err
        );
    }

    #[test]
    fn slice_configs_keep_set_count() {
        for ways in [1usize, 2, 4, 8] {
            let c = slice_config(ways);
            c.validate().unwrap();
            assert_eq!(c.sets(), 512);
            assert_eq!(c.ways, ways);
        }
    }
}
