//! Shared experiment machinery: configurations, parallel sweeps,
//! normalization, geometric means and ASCII tables.

use bwpart_cmp::{CmpConfig, PhaseConfig, Runner, ShareSource, SimOutcome};
use bwpart_core::prelude::*;
use bwpart_dram::DramConfig;
use bwpart_workloads::Mix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Experiment-wide configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Phase budgets for every simulation.
    pub phases: PhaseConfig,
    /// Stream seed (all experiments are deterministic given this).
    pub seed: u64,
    /// Copies of each mix (Figure 4 scaling).
    pub copies: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            phases: PhaseConfig::default(),
            seed: 0xB417_2013,
            copies: 1,
            dram: DramConfig::ddr2_400(),
        }
    }
}

impl ExpConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn fast() -> Self {
        ExpConfig {
            phases: PhaseConfig {
                warmup: 200_000,
                profile: 400_000,
                measure: 600_000,
                repartition_epoch: None,
            },
            ..Default::default()
        }
    }

    fn runner(&self) -> Runner {
        Runner {
            cmp: CmpConfig {
                dram: self.dram.clone(),
                ..CmpConfig::default()
            },
            phases: self.phases,
        }
    }

    /// Run one mix under one scheme with online profiling (the paper's
    /// methodology).
    pub fn run_one(&self, mix: &Mix, scheme: PartitionScheme) -> SimOutcome {
        let (workloads, cfgs) = mix.build(self.copies, self.seed);
        self.runner()
            .run_scheme(scheme, workloads, cfgs, ShareSource::OnlineProfile)
    }

    /// Run one mix under every scheme in `schemes`, in parallel.
    pub fn run_schemes(
        &self,
        mix: &Mix,
        schemes: &[PartitionScheme],
    ) -> Vec<(PartitionScheme, SimOutcome)> {
        schemes
            .par_iter()
            .map(|&s| (s, self.run_one(mix, s)))
            .collect()
    }

    /// Run many (mix, scheme) pairs in parallel.
    pub fn run_grid(&self, mixes: &[Mix], schemes: &[PartitionScheme]) -> Vec<MixResults> {
        mixes
            .par_iter()
            .map(|mix| MixResults {
                mix: mix.name.clone(),
                results: self.run_schemes(mix, schemes),
            })
            .collect()
    }
}

/// All scheme outcomes for one mix.
#[derive(Debug, Clone)]
pub struct MixResults {
    /// Mix name.
    pub mix: String,
    /// Outcomes per scheme.
    pub results: Vec<(PartitionScheme, SimOutcome)>,
}

impl MixResults {
    /// The outcome for `scheme`, if it was run.
    pub fn outcome(&self, scheme: PartitionScheme) -> Option<&SimOutcome> {
        self.results
            .iter()
            .find(|(s, _)| *s == scheme)
            .map(|(_, o)| o)
    }

    /// `metric` under `scheme`, normalized to the same metric under `base`.
    pub fn normalized(
        &self,
        scheme: PartitionScheme,
        base: PartitionScheme,
        metric: Metric,
    ) -> Option<f64> {
        let s = self.outcome(scheme)?.metric(metric);
        let b = self.outcome(base)?.metric(metric);
        if b > 0.0 {
            Some(s / b)
        } else {
            None
        }
    }
}

/// Geometric mean of strictly positive values (0 if empty or any ≤ 0 input
/// is filtered out first by the caller).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Minimal fixed-width ASCII table renderer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as a percent improvement over 1.0 (e.g. 1.203 → "+20.3%").
pub fn pct(v: f64) -> String {
    format!("{:+.1}%", (v - 1.0) * 100.0)
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 4.0]) - 2.5).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "2.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
        // All data lines share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(1.203), "+20.3%");
        assert_eq!(pct(0.9), "-10.0%");
    }

    #[test]
    fn fast_config_runs_fig1_mix_quickly() {
        let cfg = ExpConfig::fast();
        let mix = bwpart_workloads::mixes::fig1_mix();
        let out = cfg.run_one(&mix, PartitionScheme::Equal);
        assert_eq!(out.stats.len(), 4);
        assert!(out.metric(Metric::SumOfIpcs) > 0.0);
    }
}
