//! Table IV: workload construction and heterogeneity.
//!
//! Computes each mix's heterogeneity — the relative standard deviation
//! (RSD) of its applications' measured `APC_alone`s — and compares the
//! homogeneous/heterogeneous classification against the paper's.

use bwpart_core::app::{heterogeneity_rsd, AppProfile, HETEROGENEITY_THRESHOLD};
use bwpart_workloads::mixes::{all_mixes, PAPER_TABLE4_RSD};
use serde::{Deserialize, Serialize};

use crate::harness::{f3, ExpConfig, Table};
use crate::table3::{self, Table3Row};

/// One row of the reproduced Table IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Mix name.
    pub mix: String,
    /// Benchmarks in the mix.
    pub benches: Vec<String>,
    /// Measured heterogeneity (RSD of measured `APC_alone`s, %).
    pub rsd: f64,
    /// Paper's RSD.
    pub paper_rsd: f64,
}

impl Table4Row {
    /// Heterogeneous under the measured profile (RSD > 30).
    pub fn is_hetero(&self) -> bool {
        self.rsd > HETEROGENEITY_THRESHOLD
    }

    /// Heterogeneous in the paper.
    pub fn paper_is_hetero(&self) -> bool {
        self.paper_rsd > HETEROGENEITY_THRESHOLD
    }
}

/// Compute Table IV from standalone profiles (reuses a Table III run).
pub fn from_table3(rows: &[Table3Row]) -> Vec<Table4Row> {
    let apc_of = |name: &str| -> f64 {
        rows.iter()
            .find(|r| r.name == name)
            // lint: allow(R1): mixes only reference Table III benchmarks
            .unwrap_or_else(|| panic!("no Table III row for {name}"))
            .apkc
            / 1000.0
    };
    all_mixes()
        .into_iter()
        .map(|mix| {
            let apps: Vec<AppProfile> = mix
                .benches
                .iter()
                .map(|b| {
                    AppProfile::new(b.clone(), 1e-3, apc_of(b))
                        // lint: allow(R1): APKC from a run is positive, constants are valid
                        .expect("measured APKC is positive")
                })
                .collect();
            let paper_rsd = PAPER_TABLE4_RSD
                .iter()
                .find(|(n, _)| *n == mix.name)
                .map(|(_, r)| *r)
                // lint: allow(R1): PAPER_TABLE4_RSD covers every mix by construction
                .expect("every mix has a paper RSD");
            Table4Row {
                mix: mix.name.clone(),
                benches: mix.benches.clone(),
                rsd: heterogeneity_rsd(&apps),
                paper_rsd,
            }
        })
        .collect()
}

/// Run the standalone sweep and derive Table IV.
pub fn run(cfg: &ExpConfig) -> Vec<Table4Row> {
    from_table3(&table3::run(cfg))
}

/// Render the paper-vs-measured table.
pub fn render(rows: &[Table4Row]) -> String {
    let mut t = Table::new(&[
        "workload",
        "benchmarks",
        "RSD(meas)",
        "RSD(paper)",
        "class(meas)",
        "class(paper)",
    ]);
    for r in rows {
        t.row(vec![
            r.mix.clone(),
            r.benches.join("-"),
            f3(r.rsd),
            f3(r.paper_rsd),
            if r.is_hetero() { "hetero" } else { "homo" }.into(),
            if r.paper_is_hetero() {
                "hetero"
            } else {
                "homo"
            }
            .into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwpart_core::app::IntensityClass;

    fn fake_rows() -> Vec<Table3Row> {
        // Use the paper's own APKCs as "measured" to validate the RSD math.
        bwpart_workloads::profile::PAPER_TABLE3
            .iter()
            .map(|&(name, apkc, apki)| Table3Row {
                name: name.into(),
                apkc,
                apki,
                ipc_alone: apkc / apki,
                class: IntensityClass::from_apkc(apkc),
                paper_apkc: apkc,
                paper_apki: apki,
                paper_class: IntensityClass::from_apkc(apkc),
            })
            .collect()
    }

    #[test]
    fn paper_apcs_reproduce_paper_classification() {
        let rows = from_table3(&fake_rows());
        assert_eq!(rows.len(), 14);
        for r in &rows {
            // homo-7 is an inconsistency in the paper itself: recomputing
            // the RSD from its own Table III APKCs gives 30.6, yet Table IV
            // prints 29.71 (just under the 30 threshold). Skip it.
            if r.mix == "homo-7" {
                continue;
            }
            // With the paper's own APC_alone values, our RSD must agree
            // with the paper's homo/hetero split for every other mix.
            assert_eq!(
                r.is_hetero(),
                r.paper_is_hetero(),
                "{}: RSD {} vs paper {}",
                r.mix,
                r.rsd,
                r.paper_rsd
            );
            // And be numerically close to the printed RSD values (hetero-1
            // and homo-3 match to all printed digits with the sample
            // standard deviation).
            assert!(
                (r.rsd - r.paper_rsd).abs() < 2.0,
                "{}: {} vs {}",
                r.mix,
                r.rsd,
                r.paper_rsd
            );
        }
    }

    #[test]
    fn render_includes_all_mixes() {
        let s = render(&from_table3(&fake_rows()));
        for (name, _) in PAPER_TABLE4_RSD {
            assert!(s.contains(name));
        }
    }
}
