//! Property tests for the cache model: structural invariants under
//! arbitrary access streams, and the reference behaviours (containment
//! after access, LRU stack property, writeback address correctness).

use bwpart_cmp::cache::{Cache, CacheConfig, CacheOutcome};
use proptest::prelude::*;

fn small_cfg() -> CacheConfig {
    CacheConfig {
        capacity: 2048, // 8 sets × 4 ways × 64 B
        ways: 4,
        line_bytes: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The just-accessed line is always present afterwards; valid-line
    /// count never exceeds capacity; hit+miss counts equal accesses.
    #[test]
    fn structural_invariants(stream in prop::collection::vec((0u64..1024, any::<bool>()), 1..300)) {
        let mut c = Cache::new(small_cfg());
        for &(line, w) in &stream {
            let addr = line * 64;
            c.access(addr, w);
            prop_assert!(c.contains(addr), "line {line:#x} absent after access");
            prop_assert!(c.valid_lines() <= 32);
        }
        prop_assert_eq!(c.hits + c.misses, stream.len() as u64);
    }

    /// A working set no larger than one set's ways never self-evicts:
    /// after the first pass everything hits (the LRU stack property).
    #[test]
    fn within_set_working_set_always_hits(start in 0u64..64, rounds in 2usize..6) {
        let cfg = small_cfg();
        let mut c = Cache::new(cfg);
        let sets = cfg.sets() as u64;
        // `ways` lines all mapping to the same set.
        let lines: Vec<u64> = (0..cfg.ways as u64)
            .map(|i| (start + i * sets) * 64)
            .collect();
        for addr in &lines {
            c.access(*addr, false);
        }
        c.reset_counters();
        for _ in 0..rounds {
            for addr in &lines {
                prop_assert_eq!(c.access(*addr, false), CacheOutcome::Hit);
            }
        }
        prop_assert_eq!(c.misses, 0);
    }

    /// Writeback addresses always map to the same set as the line that
    /// displaced them, and only dirty lines generate writebacks.
    #[test]
    fn writeback_addresses_are_consistent(
        stream in prop::collection::vec((0u64..256, any::<bool>()), 1..300),
    ) {
        let cfg = small_cfg();
        let mut c = Cache::new(cfg);
        let sets = cfg.sets() as u64;
        let set_of = |addr: u64| (addr / 64) % sets;
        let mut dirtied = std::collections::HashSet::new();
        for &(line, w) in &stream {
            let addr = line * 64;
            if w {
                dirtied.insert(addr);
            }
            if let CacheOutcome::Miss { writeback: Some(wb) } = c.access(addr, w) {
                prop_assert_eq!(set_of(wb), set_of(addr), "writeback set mismatch");
                prop_assert_eq!(wb % 64, 0, "writeback must be line-aligned");
                prop_assert!(
                    dirtied.contains(&wb),
                    "clean line {wb:#x} produced a writeback"
                );
            }
        }
    }

    /// Determinism: the same stream yields identical hit/miss sequences.
    #[test]
    fn cache_is_deterministic(stream in prop::collection::vec((0u64..512, any::<bool>()), 1..200)) {
        let run = || {
            let mut c = Cache::new(small_cfg());
            stream
                .iter()
                .map(|&(line, w)| matches!(c.access(line * 64, w), CacheOutcome::Hit))
                .collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Doubling associativity (same capacity) never increases misses for
    /// a working set that fits entirely in the cache.
    #[test]
    fn more_ways_help_fitting_sets(lines in prop::collection::vec(0u64..32, 20..120)) {
        // 32 distinct lines fit a 2 KB cache exactly.
        let run = |ways: usize| {
            let mut c = Cache::new(CacheConfig {
                capacity: 2048,
                ways,
                line_bytes: 64,
            });
            // Warm with two passes over the unique lines, then measure.
            for _ in 0..2 {
                for l in 0..32u64 {
                    c.access(l * 64, false);
                }
            }
            c.reset_counters();
            for &l in &lines {
                c.access(l * 64, false);
            }
            c.misses
        };
        // Fully-associative (32-way) on an exactly-fitting set: zero misses.
        prop_assert_eq!(run(32), 0);
    }
}
