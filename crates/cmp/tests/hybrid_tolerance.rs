//! Certification of analytic hybrid stepping ([`bwpart_cmp::hybrid`]):
//! on every enforced partitioning scheme, a hybrid run's end-state
//! bandwidth shares and per-application IPCs must stay within the
//! configured epsilon of pure cycle-exact stepping — and the stepper must
//! actually jump, or the speedup claim is vacuous.

use bwpart_cmp::hybrid::within_tolerance;
use bwpart_cmp::{
    Access, CmpConfig, CmpSystem, CoreConfig, HybridConfig, PhaseConfig, Runner, ShareSource,
    SimOutcome, Workload,
};
use bwpart_core::prelude::*;
use bwpart_mc::Policy;

/// Deterministic two-region workload: every `stream_period`-th access
/// streams through memory, the rest hit an L1-resident hot set.
struct Synthetic {
    name: String,
    gap: u32,
    stream_period: u32,
    counter: u32,
    stream_next: u64,
    hot_next: u64,
}

impl Synthetic {
    fn new(name: &str, gap: u32, stream_period: u32) -> Self {
        Synthetic {
            name: name.into(),
            gap,
            stream_period,
            counter: 0,
            stream_next: 1 << 24,
            hot_next: 0,
        }
    }
}

impl Workload for Synthetic {
    fn next_access(&mut self) -> Access {
        self.counter += 1;
        if self.counter.is_multiple_of(self.stream_period) {
            let a = self.stream_next;
            self.stream_next += 64;
            Access {
                gap: self.gap,
                addr: a,
                is_write: false,
            }
        } else {
            let a = self.hot_next % (16 * 1024);
            self.hot_next += 64;
            Access {
                gap: self.gap,
                addr: a,
                is_write: false,
            }
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
}

// Distinct intensities per app: schemes with discrete decisions
// (PriorityApc's service order) are knife-edged between *identical* apps —
// either victim is an equally valid outcome, so per-app tolerance
// comparison needs ties broken.
fn mix() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Synthetic::new("heavy0", 4, 2)),
        Box::new(Synthetic::new("heavy1", 4, 3)),
        Box::new(Synthetic::new("light0", 4, 40)),
        Box::new(Synthetic::new("light1", 4, 50)),
    ]
}

fn run(scheme: PartitionScheme, hybrid: Option<HybridConfig>) -> SimOutcome {
    let r = Runner {
        cmp: CmpConfig {
            hybrid,
            ..CmpConfig::default()
        },
        phases: PhaseConfig::fast(),
    };
    r.run_scheme(
        scheme,
        mix(),
        vec![CoreConfig::default(); 4],
        ShareSource::OnlineProfile,
    )
}

#[test]
fn hybrid_is_within_certified_tolerance_on_all_enforced_schemes() {
    let hc = HybridConfig::default();
    for scheme in PartitionScheme::ENFORCED_SCHEMES {
        let exact = run(scheme, None);
        let hybrid = run(scheme, Some(hc));
        assert!(
            within_tolerance(&exact, &hybrid, hc.epsilon),
            "scheme {} outside epsilon {}: hybrid shares/IPCs {:?} vs exact {:?}",
            scheme.name(),
            hc.epsilon,
            hybrid
                .stats
                .iter()
                .map(|s| (s.mem_accesses, s.ipc()))
                .collect::<Vec<_>>(),
            exact
                .stats
                .iter()
                .map(|s| (s.mem_accesses, s.ipc()))
                .collect::<Vec<_>>(),
        );
    }
}

#[test]
fn hybrid_stepper_jumps_on_steady_saturation() {
    let cfg = CmpConfig {
        hybrid: Some(HybridConfig::default()),
        ..CmpConfig::default()
    };
    let mut sys = CmpSystem::new(&cfg, mix(), vec![CoreConfig::default(); 4], Policy::fcfs(4));
    sys.run(1_000_000);
    let (jumps, jumped) = sys.hybrid_jumped();
    assert!(jumps > 0, "steady saturation must trigger analytic jumps");
    assert!(
        jumped > 300_000,
        "jumps should cover a large fraction of the run, got {jumped}"
    );
    assert_eq!(sys.cycle(), 1_000_000, "hybrid must land exactly on target");
}

#[test]
fn hybrid_runs_are_deterministic() {
    let once = |_: u32| {
        let out = run(PartitionScheme::SquareRoot, Some(HybridConfig::default()));
        out.stats
            .iter()
            .map(|s| (s.instructions, s.mem_accesses))
            .collect::<Vec<_>>()
    };
    assert_eq!(once(0), once(1));
}

#[test]
fn hybrid_off_is_bit_identical_to_default_config() {
    // `hybrid: None` must leave the exact path untouched.
    let base = run(PartitionScheme::Equal, None);
    let again = run(PartitionScheme::Equal, None);
    let key = |o: &SimOutcome| -> Vec<(u64, u64)> {
        o.stats
            .iter()
            .map(|s| (s.instructions, s.mem_accesses))
            .collect()
    };
    assert_eq!(key(&base), key(&again));
}
