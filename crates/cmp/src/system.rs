//! The full CMP system: N cores with private hierarchies sharing one
//! memory controller and DRAM, advanced on a global CPU-cycle loop.

use bwpart_dram::DramConfig;
use bwpart_mc::{MemoryController, Policy};
use bwpart_obs::obs_count;
use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;
use crate::core::{Core, CoreConfig, IdleState, Workload};
use crate::hybrid::{HybridConfig, HybridSnap, HybridState};
use crate::llc::{LlcConfig, SharedLlc};
use crate::obs::CmpObsHooks;
use crate::stats::AppStats;

/// System-level configuration (Table II defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmpConfig {
    /// L1 D-cache geometry.
    pub l1: CacheConfig,
    /// Private unified L2 geometry.
    pub l2: CacheConfig,
    /// DRAM subsystem configuration.
    pub dram: DramConfig,
    /// log2 of each application's private physical region (default 29 =
    /// 512 MB × 16 apps = the 8 GB of Table II).
    pub region_bits: u32,
    /// Memory-controller scheduling-window depth (how far past each
    /// application's FIFO head the controller looks for an issuable
    /// request; 1 = strict per-app FIFO).
    pub sched_window: usize,
    /// Event-driven fast-forward: when every core is batchable (stalled on
    /// outstanding misses, serializing an L2 hit, or executing pure
    /// non-memory gap instructions), [`CmpSystem::run`] jumps straight to
    /// the next memory-system event instead of stepping cycle by cycle,
    /// bulk-applying each core's per-cycle counter effects.
    /// Counter-identical to per-cycle stepping by
    /// construction (see [`CmpSystem::run_per_cycle`] and the fast-forward
    /// tests); disable only to cross-check timings.
    pub fast_forward: bool,
    /// Fan the memory controller's per-tick candidate gather over the
    /// vendored thread pool
    /// ([`MemoryController::set_parallel_channels`]). Probes are read-only
    /// against committed DRAM state, so results are bit-identical to the
    /// sequential gather at any thread count.
    pub parallel_channels: bool,
    /// Analytic hybrid stepping (default `None` = off): jump over detected
    /// steady-state windows by crediting the paper-model counter rates
    /// instead of simulating every cycle. Tolerance-certified rather than
    /// bit-identical — see [`crate::hybrid`].
    pub hybrid: Option<HybridConfig>,
    /// Shared, way-partitioned LLC between the private L2s and the memory
    /// controller (default `None` = the paper's private-hierarchy Table II
    /// system, bit-identical to builds without this field). See
    /// [`crate::llc`].
    pub llc: Option<LlcConfig>,
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig {
            l1: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram: DramConfig::ddr2_400(),
            region_bits: 29,
            sched_window: 8,
            fast_forward: true,
            parallel_channels: false,
            hybrid: None,
            llc: None,
        }
    }
}

/// Counter snapshot used to delta a measurement window.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Global cycle of the snapshot.
    pub cycle: u64,
    /// Per-app instructions retired (lifetime).
    pub instructions: Vec<u64>,
    /// Per-app memory accesses served (lifetime).
    pub served: Vec<u64>,
    /// Per-app L1 misses (lifetime).
    pub l1_misses: Vec<u64>,
    /// Per-app L2 misses (lifetime).
    pub l2_misses: Vec<u64>,
}

/// The simulated chip multiprocessor.
pub struct CmpSystem {
    cores: Vec<Core>,
    mc: MemoryController,
    /// Shared way-partitioned LLC (None: private hierarchies only).
    llc: Option<SharedLlc>,
    cycle: u64,
    /// Lifetime retired-instruction counters (survive per-phase resets).
    lifetime_instr: Vec<u64>,
    /// Event-driven cycle skipping enabled (from [`CmpConfig`]).
    fast_forward: bool,
    /// Analytic hybrid stepping state (None: exact stepping only).
    hybrid: Option<Box<HybridState>>,
    /// Whether hybrid stepping is currently armed (see
    /// [`set_hybrid_armed`](Self::set_hybrid_armed)).
    hybrid_armed: bool,
    /// Pre-resolved observability handles (None: zero instrumentation).
    obs: Option<Box<CmpObsHooks>>,
}

impl CmpSystem {
    /// Assemble a system. `workloads[i]` runs on core `i` with parameters
    /// `core_cfgs[i]`; the memory controller starts with `policy`.
    ///
    /// # Panics
    /// Panics if the vectors disagree in length, are empty, or exceed the
    /// number of physical regions.
    pub fn new(
        cfg: &CmpConfig,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        policy: Policy,
    ) -> Self {
        let n = workloads.len();
        Self::new_with_l2(cfg, workloads, core_cfgs, vec![cfg.l2; n], policy)
    }

    /// Assemble a system with *per-core* L2 geometries. A strictly
    /// way-partitioned shared L2 (the paper's footnote 1) is equivalent to
    /// private L2 slices whose capacity scales with the assigned ways at a
    /// constant set count — which is exactly what this constructor models
    /// (see the `shared_l2` experiment).
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or are empty.
    pub fn new_with_l2(
        cfg: &CmpConfig,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        l2_cfgs: Vec<crate::cache::CacheConfig>,
        policy: Policy,
    ) -> Self {
        assert!(!workloads.is_empty(), "at least one core required");
        assert_eq!(workloads.len(), core_cfgs.len(), "one config per core");
        assert_eq!(workloads.len(), l2_cfgs.len(), "one L2 config per core");
        let n = workloads.len();
        let region = 1u64 << cfg.region_bits;
        let mut mc = MemoryController::new(cfg.dram.clone(), n, policy);
        mc.set_sched_window(cfg.sched_window);
        mc.set_parallel_channels(cfg.parallel_channels);
        let cores = workloads
            .into_iter()
            .zip(core_cfgs.into_iter().zip(l2_cfgs))
            .enumerate()
            .map(|(i, (w, (cc, l2)))| Core::new(i, cc, cfg.l1, l2, w, i as u64 * region, region))
            .collect();
        CmpSystem {
            cores,
            mc,
            llc: cfg.llc.map(|lc| SharedLlc::new(lc, n)),
            cycle: 0,
            lifetime_instr: vec![0; n],
            fast_forward: cfg.fast_forward,
            hybrid: cfg.hybrid.map(|hc| Box::new(HybridState::new(hc))),
            hybrid_armed: true,
            obs: None,
        }
    }

    /// Attach observability: resolve the cycle-loop hooks against
    /// `registry` and cascade to the memory controller and DRAM layers.
    /// Attaching never changes simulation results — only counters are
    /// recorded, and only in builds with the `bwpart-obs/trace` feature.
    pub fn attach_obs(&mut self, registry: &bwpart_obs::Registry) {
        self.obs = Some(Box::new(CmpObsHooks::resolve(registry)));
        self.mc.attach_obs(registry);
    }

    /// Publish derived gauges from the whole stack into `registry` (cold
    /// path; call at phase/epoch boundaries or after a run).
    pub fn publish_metrics(&self, registry: &bwpart_obs::Registry) {
        registry.gauge("cmp_cycle").set(self.cycle as f64);
        for (i, core) in self.cores.iter().enumerate() {
            registry
                .gauge(&format!("cmp_instructions{{app=\"{i}\"}}"))
                .set((self.lifetime_instr[i] + core.counters.retired) as f64);
        }
        self.mc.publish_metrics(registry, self.cycle);
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Current global cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The memory controller (policy swaps, profiling counters).
    pub fn mc(&self) -> &MemoryController {
        &self.mc
    }

    /// Mutable controller access.
    pub fn mc_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Core accessor (stats).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// The shared LLC, when configured.
    pub fn llc(&self) -> Option<&SharedLlc> {
        self.llc.as_ref()
    }

    /// Repartition the shared LLC's ways (`ways[i]` ways to application
    /// `i`). Takes effect at fill time only — resident lines drain by
    /// natural eviction, so the change is non-disruptive like programming
    /// a hardware way-mask register.
    ///
    /// # Panics
    /// Panics if the system has no LLC or the counts are inconsistent
    /// (see [`SharedLlc::set_ways`]).
    pub fn set_llc_ways(&mut self, ways: &[usize]) {
        self.llc
            .as_mut()
            // lint: allow(R1): misconfiguration — callers gate on llc()
            .expect("set_llc_ways on a system built without an LLC")
            .set_ways(ways);
    }

    /// Advance one CPU cycle.
    ///
    /// Step accounting (`cmp_steps_total`) is batched by the run loops —
    /// one counter add per [`run`](Self::run) / [`run_per_cycle`](Self::run_per_cycle)
    /// call instead of one atomic per cycle; a direct `step()` call is not
    /// individually counted.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.mc.tick(now);
        while let Some(c) = self.mc.pop_completion(now) {
            if !c.is_write {
                self.cores[c.app].complete(c.addr);
            }
        }
        for core in &mut self.cores {
            core.step_llc(now, &mut self.mc, self.llc.as_mut());
        }
        self.cycle += 1;
    }

    /// Run `cycles` CPU cycles.
    ///
    /// With [`CmpConfig::fast_forward`] enabled (the default), windows in
    /// which every core is *batchable* — fully stalled on outstanding
    /// misses, serializing an L2-hit penalty, or executing pure non-memory
    /// gap instructions — are crossed in one jump to the next event instead
    /// of cycle by cycle. A skipped window is *provably* counter-identical
    /// to stepping it:
    ///
    /// * each idle core's only per-cycle effect is a single counter update
    ///   ([`Core::apply_idle_cycles`] applies the batch equivalent), and a
    ///   pure-gap core retires exactly `width` instructions per cycle
    ///   without reaching memory ([`Core::apply_gap_cycles`] applies the
    ///   batch equivalent, bounded by [`Core::pure_gap_cycles`]),
    /// * the jump never crosses a DRAM scheduling tick while requests are
    ///   queued, a pending completion, the end of an L2 wait, or `cycles`'
    ///   end ([`MemoryController::next_event_cycle`] bounds the first two),
    /// * no core enqueues requests while idle, so the controller sees the
    ///   identical request stream at identical cycles.
    ///
    /// [`run_per_cycle`](Self::run_per_cycle) is the always-stepping
    /// reference; the `fast_forward` integration tests and the debug-mode
    /// contracts in the skip path hold the two bit-identical.
    ///
    /// With [`CmpConfig::hybrid`] set, runs switch to analytic hybrid
    /// stepping ([`run_hybrid`](Self::run_hybrid)) — tolerance-certified
    /// rather than bit-identical; see [`crate::hybrid`].
    pub fn run(&mut self, cycles: u64) {
        if self.hybrid.is_some() && self.hybrid_armed {
            self.run_hybrid(cycles);
        } else {
            self.run_exact(cycles);
        }
    }

    /// Arm or disarm hybrid stepping without discarding its state. The
    /// [`Runner`](crate::runner::Runner) disarms the stepper for the
    /// warm-up and profiling phases — keeping online `APC_alone`/`API`
    /// estimation (and therefore the derived partition) cycle-exact — and
    /// arms it only for measurement, where steady state dominates. No-op
    /// when the system was built without [`CmpConfig::hybrid`].
    pub fn set_hybrid_armed(&mut self, on: bool) {
        self.hybrid_armed = on;
    }

    /// The cycle-exact run loop (event-driven fast-forward included);
    /// counter-identical to [`run_per_cycle`](Self::run_per_cycle).
    fn run_exact(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        let mut stepped = 0u64;
        let mut jumps = 0u64;
        let mut skipped = 0u64;
        while self.cycle < end {
            if self.fast_forward {
                if let Some(target) = self.skip_target(end) {
                    skipped += self.fast_forward_to(target);
                    jumps += 1;
                    continue;
                }
            }
            self.step();
            stepped += 1;
        }
        obs_count!(self.obs, steps, stepped);
        obs_count!(self.obs, ff_jumps, jumps);
        obs_count!(self.obs, ff_skipped_cycles, skipped);
    }

    /// Analytic hybrid stepping ([`crate::hybrid`]): run cycle-exact
    /// observation windows; once the detector certifies steady state, jump
    /// `jump_windows × window` cycles by crediting the last window's
    /// counter deltas (exact integer scaling) and resume exact stepping.
    /// Each `run` call is treated as a phase boundary (detector history is
    /// cleared), and a jump is taken only if a full observation window
    /// still fits before `cycles` end, so every run finishes on
    /// exactly-simulated state.
    fn run_hybrid(&mut self, cycles: u64) {
        // lint: allow(R1): run() dispatches here only when hybrid is Some
        let mut h = self.hybrid.take().expect("hybrid state present");
        h.reset_phase();
        let end = self.cycle + cycles;
        let mut jumps = 0u64;
        let mut jumped = 0u64;
        while self.cycle < end {
            let remaining = end - self.cycle;
            let window = h.cfg().window;
            // Jump up to `jump_windows` windows, clipped so at least one
            // whole exact window still fits before `end` — the run must
            // finish on freshly simulated micro-state, never straight off
            // an extrapolation.
            let k = (remaining.saturating_sub(window) / window).min(h.cfg().jump_windows);
            if k >= 1 && h.steady() {
                // Credit k × the history-mean window delta.
                let jump = window * k;
                let d = h.jump_delta(k);
                for (i, core) in self.cores.iter_mut().enumerate() {
                    core.counters.retired += d.retired[i];
                    core.counters.l1_misses += d.l1[i];
                    core.counters.l2_misses += d.l2[i];
                }
                self.mc
                    .analytic_jump(&d.served, &d.latency, &d.interference, d.busy, d.stalled);
                self.cycle += jump;
                h.note_jump(jump);
                jumps += 1;
                jumped += jump;
                continue;
            }
            let w = h.cfg().window.min(remaining);
            h.begin_window(self.hybrid_snap());
            self.run_exact(w);
            if w == h.cfg().window {
                let snap = self.hybrid_snap();
                h.end_window(&snap);
            } else {
                h.discard_window();
            }
        }
        self.hybrid = Some(h);
        obs_count!(self.obs, ff_jumps, jumps);
        obs_count!(self.obs, ff_skipped_cycles, jumped);
    }

    /// Counter snapshot bracketing a hybrid observation window.
    fn hybrid_snap(&self) -> HybridSnap {
        let n = self.cores.len();
        HybridSnap {
            served: self.mc.stats().served.clone(),
            latency: self.mc.stats().latency_sum.clone(),
            interference: (0..n).map(|i| self.mc.interference_cycles(i)).collect(),
            retired: self.cores.iter().map(|c| c.counters.retired).collect(),
            l1: self.cores.iter().map(|c| c.counters.l1_misses).collect(),
            l2: self.cores.iter().map(|c| c.counters.l2_misses).collect(),
            busy: self.mc.stats().busy_ticks,
            stalled: self.mc.stats().stalled_ticks,
            row_hits: self.mc.dram().stats().row_hits,
            dram_served: self.mc.dram().stats().served,
        }
    }

    /// `(jumps, cycles)` the hybrid stepper has credited analytically so
    /// far; `(0, 0)` when hybrid stepping is off.
    pub fn hybrid_jumped(&self) -> (u64, u64) {
        self.hybrid
            .as_ref()
            .map_or((0, 0), |h| (h.jumps(), h.jumped_cycles()))
    }

    /// Run `cycles` CPU cycles strictly one [`step`](Self::step) at a time,
    /// regardless of [`CmpConfig::fast_forward`] — the reference behaviour
    /// the event-driven path must reproduce exactly.
    pub fn run_per_cycle(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            self.step();
        }
        obs_count!(self.obs, steps, cycles);
    }

    /// If every core's next cycles are batchable at the current cycle, the
    /// cycle (at most `end`) to jump to; `None` when any core is about to
    /// reach a memory instruction or an event is due right now.
    ///
    /// Batchable means each core is either idle (`Blocked`, or inside an
    /// `L2Wait` whose remaining cycles bound the jump) or executing *pure
    /// gap* — retiring `width` non-memory instructions per cycle without
    /// any chance of touching the memory system ([`Core::pure_gap_cycles`]
    /// bounds the jump so the cycle that reaches the memory instruction is
    /// still simulated by [`step`](Self::step)).
    fn skip_target(&self, end: u64) -> Option<u64> {
        let now = self.cycle;
        let mut target = end;
        for core in &self.cores {
            match core.idle_state() {
                IdleState::Executing => {
                    let pure = core.pure_gap_cycles();
                    if pure == 0 {
                        return None;
                    }
                    target = target.min(now + pure);
                }
                // The wait's last cycle is `now + w - 1`; at `now + w` the
                // core executes again, which `step` must simulate.
                IdleState::L2Wait(w) => target = target.min(now + u64::from(w)),
                IdleState::Blocked => {}
            }
        }
        if let Some(event) = self.mc.next_event_cycle(now) {
            target = target.min(event);
        }
        (target > now).then_some(target)
    }

    /// Jump from the current cycle to `target`, applying each core's batch
    /// compensation — idle-counter updates for blocked/waiting cores, bulk
    /// gap retirement for pure-gap cores. Debug contracts re-check the
    /// soundness conditions [`skip_target`](Self::skip_target) established.
    /// Returns the number of cycles skipped (the caller batches jump
    /// accounting into one counter add per [`run`](Self::run) call).
    fn fast_forward_to(&mut self, target: u64) -> u64 {
        let delta = target - self.cycle;
        bwpart_core::invariant!(delta > 0, "fast-forward must move time");
        bwpart_core::invariant!(
            self.mc
                .next_event_cycle(self.cycle)
                .is_none_or(|e| e >= target),
            "fast-forward would jump a memory-system event"
        );
        for core in &mut self.cores {
            if matches!(core.idle_state(), IdleState::Executing) {
                core.apply_gap_cycles(delta);
            } else {
                core.apply_idle_cycles(delta);
            }
        }
        self.cycle = target;
        delta
    }

    /// Snapshot lifetime counters (for windowed deltas).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Fill `snap` with the current lifetime counters, reusing its buffers.
    /// Equivalent to [`snapshot`](Self::snapshot) without the four vector
    /// allocations — callers that snapshot in a loop (epoch repartitioning,
    /// ablation sweeps) keep one scratch `Snapshot` per window edge.
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        snap.cycle = self.cycle;
        snap.instructions.clear();
        snap.instructions.extend(
            self.cores
                .iter()
                .enumerate()
                .map(|(i, c)| self.lifetime_instr[i] + c.counters.retired),
        );
        snap.served.clear();
        snap.served.extend_from_slice(&self.mc.stats().served);
        snap.l1_misses.clear();
        snap.l1_misses
            .extend(self.cores.iter().map(|c| c.counters.l1_misses));
        snap.l2_misses.clear();
        snap.l2_misses
            .extend(self.cores.iter().map(|c| c.counters.l2_misses));
    }

    /// Per-application stats for the window between two snapshots.
    pub fn window_stats(&self, start: &Snapshot, end: &Snapshot) -> Vec<AppStats> {
        let cycles = end.cycle - start.cycle;
        (0..self.cores.len())
            .map(|i| AppStats {
                name: self.cores[i].workload_name().to_string(),
                instructions: end.instructions[i] - start.instructions[i],
                mem_accesses: end.served[i] - start.served[i],
                cycles,
                l1_misses: end.l1_misses[i].saturating_sub(start.l1_misses[i]),
                l2_misses: end.l2_misses[i].saturating_sub(start.l2_misses[i]),
                interference_cycles: self.mc.interference_cycles(i),
            })
            .collect()
    }

    /// Reset per-phase core counters while preserving lifetime instruction
    /// counts (cache/DRAM state is untouched; LLC hit/miss counters reset
    /// like the private-cache counters, LLC contents stay warm).
    pub fn reset_phase_counters(&mut self) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            self.lifetime_instr[i] += core.counters.retired;
            core.reset_counters();
        }
        if let Some(llc) = &mut self.llc {
            llc.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Access;

    struct Uniform {
        gap: u32,
        next: u64,
        stride: u64,
    }
    impl Workload for Uniform {
        fn next_access(&mut self) -> Access {
            let a = self.next;
            self.next += self.stride;
            Access {
                gap: self.gap,
                addr: a,
                is_write: false,
            }
        }
        fn name(&self) -> &str {
            "uniform"
        }
    }

    fn mk(n: usize, gap: u32) -> CmpSystem {
        let cfg = CmpConfig::default();
        let workloads: Vec<Box<dyn Workload>> = (0..n)
            .map(|_| {
                Box::new(Uniform {
                    gap,
                    next: 0,
                    stride: 64,
                }) as Box<dyn Workload>
            })
            .collect();
        let cfgs = vec![CoreConfig::default(); n];
        CmpSystem::new(&cfg, workloads, cfgs, Policy::fcfs(n))
    }

    #[test]
    fn identical_streaming_cores_split_bandwidth_roughly_evenly() {
        let mut sys = mk(4, 10);
        sys.run(300_000);
        let start = Snapshot {
            cycle: 0,
            instructions: vec![0; 4],
            served: vec![0; 4],
            l1_misses: vec![0; 4],
            l2_misses: vec![0; 4],
        };
        let end = sys.snapshot();
        let stats = sys.window_stats(&start, &end);
        let total: f64 = stats.iter().map(|s| s.apc()).sum();
        // Saturated DDR2-400: ~0.01 APC in total.
        assert!(total > 0.008, "total APC {total}");
        for s in &stats {
            let share = s.apc() / total;
            assert!((share - 0.25).abs() < 0.05, "share {share}");
        }
        // Eq. 1 holds per app.
        for s in &stats {
            assert!((s.ipc() - s.apc() / s.api()).abs() / s.ipc() < 0.05);
        }
    }

    #[test]
    fn snapshots_delta_correctly() {
        let mut sys = mk(2, 50);
        sys.run(50_000);
        let a = sys.snapshot();
        sys.run(50_000);
        let b = sys.snapshot();
        let stats = sys.window_stats(&a, &b);
        assert_eq!(stats[0].cycles, 50_000);
        assert!(stats[0].instructions > 0);
        assert!(stats[0].mem_accesses > 0);
    }

    #[test]
    fn phase_reset_preserves_lifetime_instructions() {
        let mut sys = mk(1, 50);
        sys.run(20_000);
        let before = sys.snapshot();
        sys.reset_phase_counters();
        sys.run(20_000);
        let after = sys.snapshot();
        assert!(after.instructions[0] > before.instructions[0]);
        // The delta is just the second window.
        let delta = after.instructions[0] - before.instructions[0];
        assert_eq!(delta, sys.core(0).counters.retired);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let mut sys = mk(3, 20);
            sys.run(100_000);
            let s = sys.snapshot();
            (s.instructions, s.served)
        };
        assert_eq!(run(), run());
    }

    /// Everything observable about a system, for bit-identity assertions.
    fn digest(sys: &CmpSystem) -> (u64, Snapshot, Vec<crate::core::CoreCounters>, McDigest) {
        (
            sys.cycle(),
            sys.snapshot(),
            (0..sys.cores())
                .map(|i| sys.core(i).counters.clone())
                .collect(),
            (
                sys.mc().stats().clone(),
                (0..sys.cores())
                    .map(|i| sys.mc().interference_cycles(i))
                    .collect(),
                sys.mc().dram().stats().clone(),
            ),
        )
    }
    type McDigest = (bwpart_mc::McStats, Vec<u64>, bwpart_dram::DramStats);

    #[test]
    fn fast_forward_is_counter_identical_to_per_cycle() {
        // Saturating streams: long all-blocked windows, so the skip path is
        // exercised heavily. gap 20 leaves execute bursts between stalls.
        for gap in [5, 20, 80] {
            let mut skipped = mk(3, gap);
            skipped.run(150_000);
            let mut stepped = mk(3, gap);
            stepped.run_per_cycle(150_000);
            assert_eq!(
                digest(&skipped),
                digest(&stepped),
                "fast-forward diverged at gap {gap}"
            );
        }
    }

    #[test]
    fn fast_forward_equivalence_survives_chunked_runs() {
        // Phase boundaries land mid-skip-window; resuming must not change
        // anything relative to one uninterrupted run.
        let mut chunked = mk(2, 10);
        for chunk in [1_000, 37, 99_963, 29_000] {
            chunked.run(chunk);
        }
        let mut whole = mk(2, 10);
        whole.run(130_000);
        assert_eq!(digest(&chunked), digest(&whole));
    }

    #[test]
    fn fast_forward_disabled_still_matches() {
        let cfg = CmpConfig {
            fast_forward: false,
            ..CmpConfig::default()
        };
        let workloads: Vec<Box<dyn Workload>> = (0..2)
            .map(|_| {
                Box::new(Uniform {
                    gap: 15,
                    next: 0,
                    stride: 64,
                }) as Box<dyn Workload>
            })
            .collect();
        let mut off = CmpSystem::new(
            &cfg,
            workloads,
            vec![CoreConfig::default(); 2],
            Policy::fcfs(2),
        );
        off.run(60_000);
        let mut on = mk(2, 15);
        on.run(60_000);
        assert_eq!(digest(&off), digest(&on));
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_matches_snapshot() {
        let mut sys = mk(2, 30);
        sys.run(40_000);
        let fresh = sys.snapshot();
        // Reuse a dirty, differently-sized scratch snapshot.
        let mut scratch = Snapshot {
            cycle: 999,
            instructions: vec![1, 2, 3, 4, 5],
            served: vec![9],
            l1_misses: vec![],
            l2_misses: vec![7, 7],
        };
        sys.snapshot_into(&mut scratch);
        assert_eq!(scratch, fresh);
        let cap = scratch.instructions.capacity();
        sys.run(10_000);
        sys.snapshot_into(&mut scratch);
        assert_eq!(scratch, sys.snapshot());
        assert_eq!(
            scratch.instructions.capacity(),
            cap,
            "refill must not reallocate"
        );
    }

    #[test]
    fn attached_observability_never_changes_results() {
        let reg = bwpart_obs::Registry::new();
        let mut observed = mk(3, 20);
        observed.attach_obs(&reg);
        observed.run(120_000);
        let mut plain = mk(3, 20);
        plain.run(120_000);
        assert_eq!(digest(&observed), digest(&plain));
        observed.publish_metrics(&reg);
        let snap = reg.snapshot();
        assert!(
            snap.gauges.iter().any(|g| g.name == "cmp_cycle"),
            "publish must export the cycle gauge"
        );
        if bwpart_obs::trace_enabled() {
            // Fast-forward dominates a saturating mix: jumps + steps must
            // together account for every simulated cycle.
            let c = |n: &str| reg.counter(n).get();
            assert_eq!(
                c("cmp_steps_total") + c("cmp_ff_skipped_cycles_total"),
                120_000
            );
            assert!(c("cmp_ff_jumps_total") > 0, "skip path never taken");
        }
    }

    /// Cyclic sweep over a fixed footprint (a tunable working set).
    struct Cyclic {
        gap: u32,
        next: u64,
        footprint: u64,
    }
    impl Workload for Cyclic {
        fn next_access(&mut self) -> Access {
            let a = self.next;
            self.next = (self.next + 64) % self.footprint;
            Access {
                gap: self.gap,
                addr: a,
                is_write: false,
            }
        }
        fn name(&self) -> &str {
            "cyclic"
        }
    }

    fn mk_llc(workloads: Vec<Box<dyn Workload>>, llc: Option<LlcConfig>) -> CmpSystem {
        let cfg = CmpConfig {
            llc,
            ..CmpConfig::default()
        };
        let n = workloads.len();
        CmpSystem::new(
            &cfg,
            workloads,
            vec![CoreConfig::default(); n],
            Policy::fcfs(n),
        )
    }

    /// A 1 MB, 16-way LLC: small enough that a test can warm it quickly at
    /// DDR2-400 fill rates.
    fn small_llc() -> LlcConfig {
        LlcConfig {
            cache: CacheConfig {
                capacity: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            hit_penalty: 12,
        }
    }

    #[test]
    fn llc_absorbs_l2_miss_traffic() {
        // 320 KB cyclic working set: overflows the 256 KB L2 (cyclic + LRU
        // thrashes), fits the 1 MB LLC. Once warm, demand reads stop
        // reaching DRAM entirely.
        let wl = || -> Vec<Box<dyn Workload>> {
            vec![Box::new(Cyclic {
                gap: 4,
                next: 0,
                footprint: 320 * 1024,
            })]
        };
        let mut with = mk_llc(wl(), Some(small_llc()));
        with.run(900_000);
        with.reset_phase_counters();
        with.run(200_000);
        assert_eq!(
            with.core(0).counters.mem_reads,
            0,
            "warm LLC-resident set must produce no DRAM reads"
        );
        assert!(with.llc().unwrap().counters(0).hits > 0);
        // Without the LLC the same workload keeps streaming from DRAM.
        let mut without = mk_llc(wl(), None);
        without.run(900_000);
        without.reset_phase_counters();
        without.run(200_000);
        assert!(without.core(0).counters.mem_reads > 0);
    }

    #[test]
    fn repartitioning_ways_shifts_llc_behaviour() {
        // App 0: 320 KB working set, LLC-sensitive. App 1: streaming hog.
        // With 2 ways (128 KB) app 0 thrashes; repartitioned mid-run to
        // 14 ways (896 KB) it warms its expanded share and stops missing.
        let wl: Vec<Box<dyn Workload>> = vec![
            Box::new(Cyclic {
                gap: 4,
                next: 0,
                footprint: 320 * 1024,
            }),
            Box::new(Uniform {
                gap: 4,
                next: 0,
                stride: 64,
            }),
        ];
        let mut sys = mk_llc(wl, Some(small_llc()));
        sys.set_llc_ways(&[2, 14]);
        sys.run(600_000);
        sys.llc.as_mut().unwrap().reset_counters();
        sys.run(300_000);
        let tight = sys.llc().unwrap().counters(0).clone();
        assert!(
            tight.miss_ratio() > 0.8,
            "128 KB share must thrash a 320 KB cyclic set: {}",
            tight.miss_ratio()
        );
        // Mid-run repartition: app 0's own fills populate the new ways.
        sys.set_llc_ways(&[14, 2]);
        assert_eq!(sys.llc().unwrap().way_allocation(), &[14, 2]);
        sys.run(1_500_000);
        sys.llc.as_mut().unwrap().reset_counters();
        sys.run(300_000);
        let wide = sys.llc().unwrap().counters(0).clone();
        assert!(
            wide.miss_ratio() < 0.2,
            "896 KB share must absorb the set: {} -> {}",
            tight.miss_ratio(),
            wide.miss_ratio()
        );
    }

    #[test]
    fn llc_fast_forward_is_counter_identical_to_per_cycle() {
        let wl = || -> Vec<Box<dyn Workload>> {
            vec![
                Box::new(Cyclic {
                    gap: 10,
                    next: 0,
                    footprint: 512 * 1024,
                }),
                Box::new(Uniform {
                    gap: 10,
                    next: 0,
                    stride: 64,
                }),
            ]
        };
        let mut skipped = mk_llc(wl(), Some(LlcConfig::default()));
        skipped.run(150_000);
        let mut stepped = mk_llc(wl(), Some(LlcConfig::default()));
        stepped.run_per_cycle(150_000);
        assert_eq!(digest(&skipped), digest(&stepped));
        assert_eq!(
            skipped.llc().unwrap().counters(0),
            stepped.llc().unwrap().counters(0)
        );
        assert_eq!(
            skipped.llc().unwrap().counters(1),
            stepped.llc().unwrap().counters(1)
        );
    }

    #[test]
    #[should_panic(expected = "without an LLC")]
    fn set_llc_ways_without_llc_panics() {
        let mut sys = mk(1, 10);
        sys.set_llc_ways(&[16]);
    }

    #[test]
    #[should_panic(expected = "one config per core")]
    fn mismatched_configs_panic() {
        let cfg = CmpConfig::default();
        let w: Vec<Box<dyn Workload>> = vec![Box::new(Uniform {
            gap: 1,
            next: 0,
            stride: 64,
        })];
        let _ = CmpSystem::new(&cfg, w, vec![], Policy::fcfs(1));
    }
}
