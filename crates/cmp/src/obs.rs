//! Observability wiring for the CMP simulator.
//!
//! [`CmpObsHooks`] carries the pre-resolved handles the global cycle loop
//! touches through the zero-cost `obs_*!` macros (step counts and
//! event-driven fast-forward accounting); [`RunObserver`] bundles the
//! registry and optional tracer a caller hands to
//! [`crate::Runner::run_scheme_traced`] to collect metrics and a
//! Chrome-trace timeline from one simulation.

use bwpart_obs::{Counter, Registry, Tracer};

/// Pre-resolved metric handles for [`crate::CmpSystem`]'s cycle loop.
#[derive(Debug, Clone)]
pub struct CmpObsHooks {
    /// Per-cycle steps actually simulated (`cmp_steps_total`).
    pub steps: Counter,
    /// Event-driven fast-forward jumps taken (`cmp_ff_jumps_total`).
    pub ff_jumps: Counter,
    /// Cycles crossed by fast-forward jumps instead of stepping
    /// (`cmp_ff_skipped_cycles_total`).
    pub ff_skipped_cycles: Counter,
}

impl CmpObsHooks {
    /// Resolve every handle against `registry` (cold; once at attach).
    pub fn resolve(registry: &Registry) -> Self {
        CmpObsHooks {
            steps: registry.counter("cmp_steps_total"),
            ff_jumps: registry.counter("cmp_ff_jumps_total"),
            ff_skipped_cycles: registry.counter("cmp_ff_skipped_cycles_total"),
        }
    }
}

/// Everything a caller supplies to observe one simulation run: a metrics
/// [`Registry`] the whole system stack attaches to, and optionally a
/// [`Tracer`] collecting the cycle-domain timeline (epoch windows,
/// per-app share time-series) plus wall-clock phase spans.
#[derive(Debug, Clone, Default)]
pub struct RunObserver {
    /// Registry the system's hooks resolve against.
    pub registry: Registry,
    /// Optional event tracer (None: metrics only).
    pub tracer: Option<Tracer>,
}

impl RunObserver {
    /// Metrics-only observer.
    pub fn new() -> Self {
        RunObserver::default()
    }

    /// Observer that also traces, into a ring of `capacity` events.
    pub fn with_tracer(capacity: usize) -> Self {
        RunObserver {
            registry: Registry::new(),
            tracer: Some(Tracer::new(capacity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_share_registry_cells() {
        let reg = Registry::new();
        let hooks = CmpObsHooks::resolve(&reg);
        hooks.ff_skipped_cycles.add(42);
        assert_eq!(reg.counter("cmp_ff_skipped_cycles_total").get(), 42);
    }

    #[test]
    fn observer_constructors() {
        assert!(RunObserver::new().tracer.is_none());
        let o = RunObserver::with_tracer(16);
        // lint: allow(R1): constructed Some on the line above
        o.tracer.as_ref().unwrap().instant_at("x", 0, 1);
        assert_eq!(o.tracer.as_ref().map(Tracer::len), Some(1));
    }
}
