//! Set-associative caches with true LRU, write-back/write-allocate.
//!
//! Table II hierarchy: private L1 I/D 32 KB 2-way and a private unified L2
//! of 256 KB 8-way, 64 B lines. The simulator models the D-side hierarchy
//! (the synthetic workloads' instruction footprints are assumed resident,
//! as SPEC CPU2006 instruction working sets largely are).

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Table II L1 D-cache: 32 KB, 2-way, 64 B lines.
    pub fn l1d() -> Self {
        CacheConfig {
            capacity: 32 * 1024,
            ways: 2,
            line_bytes: 64,
        }
    }

    /// Table II private unified L2: 256 KB, 8-way, 64 B lines.
    pub fn l2() -> Self {
        CacheConfig {
            capacity: 256 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.ways * self.line_bytes)
    }

    /// Check geometry consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.capacity == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err("cache fields must be non-zero".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if !self.capacity.is_multiple_of(self.ways * self.line_bytes) {
            return Err("capacity must divide evenly into sets".into());
        }
        if !self.sets().is_power_of_two() {
            return Err("set count must be a power of two".into());
        }
        Ok(())
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; if filling evicted a dirty line, its address.
    Miss {
        /// Writeback address of the evicted dirty victim, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (higher = more recent).
    lru: u64,
}

/// One cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    clock: u64,
    set_mask: u64,
    line_shift: u32,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
    /// Dirty evictions produced.
    pub writebacks: u64,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            // lint: allow(R1): documented panic on invalid config (see # Panics)
            panic!("invalid cache configuration: {e}");
        }
        let sets = cfg.sets();
        Cache {
            cfg,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0,
                };
                sets * cfg.ways
            ],
            clock: 0,
            set_mask: (sets - 1) as u64,
            line_shift: cfg.line_bytes.trailing_zeros(),
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        (set, tag)
    }

    /// Access `addr`. On a miss the line is filled (write-allocate) and the
    /// LRU victim evicted; a dirty victim's address is returned for the
    /// writeback. `is_write` marks the (new or present) line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.access_masked(addr, is_write, u64::MAX)
    }

    /// Access `addr` with fill-time way partitioning: the hit probe covers
    /// *all* ways (lines an application filled before a repartition keep
    /// hitting and drain by natural eviction — no teleporting), but on a
    /// miss the victim is chosen only among the ways set in `way_mask`
    /// (bit `i` enables way `i`). An empty or out-of-range mask behaves as
    /// a full mask. [`Cache::access`] is the unmasked special case.
    pub fn access_masked(&mut self, addr: u64, is_write: bool, way_mask: u64) -> CacheOutcome {
        self.clock += 1;
        let (set, tag) = self.set_of(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.hits += 1;
            return CacheOutcome::Hit;
        }

        self.misses += 1;
        // Victim: an invalid masked way, else the LRU masked way. A mask
        // with no in-range bits would leave no victim; treat it as full.
        let in_range = way_mask & (u64::MAX >> (64 - self.cfg.ways.min(64) as u32));
        let mask = if in_range == 0 { u64::MAX } else { way_mask };
        let victim = ways
            .iter()
            .enumerate()
            .filter(|&(i, _)| i >= 64 || mask & (1u64 << i) != 0)
            .min_by_key(|&(_, l)| (l.valid, l.lru))
            .map(|(i, _)| i)
            // lint: allow(R1): the mask is never empty after the fixup above
            .expect("mask selects at least one way");
        let v = &mut ways[victim];
        let writeback = if v.valid && v.dirty {
            self.writebacks += 1;
            // Reconstruct the victim's address.
            let line_addr = (v.tag << self.set_mask.count_ones()) | set as u64;
            Some(line_addr << self.line_shift)
        } else {
            None
        };
        *v = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.clock,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Probe without modifying state (diagnostics).
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_of(addr);
        let base = set * self.cfg.ways;
        self.lines[base..base + self.cfg.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Number of valid lines (diagnostics / capacity invariants).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Miss rate so far.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Reset counters only (state persists across phase boundaries).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(matches!(c.access(0x100, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.access(0x100, false), CacheOutcome::Hit);
        assert!(c.contains(0x100));
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = small();
        c.access(0x100, false);
        assert_eq!(c.access(0x13F, false), CacheOutcome::Hit);
        assert!(matches!(c.access(0x140, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set stride is 4 sets × 64 B = 256 B; these three map to set 0.
        c.access(0x000, false);
        c.access(0x400, false);
        c.access(0x000, false); // touch: 0x000 is MRU
        c.access(0x800, false); // evicts 0x400
        assert!(c.contains(0x000));
        assert!(!c.contains(0x400));
        assert!(c.contains(0x800));
    }

    #[test]
    fn dirty_eviction_produces_writeback_address() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x400, false);
        let out = c.access(0x800, false); // evicts dirty 0x000
        match out {
            CacheOutcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb, 0x000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x400, false);
        let out = c.access(0x800, false);
        assert!(matches!(out, CacheOutcome::Miss { writeback: None }));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0x000, false); // clean fill
        c.access(0x000, true); // dirty via write hit
        c.access(0x400, false);
        let out = c.access(0x800, false);
        assert!(matches!(out, CacheOutcome::Miss { writeback: Some(0) }));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = small();
        for i in 0..100u64 {
            c.access(i * 64, i % 3 == 0);
        }
        assert!(c.valid_lines() <= 8);
        assert_eq!(c.valid_lines(), 8); // fully warm
    }

    #[test]
    fn working_set_within_capacity_stops_missing() {
        let mut c = Cache::new(CacheConfig::l1d());
        // 16 KB working set in a 32 KB cache: after one pass, all hits.
        let lines = 16 * 1024 / 64;
        for i in 0..lines as u64 {
            c.access(i * 64, false);
        }
        c.reset_counters();
        for i in 0..lines as u64 {
            c.access(i * 64, false);
        }
        assert_eq!(c.misses, 0);
        assert_eq!(c.hits, lines as u64);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_with_lru() {
        let mut c = small(); // 512 B
                             // Cyclic sweep over 1 KB: LRU yields 0% hits on a cyclic pattern
                             // larger than capacity.
        for _round in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64, false);
            }
        }
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn table2_geometries_validate() {
        assert!(CacheConfig::l1d().validate().is_ok());
        assert!(CacheConfig::l2().validate().is_ok());
        assert_eq!(CacheConfig::l1d().sets(), 256);
        assert_eq!(CacheConfig::l2().sets(), 512);
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            capacity: 500,
            ways: 2,
            line_bytes: 64,
        });
    }

    #[test]
    fn masked_fill_restricts_victim_to_single_way() {
        let mut c = small();
        // Fill both ways of set 0, then restrict fills to way 1 only: the
        // line in way 0 becomes unevictable and survives any fill storm.
        c.access_masked(0x000, false, 0b01); // way 0
        c.access_masked(0x400, false, 0b10); // way 1
        for i in 2..10u64 {
            c.access_masked(i * 0x400, false, 0b10);
        }
        assert!(c.contains(0x000), "way 0's line must be pinned by the mask");
        assert!(c.contains(9 * 0x400));
    }

    #[test]
    fn hit_probe_ignores_the_mask() {
        let mut c = small();
        c.access_masked(0x000, false, 0b01); // resident in way 0
                                             // A later access under a disjoint mask still hits — lines filled
                                             // before a repartition drain naturally instead of teleporting.
        assert_eq!(c.access_masked(0x000, false, 0b10), CacheOutcome::Hit);
    }

    #[test]
    fn empty_or_out_of_range_mask_acts_as_full() {
        let mut c = small(); // 2 ways: only bits 0-1 are in range
        assert!(matches!(
            c.access_masked(0x000, false, 0),
            CacheOutcome::Miss { .. }
        ));
        // Bits beyond the associativity alone = effectively empty.
        assert!(matches!(
            c.access_masked(0x400, false, 0b100),
            CacheOutcome::Miss { .. }
        ));
        // Both fills landed (full-mask fallback), so both lines are live.
        assert!(c.contains(0x000));
        assert!(c.contains(0x400));
    }

    #[test]
    fn unmasked_access_equals_full_mask() {
        let mut a = small();
        let mut b = small();
        for i in 0..50u64 {
            let addr = (i * 7919) % 4096 * 64;
            assert_eq!(
                a.access(addr, i % 3 == 0),
                b.access_masked(addr, i % 3 == 0, u64::MAX)
            );
        }
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.misses, b.misses);
        assert_eq!(a.writebacks, b.writebacks);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x080, false);
        assert!((c.miss_rate() - 0.75).abs() < 1e-12);
    }
}
