//! Per-application statistics derived from a measurement window.

use serde::{Deserialize, Serialize};

/// Rates and counts for one application over one measurement phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppStats {
    /// Workload name.
    pub name: String,
    /// Instructions retired in the window.
    pub instructions: u64,
    /// Memory accesses served by the controller (reads + writebacks).
    pub mem_accesses: u64,
    /// Window length in CPU cycles.
    pub cycles: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Interference cycles charged (Section IV-C).
    pub interference_cycles: u64,
}

impl AppStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Memory accesses per cycle (the model's bandwidth unit).
    pub fn apc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / self.cycles as f64
        }
    }

    /// Memory accesses per instruction.
    pub fn api(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_accesses as f64 / self.instructions as f64
        }
    }

    /// Accesses per kilo-instruction (Table III's `APKI` unit).
    pub fn apki(&self) -> f64 {
        self.api() * 1000.0
    }

    /// Accesses per kilo-cycle (Table III's `APKC` unit).
    pub fn apkc(&self) -> f64 {
        self.apc() * 1000.0
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn stats() -> AppStats {
        AppStats {
            name: "lbm".into(),
            instructions: 200_000,
            mem_accesses: 10_000,
            cycles: 1_000_000,
            l1_misses: 12_000,
            l2_misses: 9_000,
            interference_cycles: 0,
        }
    }

    #[test]
    fn derived_rates() {
        let s = stats();
        assert!((s.ipc() - 0.2).abs() < 1e-12);
        assert!((s.apc() - 0.01).abs() < 1e-12);
        assert!((s.api() - 0.05).abs() < 1e-12);
        assert!((s.apki() - 50.0).abs() < 1e-9);
        assert!((s.apkc() - 10.0).abs() < 1e-9);
        // Eq. 1 consistency: IPC == APC / API.
        assert!((s.ipc() - s.apc() / s.api()).abs() < 1e-12);
    }

    #[test]
    fn zero_windows_do_not_divide_by_zero() {
        let mut s = stats();
        s.cycles = 0;
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.apc(), 0.0);
        s.instructions = 0;
        assert_eq!(s.api(), 0.0);
    }
}
