//! Analytic hybrid stepping: detect steady state and jump over it.
//!
//! The paper's closed-form model (Eq. 1–8) says that once a workload mix
//! reaches a bandwidth steady state, every per-cycle rate the evaluation
//! cares about — APC, IPC via `IPC = APC/API`, interference charge — is
//! constant. Cycle-accurate simulation of such a window rederives the same
//! rates over and over. The hybrid stepper exploits that: it observes a
//! short history of fixed-length windows, and when every application's
//! access and retirement rates (and the global row-hit rate) have settled
//! within a configured band, it *jumps* — crediting `jump_windows` times
//! the last window's counter deltas in one step and advancing the clock by
//! the corresponding cycles — then resumes cycle-exact simulation.
//!
//! The jump scales only architectural counters (instructions, cache
//! misses, served accesses, latency and interference sums, busy/stalled
//! ticks). Micro-state — queues, bank timing wheels, in-flight completions,
//! cache contents, workload positions — is deliberately left untouched, so
//! the simulation resumes from a *real* state and phase changes in the
//! workload are picked up by the detector going unsteady. The result is
//! therefore not bit-identical to pure cycle-stepping; it is
//! tolerance-certified instead: [`within_tolerance`] checks end-state
//! bandwidth shares and per-application IPCs against a cycle-exact
//! reference and `invariant!`s them inside the configured epsilon.
//!
//! Every jump multiplier is exact integer arithmetic (the jump length is
//! `jump_windows × window` cycles by construction), so hybrid runs are
//! deterministic: same inputs, same jumps, same counters.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::runner::SimOutcome;

/// Configuration of the analytic hybrid stepper
/// ([`CmpConfig::hybrid`](crate::system::CmpConfig::hybrid); `None`
/// disables it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Observation window length in CPU cycles.
    pub window: u64,
    /// Consecutive windows whose rates must agree before a jump.
    pub history: usize,
    /// Relative band the windowed rates must stay within to count as
    /// steady (also the absolute band for the global row-hit rate, which
    /// is already a fraction).
    pub stability: f64,
    /// Windows credited analytically per jump.
    pub jump_windows: u64,
    /// Certified tolerance for [`within_tolerance`]: maximum absolute
    /// bandwidth-share deviation and relative per-app IPC error versus a
    /// cycle-exact run.
    pub epsilon: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            window: 10_000,
            history: 5,
            stability: 0.05,
            jump_windows: 16,
            epsilon: 0.05,
        }
    }
}

/// Counter snapshot bracketing one observation window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct HybridSnap {
    /// Per-app requests served by the controller (lifetime).
    pub served: Vec<u64>,
    /// Per-app controller latency sums.
    pub latency: Vec<u64>,
    /// Per-app epoch interference cycles.
    pub interference: Vec<u64>,
    /// Per-core instructions retired (current phase).
    pub retired: Vec<u64>,
    /// Per-core L1 misses.
    pub l1: Vec<u64>,
    /// Per-core L2 misses.
    pub l2: Vec<u64>,
    /// Controller busy ticks.
    pub busy: u64,
    /// Controller stalled ticks.
    pub stalled: u64,
    /// DRAM row-buffer hits.
    pub row_hits: u64,
    /// DRAM transactions served.
    pub dram_served: u64,
}

/// Per-window counter deltas — the unit the detector reasons over and the
/// jump scales up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct WindowDelta {
    pub served: Vec<u64>,
    pub latency: Vec<u64>,
    pub interference: Vec<u64>,
    pub retired: Vec<u64>,
    pub l1: Vec<u64>,
    pub l2: Vec<u64>,
    pub busy: u64,
    pub stalled: u64,
    pub row_hits: u64,
    pub dram_served: u64,
}

fn sub(end: &[u64], start: &[u64]) -> Vec<u64> {
    end.iter()
        .zip(start)
        .map(|(&e, &s)| e.saturating_sub(s))
        .collect()
}

/// Absolute slack added to the stability band. Per-window counts are small
/// (a saturated DDR2-400 channel serves ~400 transactions per 10k cycles
/// across all apps), so purely relative bands would flag ±1 jitter on a
/// light app as a phase change. Kept tight: a slack of 2 already lets a
/// ±4-count swing on a ~45/window app (a real post-policy-switch
/// transient's internal jitter) pass as steady.
const COUNT_SLACK: f64 = 1.0;

/// Mean served-per-window at or below which an application counts as a
/// *trickle* and is exempt from the steadiness spread test (see
/// [`HybridState::steady`]).
const TRICKLE_PER_WINDOW: u64 = 2;

/// Whether every sample sits within `tol·mean + COUNT_SLACK` of the
/// series mean — the windowed-rate stability test.
fn spread_stable(series: impl Iterator<Item = u64> + Clone, tol: f64) -> bool {
    let mut n = 0u64;
    let mut sum = 0u64;
    for v in series.clone() {
        n += 1;
        sum += v;
    }
    if n == 0 {
        return false;
    }
    let mean = sum as f64 / n as f64;
    let band = tol * mean + COUNT_SLACK;
    series.into_iter().all(|v| (v as f64 - mean).abs() <= band)
}

/// Live detector + jump bookkeeping, owned by
/// [`CmpSystem`](crate::system::CmpSystem) when hybrid stepping is on.
#[derive(Debug, Clone)]
pub(crate) struct HybridState {
    cfg: HybridConfig,
    /// Most recent full-window deltas, oldest first (≤ `cfg.history`).
    history: VecDeque<WindowDelta>,
    /// Snapshot opened by [`begin_window`](Self::begin_window).
    open: Option<HybridSnap>,
    /// Windows still to discard before collecting evidence again — the
    /// first window after a phase boundary (fresh policy, cold epoch
    /// counters) or after a jump (completion backlog draining) is a
    /// transient that would pollute the extrapolated mean.
    skip: u32,
    jumps: u64,
    jumped_cycles: u64,
}

impl HybridState {
    pub fn new(cfg: HybridConfig) -> Self {
        assert!(cfg.window >= 1, "hybrid window must be at least one cycle");
        assert!(cfg.history >= 1, "hybrid history must hold a window");
        assert!(cfg.jump_windows >= 1, "hybrid jump must move time");
        assert!(
            cfg.stability >= 0.0 && cfg.epsilon > 0.0,
            "hybrid bands must be non-negative"
        );
        HybridState {
            cfg,
            history: VecDeque::with_capacity(cfg.history),
            open: None,
            skip: 0,
            jumps: 0,
            jumped_cycles: 0,
        }
    }

    pub fn cfg(&self) -> &HybridConfig {
        &self.cfg
    }

    /// Cycles one full (unclipped) jump advances the clock by.
    #[cfg(test)]
    fn jump_cycles(&self) -> u64 {
        self.cfg.window.saturating_mul(self.cfg.jump_windows)
    }

    /// A new `run()` call is a phase boundary: steady-state evidence from
    /// before it no longer describes the upcoming workload.
    pub fn reset_phase(&mut self) {
        self.history.clear();
        self.open = None;
        self.skip = 1;
    }

    pub fn begin_window(&mut self, snap: HybridSnap) {
        self.open = Some(snap);
    }

    /// Close the open window against `snap` and append its delta.
    pub fn end_window(&mut self, snap: &HybridSnap) {
        // lint: allow(R1): the run loop brackets every end with a begin
        let start = self.open.take().expect("window was opened");
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        let delta = WindowDelta {
            served: sub(&snap.served, &start.served),
            latency: sub(&snap.latency, &start.latency),
            interference: sub(&snap.interference, &start.interference),
            retired: sub(&snap.retired, &start.retired),
            l1: sub(&snap.l1, &start.l1),
            l2: sub(&snap.l2, &start.l2),
            busy: snap.busy.saturating_sub(start.busy),
            stalled: snap.stalled.saturating_sub(start.stalled),
            row_hits: snap.row_hits.saturating_sub(start.row_hits),
            dram_served: snap.dram_served.saturating_sub(start.dram_served),
        };
        if self.history.len() == self.cfg.history {
            self.history.pop_front();
        }
        self.history.push_back(delta);
    }

    /// Drop an open partial window (run boundary landed inside it).
    pub fn discard_window(&mut self) {
        self.open = None;
    }

    /// Steady-state test: a full history whose per-app *bandwidth* (APC,
    /// as served per window) and global row-hit rate sit inside the
    /// stability band. Retirement rates are deliberately not tested —
    /// window-phase aliasing makes a compute-bound app's per-window
    /// retirement alternate even in perfect steady state, and Eq. 1 ties
    /// IPC to APC anyway; extrapolating the history *mean*
    /// ([`jump_delta`](Self::jump_delta)) averages that aliasing out.
    pub fn steady(&self) -> bool {
        if self.history.len() < self.cfg.history {
            return false;
        }
        let apps = self.history[0].served.len();
        for i in 0..apps {
            // A trickle app (≤ TRICKLE_PER_WINDOW served per window on
            // average) is exempt from the spread test: an app starved down
            // to sporadic single services — priority schemes' victims
            // whenever the winners briefly drain their queues — shows
            // {0,1,2}-count windows whose "spread" is pure quantization
            // noise, not a phase change. Extrapolating its mean moves the
            // certified metrics by at most ~trickle/total per jump, orders
            // of magnitude under any practical epsilon.
            let sum: u64 = self.history.iter().map(|d| d.served[i]).sum();
            if sum <= TRICKLE_PER_WINDOW * self.history.len() as u64 {
                continue;
            }
            if !spread_stable(self.history.iter().map(|d| d.served[i]), self.cfg.stability) {
                return false;
            }
        }
        let rate = |d: &WindowDelta| {
            if d.dram_served == 0 {
                0.0
            } else {
                d.row_hits as f64 / d.dram_served as f64
            }
        };
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for d in &self.history {
            let r = rate(d);
            mn = mn.min(r);
            mx = mx.max(r);
        }
        mx - mn <= self.cfg.stability
    }

    /// The newest full window (diagnostics/tests).
    #[cfg(test)]
    pub fn last_delta(&self) -> Option<&WindowDelta> {
        self.history.back()
    }

    /// The counter credit of a `windows`-window jump: `windows` times the
    /// *history mean* of each windowed delta, in exact u128 integer
    /// arithmetic (`⌊sum · windows / len⌋`). Averaging over the whole
    /// history (rather than extrapolating the last window) cancels
    /// window-phase aliasing; flooring loses at most one count per counter
    /// per jump. `windows` is normally `cfg.jump_windows`, but the run
    /// loop clips the final jump of a phase to the remaining budget.
    pub fn jump_delta(&self, windows: u64) -> WindowDelta {
        let k = windows as u128;
        let len = self.history.len().max(1) as u128;
        let scalar = |get: fn(&WindowDelta) -> u64| -> u64 {
            let sum: u128 = self.history.iter().map(|d| get(d) as u128).sum();
            (sum * k / len) as u64
        };
        let vector = |get: fn(&WindowDelta, usize) -> u64| -> Vec<u64> {
            let n = self.history.front().map_or(0, |d| d.served.len());
            (0..n)
                .map(|i| {
                    let sum: u128 = self.history.iter().map(|d| get(d, i) as u128).sum();
                    (sum * k / len) as u64
                })
                .collect()
        };
        WindowDelta {
            served: vector(|d, i| d.served[i]),
            latency: vector(|d, i| d.latency[i]),
            interference: vector(|d, i| d.interference[i]),
            retired: vector(|d, i| d.retired[i]),
            l1: vector(|d, i| d.l1[i]),
            l2: vector(|d, i| d.l2[i]),
            busy: scalar(|d| d.busy),
            stalled: scalar(|d| d.stalled),
            row_hits: scalar(|d| d.row_hits),
            dram_served: scalar(|d| d.dram_served),
        }
    }

    /// Record a performed jump and restart evidence collection: the next
    /// jump requires a fresh steady history on post-jump state.
    pub fn note_jump(&mut self, cycles: u64) {
        self.jumps += 1;
        self.jumped_cycles += cycles;
        self.history.clear();
        self.skip = 1;
    }

    pub fn jumps(&self) -> u64 {
        self.jumps
    }

    pub fn jumped_cycles(&self) -> u64 {
        self.jumped_cycles
    }
}

/// Floor for the relative-IPC-error denominator in [`within_tolerance`].
/// A starved application's IPC (≪ 0.01) is dominated by single fluke
/// services — an exact run retiring 10 instructions in 400k cycles versus
/// a hybrid run retiring 0 is a 100% "relative" error on pure noise — so
/// below the floor the comparison degrades to absolute error.
const IPC_FLOOR: f64 = 0.01;

/// Certify a hybrid outcome against its cycle-exact reference: every
/// application's bandwidth share must match within `epsilon` (absolute,
/// shares are fractions) and its IPC within `epsilon` relative (with the
/// denominator floored at [`IPC_FLOOR`] so starved apps compare by
/// absolute error). The check
/// is `invariant!`-backed — under `debug_assertions` (or the release-CI
/// `RUSTFLAGS` re-enable) a violation aborts, and the boolean result lets
/// callers assert in tests.
pub fn within_tolerance(exact: &SimOutcome, hybrid: &SimOutcome, epsilon: f64) -> bool {
    let shares = |o: &SimOutcome| -> Vec<f64> {
        let total: u64 = o.stats.iter().map(|s| s.mem_accesses).sum();
        o.stats
            .iter()
            .map(|s| s.mem_accesses as f64 / total.max(1) as f64)
            .collect()
    };
    let (se, sh) = (shares(exact), shares(hybrid));
    let mut ok = se.len() == sh.len();
    if ok {
        for i in 0..se.len() {
            let share_err = (se[i] - sh[i]).abs();
            let ipc_e = exact.stats[i].ipc();
            let ipc_h = hybrid.stats[i].ipc();
            let ipc_err = (ipc_e - ipc_h).abs() / ipc_e.abs().max(IPC_FLOOR);
            if share_err > epsilon || ipc_err > epsilon {
                ok = false;
            }
        }
    }
    let ie: Vec<f64> = exact.stats.iter().map(|s| s.ipc()).collect();
    let ih: Vec<f64> = hybrid.stats.iter().map(|s| s.ipc()).collect();
    bwpart_core::invariant!(
        ok,
        "hybrid outcome outside certified tolerance {epsilon}: \
         shares {sh:?} vs {se:?}, ipcs {ih:?} vs {ie:?}"
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(served: u64, retired: u64, row_hits: u64, dram_served: u64) -> HybridSnap {
        HybridSnap {
            served: vec![served],
            latency: vec![served * 100],
            interference: vec![0],
            retired: vec![retired],
            l1: vec![0],
            l2: vec![0],
            busy: 0,
            stalled: 0,
            row_hits,
            dram_served,
        }
    }

    fn feed(h: &mut HybridState, windows: &[(u64, u64)]) {
        let mut acc = snap(0, 0, 0, 0);
        for &(served, retired) in windows {
            h.begin_window(acc.clone());
            acc = HybridSnap {
                served: vec![acc.served[0] + served],
                latency: vec![acc.latency[0] + served * 100],
                retired: vec![acc.retired[0] + retired],
                dram_served: acc.dram_served + served,
                row_hits: acc.row_hits,
                ..acc.clone()
            };
            h.end_window(&acc);
        }
    }

    #[test]
    fn steady_needs_a_full_stable_history() {
        let cfg = HybridConfig {
            history: 3,
            stability: 0.02,
            ..HybridConfig::default()
        };
        let mut h = HybridState::new(cfg);
        feed(&mut h, &[(1000, 5000), (1001, 5002)]);
        assert!(!h.steady(), "two windows are not enough evidence");
        feed(&mut h, &[(1005, 5010)]);
        assert!(h.steady(), "three stable windows should certify");
        // A rate excursion beyond the band breaks steadiness.
        feed(&mut h, &[(1500, 5000)]);
        assert!(!h.steady());
    }

    #[test]
    fn history_is_a_sliding_window_and_jump_resets_it() {
        let cfg = HybridConfig {
            history: 2,
            ..HybridConfig::default()
        };
        let mut h = HybridState::new(cfg);
        feed(&mut h, &[(9000, 100), (1000, 100), (1000, 100)]);
        assert!(h.steady(), "the unstable window slid out of history");
        h.note_jump(h.jump_cycles());
        assert!(!h.steady(), "a jump restarts evidence collection");
        assert_eq!(h.jumps(), 1);
        assert_eq!(h.jumped_cycles(), h.jump_cycles());
    }

    #[test]
    fn jump_delta_extrapolates_the_history_mean() {
        let cfg = HybridConfig {
            history: 2,
            jump_windows: 4,
            ..HybridConfig::default()
        };
        let mut h = HybridState::new(cfg);
        // Window-phase aliasing: retirement alternates 1000/1200 around a
        // true rate of 1100 per window.
        feed(&mut h, &[(50, 1000), (50, 1200)]);
        let d = h.jump_delta(4);
        assert_eq!(d.served, vec![50 * 4]);
        assert_eq!(d.retired, vec![(1000 + 1200) * 4 / 2]);
        assert_eq!(d.latency, vec![50 * 100 * 4]);
    }

    #[test]
    fn transient_window_after_reset_or_jump_is_skipped() {
        let mut h = HybridState::new(HybridConfig {
            history: 1,
            ..HybridConfig::default()
        });
        h.reset_phase();
        feed(&mut h, &[(1000, 5000)]);
        assert!(h.last_delta().is_none(), "post-reset window is a transient");
        feed(&mut h, &[(1000, 5000)]);
        assert!(h.steady(), "second window is real evidence");
        h.note_jump(h.jump_cycles());
        feed(&mut h, &[(1000, 5000)]);
        assert!(h.last_delta().is_none(), "post-jump window is a transient");
    }

    #[test]
    fn trickle_apps_do_not_block_steadiness() {
        let cfg = HybridConfig {
            history: 3,
            stability: 0.02,
            ..HybridConfig::default()
        };
        // Two apps: a steady heavy and a starved trickle whose windows
        // alternate 0/2/0 services — relative spread is huge, but the
        // volume is bandwidth-invisible.
        let mut h = HybridState::new(cfg);
        let mut acc = HybridSnap {
            served: vec![0, 0],
            latency: vec![0, 0],
            interference: vec![0, 0],
            retired: vec![0, 0],
            l1: vec![0, 0],
            l2: vec![0, 0],
            ..HybridSnap::default()
        };
        for trickle in [0u64, 2, 0] {
            h.begin_window(acc.clone());
            acc.served[0] += 1000;
            acc.served[1] += trickle;
            acc.dram_served += 1000 + trickle;
            h.end_window(&acc);
        }
        assert!(h.steady(), "a 0/2/0 trickle is noise, not a phase change");
        // The same spread at real volume is a phase change.
        let mut h = HybridState::new(cfg);
        let mut acc = HybridSnap {
            served: vec![0, 0],
            latency: vec![0, 0],
            interference: vec![0, 0],
            retired: vec![0, 0],
            l1: vec![0, 0],
            l2: vec![0, 0],
            ..HybridSnap::default()
        };
        for burst in [0u64, 200, 0] {
            h.begin_window(acc.clone());
            acc.served[0] += 1000;
            acc.served[1] += burst;
            acc.dram_served += 1000 + burst;
            h.end_window(&acc);
        }
        assert!(!h.steady(), "a 0/200/0 burst must block the jump");
    }

    #[test]
    fn partial_windows_are_discarded() {
        let mut h = HybridState::new(HybridConfig {
            history: 1,
            ..HybridConfig::default()
        });
        h.begin_window(snap(0, 0, 0, 0));
        h.discard_window();
        assert!(h.last_delta().is_none());
        assert!(!h.steady());
    }

    #[test]
    fn all_idle_apps_are_trivially_stable() {
        let mut h = HybridState::new(HybridConfig {
            history: 2,
            ..HybridConfig::default()
        });
        feed(&mut h, &[(0, 0), (0, 0)]);
        assert!(h.steady(), "an idle system is in steady state");
    }

    #[test]
    fn row_hit_rate_excursion_breaks_steadiness() {
        let mut h = HybridState::new(HybridConfig {
            history: 2,
            stability: 0.02,
            ..HybridConfig::default()
        });
        // Same volumes, very different row-hit fractions.
        let a0 = snap(0, 0, 0, 0);
        let a1 = snap(1000, 5000, 900, 1000);
        let a2 = snap(2000, 10_000, 950, 2000); // window 2 hit rate: 50/1000
        h.begin_window(a0);
        h.end_window(&a1);
        h.begin_window(a1.clone());
        h.end_window(&a2);
        assert!(!h.steady(), "row-hit rate moved 0.9 -> 0.05");
    }
}
