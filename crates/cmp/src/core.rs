//! The core model and the workload interface it executes.
//!
//! A core consumes an abstract instruction stream — runs of non-memory
//! instructions punctuated by memory accesses — through its private L1/L2
//! hierarchy. Out-of-order execution is abstracted to three limits, which
//! are the only core properties that matter for bandwidth-partitioning
//! behaviour:
//!
//! * **issue width** — non-memory IPC ceiling (Table II: 8-wide),
//! * **ROB window** — how many instructions the core may run past its
//!   oldest outstanding L2 miss (Table II: 192 entries),
//! * **MSHRs** — the maximum outstanding L2 misses, i.e. the application's
//!   memory-level parallelism.
//!
//! When the memory system is the bottleneck these limits make
//! `IPC = APC / API` (Eq. 1) emerge naturally: the core retires exactly one
//! inter-miss instruction gap per serviced miss.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use bwpart_mc::{MemRequest, MemoryController};

use crate::cache::{Cache, CacheConfig, CacheOutcome};
use crate::llc::SharedLlc;

/// One element of an application's instruction stream: `gap` non-memory
/// instructions followed by one memory instruction at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Non-memory instructions preceding this access.
    pub gap: u32,
    /// Byte address of the access (application-local; the core adds its
    /// physical region base).
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
}

/// An application's dynamic instruction stream.
///
/// Implementations must be deterministic for a given construction seed; the
/// simulator's reproducibility rests on it.
pub trait Workload {
    /// Produce the next access (streams are infinite; generators wrap).
    fn next_access(&mut self) -> Access;

    /// Identifier used in reports.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Core parameters (Table II defaults via [`CoreConfig::default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Instructions retired per cycle at most (decode/issue/retire width).
    pub width: u32,
    /// Reorder-buffer window in instructions.
    pub rob_window: u64,
    /// Maximum outstanding L2 misses (application MLP).
    pub mshrs: usize,
    /// Serialized penalty cycles charged per L2 hit (the un-overlapped
    /// remainder of the 5 ns L2 latency in an OoO core).
    pub l2_hit_penalty: u32,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 8,
            rob_window: 192,
            mshrs: 8,
            l2_hit_penalty: 2,
        }
    }
}

/// Per-core counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Instructions retired.
    pub retired: u64,
    /// L1 data hits.
    pub l1_hits: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (demand reads sent to memory, before MSHR merges).
    pub l2_misses: u64,
    /// Demand reads actually issued to the controller.
    pub mem_reads: u64,
    /// Writebacks issued to the controller (L2 dirty evictions).
    pub mem_writes: u64,
    /// Cycles fully stalled on ROB/MSHR limits.
    pub stall_cycles: u64,
}

/// What [`Core::step`] would do in the next cycle, classified for the
/// event-driven fast-forward in `CmpSystem::run`.
///
/// The two idle variants have *exactly* one per-cycle counter effect each,
/// which is what makes batch compensation via [`Core::apply_idle_cycles`]
/// bit-identical to stepping:
///
/// * `L2Wait(w)` — `step` decrements the serialized L2-hit penalty and
///   returns before the execute loop (no stall is charged);
/// * `Blocked` — the ROB/MSHR limits block the very first instruction, so
///   `step` only charges one `stall_cycles`.
///
/// Both states are stable until a memory completion arrives or (for
/// `L2Wait`) the penalty counter reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleState {
    /// The core would retire at least one instruction this cycle.
    Executing,
    /// Serialized L2-hit penalty with `w > 0` cycles left.
    L2Wait(u32),
    /// Fully stalled on the ROB window or MSHR limit.
    Blocked,
}

/// One core with its private cache hierarchy and workload.
pub struct Core {
    app: usize,
    cfg: CoreConfig,
    l1: Cache,
    l2: Cache,
    workload: Box<dyn Workload>,
    /// Physical base of this application's DRAM region.
    app_base: u64,
    /// Mask confining workload addresses to the region.
    region_mask: u64,
    /// The access whose gap is currently being executed.
    current: Access,
    /// Non-memory instructions left before `current`'s memory op.
    gap_left: u32,
    /// Sequence numbers (instruction indices) of outstanding L2 misses,
    /// oldest first, with completion flags.
    outstanding: VecDeque<(u64, u64, bool)>, // (seq, line_addr, done)
    /// Serialized L2-hit penalty cycles pending.
    l2_wait: u32,
    /// Instructions started (sequence counter).
    seq: u64,
    /// Counters.
    pub counters: CoreCounters,
}

impl Core {
    /// Build a core for application `app`, confining its traffic to a
    /// `region_bytes`-sized physical region at `app_base`.
    pub fn new(
        app: usize,
        cfg: CoreConfig,
        l1: CacheConfig,
        l2: CacheConfig,
        mut workload: Box<dyn Workload>,
        app_base: u64,
        region_bytes: u64,
    ) -> Self {
        assert!(
            region_bytes.is_power_of_two(),
            "region must be a power of two"
        );
        assert!(cfg.width >= 1 && cfg.mshrs >= 1 && cfg.rob_window >= 1);
        let current = workload.next_access();
        let gap_left = current.gap;
        Core {
            app,
            cfg,
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            workload,
            app_base,
            region_mask: region_bytes - 1,
            current,
            gap_left,
            outstanding: VecDeque::new(),
            l2_wait: 0,
            seq: 0,
            counters: CoreCounters::default(),
        }
    }

    /// Application index.
    pub fn app(&self) -> usize {
        self.app
    }

    /// The workload's name.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Outstanding L2 misses right now.
    pub fn outstanding_misses(&self) -> usize {
        self.outstanding.len()
    }

    fn phys(&self, addr: u64) -> u64 {
        self.app_base | (addr & self.region_mask)
    }

    /// Route a completed memory read back to the core. All outstanding
    /// entries for the line resolve together (MSHR-merged accesses share
    /// one DRAM transaction).
    pub fn complete(&mut self, addr: u64) {
        let line = addr & !63u64;
        for entry in self.outstanding.iter_mut() {
            if entry.1 == line {
                entry.2 = true;
            }
        }
        while matches!(self.outstanding.front(), Some((_, _, true))) {
            self.outstanding.pop_front();
        }
    }

    fn limits_block(&self) -> bool {
        if self.outstanding.len() >= self.cfg.mshrs {
            return true;
        }
        if let Some(&(oldest, _, _)) = self.outstanding.front() {
            if self.seq.saturating_sub(oldest) >= self.cfg.rob_window {
                return true;
            }
        }
        false
    }

    /// Classify what [`step`](Self::step) would do in the next cycle. Pure:
    /// repeated calls without intervening `step`/`complete` agree.
    pub fn idle_state(&self) -> IdleState {
        if self.l2_wait > 0 {
            return IdleState::L2Wait(self.l2_wait);
        }
        if self.gap_left == 0 && self.limits_block() {
            return IdleState::Blocked;
        }
        IdleState::Executing
    }

    /// Apply `cycles` cycles of idleness at once — the batch equivalent of
    /// calling [`step`](Self::step) that many times while the core stays in
    /// its current idle state. Callers (the fast-forward path) must ensure
    /// the state really is stable for the whole span: no completion is
    /// delivered inside it and, for `L2Wait(w)`, `cycles ≤ w`.
    pub fn apply_idle_cycles(&mut self, cycles: u64) {
        match self.idle_state() {
            IdleState::L2Wait(w) => {
                bwpart_core::invariant!(
                    cycles <= u64::from(w),
                    "skipping {cycles} cycles across the end of an L2 wait of {w}"
                );
                // Mirrors the `l2_wait -= 1; return` path: no stall charge.
                self.l2_wait = w.saturating_sub(cycles as u32);
            }
            IdleState::Blocked => {
                // Mirrors the blocked path: one stall cycle per cycle.
                self.counters.stall_cycles += cycles;
            }
            IdleState::Executing => {
                bwpart_core::invariant!(false, "apply_idle_cycles on a core that would execute");
            }
        }
    }

    /// How many upcoming cycles are *pure gap*: the core only retires
    /// `width` non-memory instructions per cycle and cannot reach its
    /// pending memory instruction — so it cannot touch the caches or the
    /// memory controller. `step`'s execute loop consumes
    /// `min(gap_left, width)` gap instructions before considering the
    /// memory op, so a cycle is pure exactly while `gap_left ≥ width`;
    /// `gap_left / width` such cycles remain. Only meaningful when
    /// [`idle_state`](Self::idle_state) is [`IdleState::Executing`].
    pub fn pure_gap_cycles(&self) -> u64 {
        if self.l2_wait > 0 {
            return 0;
        }
        u64::from(self.gap_left / self.cfg.width)
    }

    /// Batch-execute `cycles` pure-gap cycles at once — the exact effect of
    /// calling [`step`](Self::step) that many times while each cycle stays
    /// pure gap: `width` instructions retired per cycle, no stall, no cache
    /// or controller traffic. Callers (the fast-forward path) must keep
    /// `cycles ≤` [`pure_gap_cycles`](Self::pure_gap_cycles).
    pub fn apply_gap_cycles(&mut self, cycles: u64) {
        bwpart_core::invariant!(
            self.l2_wait == 0,
            "gap batching inside an L2 wait of {}",
            self.l2_wait
        );
        let instrs = cycles.saturating_mul(u64::from(self.cfg.width));
        bwpart_core::invariant!(
            instrs <= u64::from(self.gap_left),
            "batching {instrs} gap instructions with only {} left",
            self.gap_left
        );
        self.gap_left = self
            .gap_left
            .saturating_sub(u32::try_from(instrs).unwrap_or(u32::MAX));
        self.seq += instrs;
        self.counters.retired += instrs;
    }

    /// Advance the next access from the workload.
    fn fetch_next(&mut self) {
        self.current = self.workload.next_access();
        self.gap_left = self.current.gap;
    }

    /// Execute one CPU cycle, possibly issuing memory requests to `mc`.
    /// Equivalent to [`step_llc`](Self::step_llc) without a shared LLC.
    pub fn step(&mut self, now: u64, mc: &mut MemoryController) {
        self.step_llc(now, mc, None);
    }

    /// Route a dirty L2 victim toward DRAM: through the shared LLC when one
    /// is present (only a dirty *LLC* victim then reaches the controller),
    /// straight to the controller otherwise.
    fn spill_l2_victim(
        &mut self,
        wb: u64,
        now: u64,
        mc: &mut MemoryController,
        llc: &mut Option<&mut SharedLlc>,
    ) {
        let dram_wb = match llc.as_deref_mut() {
            Some(l) => l.writeback(self.app, wb),
            None => Some(wb),
        };
        if let Some(w) = dram_wb {
            self.counters.mem_writes += 1;
            mc.enqueue(MemRequest::write(self.app, w, now));
        }
    }

    /// Execute one CPU cycle with an optional shared LLC between the
    /// private L2 and the memory controller. With `llc` absent this is
    /// exactly the private-hierarchy [`step`](Self::step); with it present,
    /// L2 misses probe the LLC first — an LLC hit serializes the LLC hit
    /// penalty through the same wait machinery as an L2 hit (so the
    /// event-driven fast-forward stays bit-identical), and only LLC misses
    /// and dirty LLC victims produce DRAM traffic.
    pub fn step_llc(
        &mut self,
        now: u64,
        mc: &mut MemoryController,
        mut llc: Option<&mut SharedLlc>,
    ) {
        if self.l2_wait > 0 {
            self.l2_wait -= 1;
            return;
        }
        let mut budget = self.cfg.width;
        let mut progressed = false;
        while budget > 0 {
            if self.gap_left > 0 {
                let k = self.gap_left.min(budget);
                self.gap_left -= k;
                budget -= k;
                self.seq += k as u64;
                self.counters.retired += k as u64;
                progressed = true;
                continue;
            }
            // The memory instruction of `current` is due.
            if self.limits_block() {
                break;
            }
            let addr = self.phys(self.current.addr);
            let is_write = self.current.is_write;
            match self.l1.access(addr, is_write) {
                CacheOutcome::Hit => {
                    self.counters.l1_hits += 1;
                    self.retire_mem();
                    budget -= 1;
                    progressed = true;
                }
                CacheOutcome::Miss { writeback } => {
                    self.counters.l1_misses += 1;
                    if let Some(wb) = writeback {
                        // L1 dirty victim installs into L2 (no memory fetch:
                        // the data moves downward); L2's own dirty victim
                        // goes to the LLC or DRAM.
                        if let CacheOutcome::Miss {
                            writeback: Some(l2wb),
                        } = self.l2.access(wb, true)
                        {
                            self.spill_l2_victim(l2wb, now, mc, &mut llc);
                        }
                    }
                    // Demand fill from L2 (the L1 copy carries dirtiness for
                    // stores; the L2 copy stays clean on a pure fill).
                    match self.l2.access(addr, false) {
                        CacheOutcome::Hit => {
                            self.counters.l2_hits += 1;
                            self.retire_mem();
                            self.l2_wait = self.cfg.l2_hit_penalty;
                            progressed = true;
                            break; // serialized L2-hit penalty starts next cycle
                        }
                        CacheOutcome::Miss { writeback: l2wb } => {
                            self.counters.l2_misses += 1;
                            if let Some(wb) = l2wb {
                                self.spill_l2_victim(wb, now, mc, &mut llc);
                            }
                            // Shared-LLC probe: a hit is absorbed before
                            // DRAM, serializing the LLC hit penalty exactly
                            // like an L2 hit does.
                            if let Some(l) = llc.as_deref_mut() {
                                match l.access(self.app, addr, false) {
                                    CacheOutcome::Hit => {
                                        let penalty = l.hit_penalty();
                                        self.retire_mem();
                                        self.l2_wait = penalty;
                                        progressed = true;
                                        break;
                                    }
                                    CacheOutcome::Miss { writeback: lwb } => {
                                        if let Some(w) = lwb {
                                            self.counters.mem_writes += 1;
                                            mc.enqueue(MemRequest::write(self.app, w, now));
                                        }
                                    }
                                }
                            }
                            let line = addr & !63u64;
                            // MSHR merge: a pending miss to the same line
                            // absorbs this access without a new request.
                            let merged = self
                                .outstanding
                                .iter()
                                .any(|(_, l, done)| *l == line && !done);
                            if !merged {
                                self.counters.mem_reads += 1;
                                mc.enqueue(MemRequest::read(self.app, addr, now));
                            }
                            self.outstanding.push_back((self.seq, line, false));
                            self.retire_mem();
                            budget -= 1;
                            progressed = true;
                        }
                    }
                }
            }
        }
        if !progressed {
            self.counters.stall_cycles += 1;
        }
    }

    fn retire_mem(&mut self) {
        self.seq += 1;
        self.counters.retired += 1;
        self.fetch_next();
    }

    /// Reset counters at a phase boundary (caches and in-flight state are
    /// preserved, like a real machine crossing a measurement boundary).
    pub fn reset_counters(&mut self) {
        self.counters = CoreCounters::default();
        self.l1.reset_counters();
        self.l2.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bwpart_dram::DramConfig;
    use bwpart_mc::Policy;

    /// A workload issuing a fixed gap and a striding address pattern.
    struct Stride {
        gap: u32,
        next: u64,
        step: u64,
        is_write: bool,
    }

    impl Workload for Stride {
        fn next_access(&mut self) -> Access {
            let addr = self.next;
            self.next = self.next.wrapping_add(self.step);
            Access {
                gap: self.gap,
                addr,
                is_write: self.is_write,
            }
        }
        fn name(&self) -> &str {
            "stride"
        }
    }

    fn mk_core(gap: u32, step: u64, mshrs: usize) -> Core {
        Core::new(
            0,
            CoreConfig {
                mshrs,
                ..CoreConfig::default()
            },
            CacheConfig::l1d(),
            CacheConfig::l2(),
            Box::new(Stride {
                gap,
                next: 0,
                step,
                is_write: false,
            }),
            0,
            1 << 29,
        )
    }

    fn mk_mc() -> MemoryController {
        MemoryController::new(DramConfig::ddr2_400(), 1, Policy::fcfs(1))
    }

    #[test]
    fn cache_resident_workload_runs_at_full_width() {
        // Tiny working set (one line revisited): all L1 hits after warm-up.
        let mut core = mk_core(7, 0, 8);
        let mut mc = mk_mc();
        // Long enough to amortize the single cold miss's stall.
        for now in 0..20_000 {
            core.step(now, &mut mc);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            mc.tick(now);
        }
        let ipc = core.counters.retired as f64 / 20_000.0;
        assert!(ipc > 7.5, "L1-resident IPC should be ~8, got {ipc}");
        assert_eq!(core.counters.mem_reads, 1); // only the first touch
    }

    #[test]
    fn streaming_workload_is_bandwidth_bound() {
        // Every access misses (64 B stride over a huge region), tiny gap:
        // the core's demand far exceeds DDR2-400.
        let mut core = mk_core(10, 64, 8);
        let mut mc = mk_mc();
        let cycles = 200_000u64;
        for now in 0..cycles {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
        }
        let apc = core.counters.mem_reads as f64 / cycles as f64;
        // DDR2-400 peak is 0.01 APC; a single saturating stream should get
        // close (no competing traffic, minor refresh overhead).
        assert!(apc > 0.008, "streaming APC {apc} should approach 0.01");
        // And IPC follows Eq. 1: IPC ≈ APC / API with API = 1/11.
        let ipc = core.counters.retired as f64 / cycles as f64;
        let api = 1.0 / 11.0;
        assert!(
            (ipc - apc / api).abs() / ipc < 0.15,
            "Eq.1: ipc {ipc} vs apc/api {}",
            apc / api
        );
    }

    #[test]
    fn mshr_limit_bounds_outstanding_misses() {
        let mut core = mk_core(0, 64, 4);
        let mut mc = mk_mc();
        for now in 0..10_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
            assert!(core.outstanding_misses() <= 4);
        }
        assert!(core.counters.stall_cycles > 0, "MSHR limit should stall");
    }

    #[test]
    fn lower_mlp_means_lower_alone_bandwidth() {
        let run = |mshrs: usize| {
            let mut core = mk_core(20, 64, mshrs);
            let mut mc = mk_mc();
            let cycles = 200_000u64;
            for now in 0..cycles {
                mc.tick(now);
                for c in mc.drain_completions(now) {
                    core.complete(c.addr);
                }
                core.step(now, &mut mc);
            }
            core.counters.mem_reads as f64 / cycles as f64
        };
        let low = run(1);
        let high = run(8);
        assert!(
            high > low * 1.5,
            "MLP should raise standalone bandwidth: {low} vs {high}"
        );
    }

    #[test]
    fn rob_window_limits_run_ahead() {
        // gap 300 > rob 192: after one outstanding miss the core cannot
        // reach the next memory instruction, so misses never overlap.
        let mut core = Core::new(
            0,
            CoreConfig {
                rob_window: 192,
                mshrs: 8,
                ..CoreConfig::default()
            },
            CacheConfig::l1d(),
            CacheConfig::l2(),
            Box::new(Stride {
                gap: 300,
                next: 0,
                step: 64,
                is_write: false,
            }),
            0,
            1 << 29,
        );
        let mut mc = mk_mc();
        let mut max_out = 0;
        for now in 0..100_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
            max_out = max_out.max(core.outstanding_misses());
        }
        assert_eq!(max_out, 1, "ROB window should serialize distant misses");
    }

    #[test]
    fn idle_state_matches_step_effects() {
        // gap 0 + MSHR limit 1: the core blocks as soon as one miss is out.
        let mut core = mk_core(0, 64, 1);
        let mut mc = mk_mc();
        assert_eq!(core.idle_state(), IdleState::Executing);
        core.step(0, &mut mc); // issues the first miss, then blocks
        assert_eq!(core.idle_state(), IdleState::Blocked);
        // Blocked stepping charges exactly one stall per cycle.
        let stalls = core.counters.stall_cycles;
        let retired = core.counters.retired;
        for now in 1..4 {
            core.step(now, &mut mc);
        }
        assert_eq!(core.counters.stall_cycles, stalls + 3);
        assert_eq!(core.counters.retired, retired);
        // Batch compensation produces the identical counter state.
        core.apply_idle_cycles(5);
        assert_eq!(core.counters.stall_cycles, stalls + 8);
        assert_eq!(core.counters.retired, retired);
        assert_eq!(core.idle_state(), IdleState::Blocked);
    }

    #[test]
    fn l2_wait_batch_equals_stepping() {
        // Two cores driven identically into an L2 wait; one steps, one
        // batches. The 64 KB working set (1024 lines at stride 128 over a
        // 128 KB region) overflows the 32 KB L1 but stays L2-resident, so
        // steady state is a stream of L2 hits, each serializing a wait.
        let mk = || {
            Core::new(
                0,
                CoreConfig::default(),
                CacheConfig::l1d(),
                CacheConfig::l2(),
                Box::new(Stride {
                    gap: 0,
                    next: 0,
                    step: 128,
                    is_write: false,
                }),
                0,
                1 << 17,
            )
        };
        let mut stepped = mk();
        let mut batched = mk();
        let mut mc = mk_mc();
        let mut mc2 = mk_mc();
        // Warm both identically until one lands in an L2 wait.
        let mut now = 0;
        while !matches!(stepped.idle_state(), IdleState::L2Wait(_)) && now < 400_000 {
            stepped.step(now, &mut mc);
            for c in mc.drain_completions(now) {
                stepped.complete(c.addr);
            }
            batched.step(now, &mut mc2);
            for c in mc2.drain_completions(now) {
                batched.complete(c.addr);
            }
            mc.tick(now);
            mc2.tick(now);
            now += 1;
        }
        let IdleState::L2Wait(w) = stepped.idle_state() else {
            panic!("expected an L2 wait, got {:?}", stepped.idle_state());
        };
        assert!(w > 0);
        assert_eq!(batched.idle_state(), IdleState::L2Wait(w));
        for k in 0..u64::from(w) {
            stepped.step(now + k, &mut mc);
        }
        batched.apply_idle_cycles(u64::from(w));
        assert_eq!(stepped.idle_state(), batched.idle_state());
        assert_eq!(stepped.counters.stall_cycles, batched.counters.stall_cycles);
        assert_eq!(stepped.counters.retired, batched.counters.retired);
        // The wait is fully consumed in both (whatever follows it).
        assert!(!matches!(stepped.idle_state(), IdleState::L2Wait(_)));
    }

    #[test]
    fn pure_gap_batching_matches_stepping() {
        // gap 64 at width 8: exactly 8 pure-gap cycles before the memory
        // instruction can be reached.
        let mut stepped = mk_core(64, 64, 8);
        let mut batched = mk_core(64, 64, 8);
        let mut mc = mk_mc();
        assert_eq!(stepped.idle_state(), IdleState::Executing);
        assert_eq!(stepped.pure_gap_cycles(), 8);
        for now in 0..8 {
            stepped.step(now, &mut mc);
        }
        // Pure-gap cycles never reach the memory system.
        assert_eq!(mc.total_queued(), 0);
        batched.apply_gap_cycles(8);
        assert_eq!(stepped.counters, batched.counters);
        assert_eq!(stepped.counters.retired, 64);
        assert_eq!(stepped.pure_gap_cycles(), 0);
        assert_eq!(batched.pure_gap_cycles(), 0);
        assert_eq!(stepped.idle_state(), batched.idle_state());
        // A partial batch also agrees with stepping.
        let mut stepped2 = mk_core(64, 64, 8);
        let mut batched2 = mk_core(64, 64, 8);
        for now in 0..3 {
            stepped2.step(now, &mut mc);
        }
        batched2.apply_gap_cycles(3);
        assert_eq!(stepped2.counters, batched2.counters);
        assert_eq!(batched2.pure_gap_cycles(), 5);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn apply_idle_cycles_rejects_executing_core() {
        let mut core = mk_core(10, 64, 8);
        assert_eq!(core.idle_state(), IdleState::Executing);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.apply_idle_cycles(1);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn stores_generate_writeback_traffic() {
        // Write-streaming through a footprint larger than L2: dirty lines
        // must come back out as DRAM writes.
        let mut core = Core::new(
            0,
            CoreConfig::default(),
            CacheConfig::l1d(),
            CacheConfig::l2(),
            Box::new(Stride {
                gap: 10,
                next: 0,
                step: 64,
                is_write: true,
            }),
            0,
            1 << 19, // 512 KB region: twice L2, so dirty lines cycle out
        );
        let mut mc = mk_mc();
        for now in 0..800_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
        }
        assert!(
            core.counters.mem_writes > 0,
            "dirty evictions must reach DRAM (reads {})",
            core.counters.mem_reads
        );
        // Once L2 is full, fills displace dirty lines (the run spends its
        // first half warming the hierarchy, so the ratio is well below 1).
        let ratio = core.counters.mem_writes as f64 / core.counters.mem_reads as f64;
        assert!(ratio > 0.1, "writeback ratio {ratio}");
    }

    #[test]
    fn addresses_confined_to_region() {
        let mut core = Core::new(
            3,
            CoreConfig::default(),
            CacheConfig::l1d(),
            CacheConfig::l2(),
            Box::new(Stride {
                gap: 0,
                next: 0,
                step: 64,
                is_write: false,
            }),
            3 << 29,
            1 << 29,
        );
        let mut mc = MemoryController::new(DramConfig::ddr2_400(), 4, Policy::fcfs(4));
        for now in 0..5_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                assert!(c.addr >= 3 << 29 && c.addr < 4 << 29);
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
        }
    }

    #[test]
    fn reset_counters_keeps_cache_state() {
        let mut core = mk_core(7, 0, 8);
        let mut mc = mk_mc();
        for now in 0..2_000 {
            mc.tick(now);
            for c in mc.drain_completions(now) {
                core.complete(c.addr);
            }
            core.step(now, &mut mc);
        }
        core.reset_counters();
        assert_eq!(core.counters.retired, 0);
        // Cache stays warm: continuing produces no new memory reads.
        for now in 2_000..3_000 {
            mc.tick(now);
            core.step(now, &mut mc);
        }
        assert_eq!(core.counters.mem_reads, 0);
    }
}
