//! The shared last-level cache with per-application way partitioning.
//!
//! Sits between the private per-core L2s and the memory controller: L2
//! demand misses and dirty L2 victims probe the LLC, and only LLC misses
//! (plus dirty LLC victims) reach DRAM — so the memory controller's
//! profiler sees *cache-share-dependent* demand, which is what the
//! coordinated analytical model (`bwpart_core::mrc`) needs.
//!
//! Partitioning is enforced at **fill time** (way masks restrict victim
//! selection), the standard hardware mechanism (Intel CAT, Cache
//! Partitioning via way masks): an application's fills may only evict
//! lines from its assigned ways, but the *hit* probe covers all ways.
//! After a repartition, lines resident in ways an application no longer
//! owns keep hitting and drain by natural eviction — they never teleport.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig, CacheOutcome};

/// Geometry and timing of the shared LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Cache geometry (capacity, ways, line size).
    pub cache: CacheConfig,
    /// Serialized penalty cycles charged per LLC hit (the un-overlapped
    /// remainder of the LLC latency in an OoO core — larger than the L2
    /// hit penalty, far smaller than a DRAM round trip).
    pub hit_penalty: u32,
}

impl Default for LlcConfig {
    /// A 2 MB, 16-way, 64 B-line shared LLC with a 12-cycle serialized hit
    /// penalty — sized to sit between the paper's 256 KB private L2s and
    /// DRAM.
    fn default() -> Self {
        LlcConfig {
            cache: CacheConfig {
                capacity: 2 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            hit_penalty: 12,
        }
    }
}

/// Per-application LLC counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcAppCounters {
    /// LLC hits (L2 misses absorbed before DRAM).
    pub hits: u64,
    /// LLC misses (demand traffic that reached DRAM).
    pub misses: u64,
    /// Dirty L2 victims absorbed by the LLC (no DRAM write needed).
    pub writebacks_absorbed: u64,
}

impl LlcAppCounters {
    /// Demand accesses observed (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio so far (0 when idle).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The shared, way-partitioned LLC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedLlc {
    cfg: LlcConfig,
    cache: Cache,
    /// Per-application way masks (bit `i` enables way `i` for fills).
    masks: Vec<u64>,
    /// Per-application way counts behind the masks (reporting).
    ways: Vec<usize>,
    /// Per-application counters.
    counters: Vec<LlcAppCounters>,
}

impl SharedLlc {
    /// Build an LLC shared by `n_apps` applications, ways split as evenly
    /// as possible (contiguous mask ranges, deterministic).
    ///
    /// # Panics
    /// Panics if the geometry is invalid, `n_apps` is zero, or there are
    /// fewer ways than applications.
    pub fn new(cfg: LlcConfig, n_apps: usize) -> Self {
        assert!(n_apps > 0, "at least one application required");
        assert!(
            cfg.cache.ways >= n_apps,
            "LLC needs at least one way per application"
        );
        assert!(cfg.cache.ways <= 64, "way masks are 64-bit");
        let cache = Cache::new(cfg.cache);
        let mut llc = SharedLlc {
            cfg,
            cache,
            masks: vec![0; n_apps],
            ways: vec![0; n_apps],
            counters: vec![LlcAppCounters::default(); n_apps],
        };
        let n = n_apps;
        let total = cfg.cache.ways;
        let even: Vec<usize> = (0..n)
            .map(|i| total / n + usize::from(i < total % n))
            .collect();
        llc.set_ways(&even);
        llc
    }

    /// The configuration.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Serialized hit penalty in cycles.
    pub fn hit_penalty(&self) -> u32 {
        self.cfg.hit_penalty
    }

    /// Current per-application way counts.
    pub fn way_allocation(&self) -> &[usize] {
        &self.ways
    }

    /// Current per-application way masks.
    pub fn way_masks(&self) -> &[u64] {
        &self.masks
    }

    /// Per-application counters.
    pub fn counters(&self, app: usize) -> &LlcAppCounters {
        &self.counters[app]
    }

    /// Repartition: assign `ways[i]` contiguous ways to application `i`.
    /// Only future fills are affected — resident lines stay where they are
    /// and drain by natural eviction (see the module docs). Deterministic:
    /// the same vector always produces the same masks.
    ///
    /// # Panics
    /// Panics if the counts don't sum to the total ways or any app gets 0.
    pub fn set_ways(&mut self, ways: &[usize]) {
        assert_eq!(ways.len(), self.masks.len(), "one way count per app");
        assert_eq!(
            ways.iter().sum::<usize>(),
            self.cfg.cache.ways,
            "way counts must sum to the LLC's associativity"
        );
        assert!(
            ways.iter().all(|&w| w >= 1),
            "every application needs at least one way"
        );
        let mut base = 0usize;
        for (i, &w) in ways.iter().enumerate() {
            let mask = if w >= 64 {
                u64::MAX
            } else {
                ((1u64 << w) - 1) << base
            };
            self.masks[i] = mask;
            self.ways[i] = w;
            base += w;
        }
    }

    /// Demand access from application `app` (an L2 miss). Fill-time way
    /// enforcement; the returned outcome carries the dirty LLC victim's
    /// address when one must be written back to DRAM.
    pub fn access(&mut self, app: usize, addr: u64, is_write: bool) -> CacheOutcome {
        let out = self.cache.access_masked(addr, is_write, self.masks[app]);
        match out {
            CacheOutcome::Hit => self.counters[app].hits += 1,
            CacheOutcome::Miss { .. } => self.counters[app].misses += 1,
        }
        out
    }

    /// Install a dirty L2 victim from application `app` (full-line write,
    /// no DRAM fetch needed). Returns the dirty LLC victim's address when
    /// the install displaces one.
    pub fn writeback(&mut self, app: usize, addr: u64) -> Option<u64> {
        match self.cache.access_masked(addr, true, self.masks[app]) {
            CacheOutcome::Hit => {
                self.counters[app].writebacks_absorbed += 1;
                None
            }
            CacheOutcome::Miss { writeback } => {
                if writeback.is_none() {
                    self.counters[app].writebacks_absorbed += 1;
                }
                writeback
            }
        }
    }

    /// Probe without modifying state (diagnostics).
    pub fn contains(&self, addr: u64) -> bool {
        self.cache.contains(addr)
    }

    /// Reset per-app and underlying cache counters (state persists, like
    /// the private caches across phase boundaries).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = LlcAppCounters::default();
        }
        self.cache.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> LlcConfig {
        // 4 sets × 4 ways × 64 B = 1 KB.
        LlcConfig {
            cache: CacheConfig {
                capacity: 1024,
                ways: 4,
                line_bytes: 64,
            },
            hit_penalty: 12,
        }
    }

    #[test]
    fn even_split_by_default() {
        let llc = SharedLlc::new(small_cfg(), 2);
        assert_eq!(llc.way_allocation(), &[2, 2]);
        assert_eq!(llc.way_masks(), &[0b0011, 0b1100]);
        let llc3 = SharedLlc::new(LlcConfig::default(), 3);
        assert_eq!(llc3.way_allocation().iter().sum::<usize>(), 16);
        assert_eq!(llc3.way_allocation(), &[6, 5, 5]);
    }

    #[test]
    fn fills_stay_within_the_mask() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        // App 0 streams through set 0 (stride = sets × line = 256 B): with
        // only 2 ways it can keep at most 2 lines of the set resident.
        for i in 0..8u64 {
            llc.access(0, i * 256, false);
        }
        // The two most recent lines are resident, older ones evicted.
        assert!(llc.contains(7 * 256));
        assert!(llc.contains(6 * 256));
        assert!(!llc.contains(5 * 256));
        // App 1's ways are untouched: filling two lines for app 1 evicts
        // nothing of app 0's.
        llc.access(1, 0x10000, false);
        llc.access(1, 0x10000 + 256, false);
        assert!(llc.contains(7 * 256));
        assert!(llc.contains(6 * 256));
    }

    #[test]
    fn one_way_minimum_allocation_works() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        llc.set_ways(&[1, 3]);
        // App 0 with a single way: two alternating lines in one set thrash.
        for _ in 0..4 {
            llc.access(0, 0, false);
            llc.access(0, 256, false);
        }
        assert_eq!(llc.counters(0).hits, 0);
        assert_eq!(llc.counters(0).misses, 8);
        // App 1 with three ways keeps three lines of the same set warm.
        for _ in 0..2 {
            llc.access(1, 512, false);
            llc.access(1, 768, false);
            llc.access(1, 1024 + 256, false);
        }
        assert_eq!(llc.counters(1).misses, 3);
        assert_eq!(llc.counters(1).hits, 3);
    }

    #[test]
    fn all_ways_to_one_app() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        // Degenerate but legal only via masks ≥1; the nearest extreme is
        // 3-vs-1. App 0 with 3 ways holds a 3-line working set.
        llc.set_ways(&[3, 1]);
        for _ in 0..2 {
            for i in 0..3u64 {
                llc.access(0, i * 256, false);
            }
        }
        assert_eq!(llc.counters(0).misses, 3);
        assert_eq!(llc.counters(0).hits, 3);
    }

    #[test]
    fn repartition_drains_by_natural_eviction() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        // App 0 warms lines into its ways {0,1}.
        llc.access(0, 0, false);
        llc.access(0, 256, false);
        // Repartition: app 0 shrinks to way {0}, app 1 takes {1,2,3}.
        llc.set_ways(&[1, 3]);
        // Old lines still hit — no teleport, no flush.
        assert_eq!(llc.access(0, 0, false), CacheOutcome::Hit);
        assert_eq!(llc.access(0, 256, false), CacheOutcome::Hit);
        // App 1 filling the set evicts app 0's stale line in way 1 (LRU
        // among app 1's mask: invalid ways 2,3 first, then way 1).
        llc.access(1, 512, false);
        llc.access(1, 768, false);
        assert!(llc.contains(0) && llc.contains(256)); // ways 2,3 were free
        llc.access(1, 1024 + 512, false); // now evicts from way 1
        assert!(!llc.contains(0) || !llc.contains(256));
        // App 0 can still hit whatever survived and fills only way 0.
        let survivors = [0u64, 256].iter().filter(|&&a| llc.contains(a)).count();
        assert_eq!(survivors, 1);
    }

    #[test]
    fn repartition_is_deterministic() {
        let run = || {
            let mut llc = SharedLlc::new(small_cfg(), 2);
            for i in 0..16u64 {
                llc.access((i % 2) as usize, i * 64, i % 3 == 0);
            }
            llc.set_ways(&[3, 1]);
            for i in 0..16u64 {
                llc.access((i % 2) as usize, i * 128, false);
            }
            llc.set_ways(&[2, 2]);
            for i in 0..16u64 {
                llc.access((i % 2) as usize, i * 192, false);
            }
            (
                llc.way_masks().to_vec(),
                (0..2).map(|a| llc.counters(a).clone()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn writeback_absorption_and_spill() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        // A dirty L2 victim installs without DRAM traffic.
        assert_eq!(llc.writeback(0, 0), None);
        assert_eq!(llc.counters(0).writebacks_absorbed, 1);
        // Installing two more dirty lines into app 0's 2 ways displaces
        // the first — now a DRAM write.
        assert_eq!(llc.writeback(0, 256), None);
        assert_eq!(llc.writeback(0, 512), Some(0));
    }

    #[test]
    #[should_panic(expected = "sum to the LLC's associativity")]
    fn bad_way_counts_panic() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        llc.set_ways(&[2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panic() {
        let mut llc = SharedLlc::new(small_cfg(), 2);
        llc.set_ways(&[4, 0]);
    }
}
