#![warn(missing_docs)]

//! # bwpart-cmp — the chip-multiprocessor simulator
//!
//! The full-system substrate replacing GEM5 in the paper's methodology: N
//! cores, private L1/L2 cache hierarchies, and a shared
//! [`bwpart_mc::MemoryController`] in front of the [`bwpart_dram`] DDR
//! model (Table II configuration).
//!
//! The core model is deliberately at the altitude the analytical model
//! needs: an out-of-order core abstracted to issue width, a reorder-buffer
//! window, and MSHR-bounded memory-level parallelism. Its IPC degrades
//! exactly the way Eq. 1 captures — when the memory system limits an
//! application, `IPC → APC/API`; when it doesn't, IPC saturates at the
//! core's intrinsic rate.
//!
//! * [`cache`] — set-associative write-back/write-allocate caches with LRU
//!   and proper dirty-eviction traffic.
//! * [`core`] — the core model and the [`Workload`] trait it executes.
//! * [`llc`] — the shared, way-partitioned last-level cache between the
//!   private L2s and the memory controller (fill-time mask enforcement).
//! * [`system`] — [`CmpSystem`]: cores × caches × controller × DRAM on a
//!   global CPU-cycle loop.
//! * [`runner`] — the paper's phase methodology (warm-up → profile →
//!   measure, Section V-B) plus standalone runs for ground-truth
//!   `APC_alone`.
//! * [`hybrid`] — analytic hybrid stepping: detect bandwidth steady state
//!   and jump over it with the closed-form model's counter rates
//!   (tolerance-certified against cycle-exact runs).
//! * [`obs`] — observability wiring: cycle-loop hooks for `bwpart-obs`
//!   and the [`RunObserver`] bundle for instrumented runs.
//! * [`stats`] — per-application counters and derived rates.

pub mod cache;
pub mod core;
pub mod hybrid;
pub mod llc;
pub mod obs;
pub mod runner;
pub mod stats;
pub mod system;

pub use crate::core::{Access, Core, CoreConfig, IdleState, Workload};
pub use cache::{Cache, CacheConfig};
pub use hybrid::HybridConfig;
pub use llc::{LlcAppCounters, LlcConfig, SharedLlc};
pub use obs::{CmpObsHooks, RunObserver};
pub use runner::{PhaseConfig, Runner, ShareSource, SimOutcome};
pub use stats::AppStats;
pub use system::{CmpConfig, CmpSystem, Snapshot};
