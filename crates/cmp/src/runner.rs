//! Phase-structured simulation driver mirroring Section V-B's methodology:
//! warm up the caches, profile `APC_alone` online, then measure under the
//! chosen partitioning scheme — plus standalone runs for ground truth.

use bwpart_core::prelude::*;
use bwpart_mc::Policy;
use bwpart_obs::{obs_span, Tracer};
use serde::{Deserialize, Serialize};

use crate::core::{CoreConfig, Workload};
use crate::obs::RunObserver;
use crate::stats::AppStats;
use crate::system::{CmpConfig, CmpSystem};

/// Cycle budgets for the three phases. The paper uses 500 M instructions of
/// fast-forward plus 10 M-cycle profile and measurement phases; the default
/// here is a scaled-down equivalent suited to a software-simulated
/// synthetic workload whose caches warm in well under a million cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Cache warm-up cycles (no statistics).
    pub warmup: u64,
    /// Profiling cycles (online `APC_alone` estimation, Section IV-C).
    pub profile: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// If set, re-profile and re-partition every this many cycles during
    /// measurement (the paper's periodic update, Section IV-C).
    pub repartition_epoch: Option<u64>,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        PhaseConfig {
            warmup: 1_000_000,
            profile: 3_000_000,
            measure: 5_000_000,
            repartition_epoch: None,
        }
    }
}

impl PhaseConfig {
    /// A tiny configuration for unit tests.
    pub fn fast() -> Self {
        PhaseConfig {
            warmup: 100_000,
            profile: 300_000,
            measure: 400_000,
            repartition_epoch: None,
        }
    }
}

/// Where the `APC_alone`/`API` reference values come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShareSource {
    /// Estimate online from the profile phase (Eq. 12–13) — the paper's
    /// default methodology.
    OnlineProfile,
    /// Use externally supplied reference values (e.g. ground truth from
    /// standalone runs, or OS-provided targets as Section IV-C suggests).
    Provided {
        /// `APC_alone` per application.
        apc_alone: Vec<f64>,
        /// `API` per application.
        api: Vec<f64>,
    },
}

/// Ground-truth standalone profile of one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AloneProfile {
    /// Workload name.
    pub name: String,
    /// Standalone accesses per cycle.
    pub apc_alone: f64,
    /// Accesses per instruction.
    pub api: f64,
    /// Standalone IPC.
    pub ipc_alone: f64,
    /// Full stats of the standalone measurement window.
    pub stats: AppStats,
}

/// Everything measured for one (workload, scheme) simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Scheme name.
    pub scheme: String,
    /// Per-application measurement-phase stats.
    pub stats: Vec<AppStats>,
    /// Reference `APC_alone` values used for partitioning *and* metrics
    /// (the paper uses the same estimates for both).
    pub apc_alone_ref: Vec<f64>,
    /// Reference `API` values.
    pub api_ref: Vec<f64>,
    /// Total bandwidth observed during measurement (APC).
    pub total_bandwidth: f64,
}

impl SimOutcome {
    /// Shared-mode IPCs.
    pub fn ipc_shared(&self) -> Vec<f64> {
        self.stats.iter().map(|s| s.ipc()).collect()
    }

    /// Reference standalone IPCs (`APC_alone / API`, Eq. 1).
    pub fn ipc_alone_ref(&self) -> Vec<f64> {
        self.apc_alone_ref
            .iter()
            .zip(&self.api_ref)
            .map(|(&apc, &api)| {
                if api > 0.0 {
                    apc / api
                } else {
                    f64::MIN_POSITIVE
                }
            })
            .collect()
    }

    /// Evaluate one of the paper's four objectives on this outcome.
    pub fn metric(&self, m: Metric) -> f64 {
        metrics::evaluate(m, &self.ipc_shared(), &self.ipc_alone_ref())
            // lint: allow(R1): ipc_alone_ref() clamps to positive finite values
            .expect("well-formed outcome vectors")
    }

    /// Per-application speedups.
    pub fn speedups(&self) -> Vec<f64> {
        metrics::speedups(&self.ipc_shared(), &self.ipc_alone_ref())
            // lint: allow(R1): ipc_alone_ref() clamps to positive finite values
            .expect("well-formed outcome vectors")
    }
}

/// The phase driver.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    /// System configuration.
    pub cmp: CmpConfig,
    /// Phase budgets.
    pub phases: PhaseConfig,
}

fn clamp_pos(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        1e-9
    }
}

fn profiles_from(names: &[String], apc_alone: &[f64], api: &[f64]) -> Vec<AppProfile> {
    names
        .iter()
        .zip(apc_alone.iter().zip(api))
        .map(|(n, (&apc, &a))| {
            AppProfile::new(n.clone(), clamp_pos(a), clamp_pos(apc))
                // lint: allow(R1): clamp_pos guarantees finite positive inputs
                .expect("clamped values are valid")
        })
        .collect()
}

/// Record one per-app share counter sample per application (track id =
/// app index) for share-based schemes; priority/baseline schemes have no
/// share vector, so nothing is emitted.
fn emit_share_tracks(
    tracer: &Tracer,
    scheme: PartitionScheme,
    profiles: &[AppProfile],
    b: f64,
    ts: u64,
) {
    if let Ok(shares) = scheme.shares(profiles, b) {
        for (app, &s) in shares.iter().enumerate() {
            tracer.counter_at("share", app as u64, ts, s);
        }
    }
}

impl Runner {
    /// Build the scheduling policy realizing `scheme` for `profiles` over
    /// total bandwidth `b`.
    pub fn policy_for(scheme: PartitionScheme, profiles: &[AppProfile], b: f64) -> Policy {
        let n = profiles.len();
        match scheme {
            PartitionScheme::NoPartitioning => Policy::fcfs(n),
            PartitionScheme::PriorityApc => {
                Policy::priority(profiles.iter().map(|p| p.apc_alone).collect())
            }
            PartitionScheme::PriorityApi => {
                Policy::priority(profiles.iter().map(|p| p.api).collect())
            }
            _ => Policy::stf(
                scheme
                    .shares(profiles, b)
                    // lint: allow(R1): the match covers every non-power scheme above
                    .expect("power-family schemes always yield shares"),
            ),
        }
    }

    /// Run one workload mix under `scheme`, following the paper's phase
    /// methodology. `workloads[i]` runs on core `i` with `core_cfgs[i]`.
    pub fn run_scheme(
        &self,
        scheme: PartitionScheme,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        source: ShareSource,
    ) -> SimOutcome {
        self.run_scheme_traced(scheme, workloads, core_cfgs, source, None)
    }

    /// [`run_scheme`](Self::run_scheme) with observability: the system
    /// stack attaches to `obs.registry`, derived gauges are published at
    /// every phase/epoch boundary, and — when `obs.tracer` is set — the
    /// cycle-domain timeline is recorded (phase instants, per-epoch
    /// complete events, per-app share counter tracks) alongside
    /// wall-clock phase spans. Passing `None` is byte-identical to
    /// [`run_scheme`](Self::run_scheme); observation never changes the
    /// simulation.
    pub fn run_scheme_traced(
        &self,
        scheme: PartitionScheme,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        source: ShareSource,
        obs: Option<&RunObserver>,
    ) -> SimOutcome {
        let n = workloads.len();
        let mut sys = CmpSystem::new(&self.cmp, workloads, core_cfgs, Policy::fcfs(n));
        // Warm-up and profiling stay cycle-exact even in hybrid runs: the
        // online estimates (and hence the enforced partition) must be
        // identical to an exact run's; only measurement is jumped over.
        sys.set_hybrid_armed(false);
        if let Some(o) = obs {
            sys.attach_obs(&o.registry);
        }
        let tracer: Option<&Tracer> = obs.and_then(|o| o.tracer.as_ref());
        let names: Vec<String> = (0..n)
            .map(|i| sys.core(i).workload_name().to_string())
            .collect();

        // Phase 1: warm-up.
        {
            obs_span!(tracer, "phase:warmup");
            sys.run(self.phases.warmup);
        }
        if let Some(t) = tracer {
            t.instant_at("warmup_end", 0, sys.cycle());
        }

        // Phase 2: profile under the unmanaged baseline.
        sys.reset_phase_counters();
        let _ = sys.mc_mut().take_epoch_counters();
        {
            obs_span!(tracer, "phase:profile");
            sys.run(self.phases.profile);
        }
        let (acc, intf) = sys.mc_mut().take_epoch_counters();
        let instr: Vec<u64> = (0..n).map(|i| sys.core(i).counters.retired).collect();
        let elapsed = self.phases.profile;
        let floor = (elapsed / 50).max(1);
        let apc_alone_est: Vec<f64> = acc
            .iter()
            .zip(&intf)
            .map(|(&a, &i)| a as f64 / elapsed.saturating_sub(i).max(floor) as f64)
            .collect();
        let api_est: Vec<f64> = acc
            .iter()
            .zip(&instr)
            .map(|(&a, &ins)| a as f64 / ins.max(1) as f64)
            .collect();
        let b_est = acc.iter().sum::<u64>() as f64 / elapsed as f64;

        let (apc_alone_ref, api_ref) = match source {
            ShareSource::OnlineProfile => (apc_alone_est, api_est),
            ShareSource::Provided { apc_alone, api } => {
                assert_eq!(apc_alone.len(), n, "apc_alone length");
                assert_eq!(api.len(), n, "api length");
                (apc_alone, api)
            }
        };
        let profiles = profiles_from(&names, &apc_alone_ref, &api_ref);
        sys.mc_mut()
            .set_policy(Self::policy_for(scheme, &profiles, clamp_pos(b_est)));
        if let Some(t) = tracer {
            t.instant_at("profile_end", 0, sys.cycle());
            emit_share_tracks(t, scheme, &profiles, clamp_pos(b_est), sys.cycle());
        }

        // Phase 3: measure (optionally re-profiling each epoch).
        sys.set_hybrid_armed(true);
        sys.reset_phase_counters();
        let start = sys.snapshot();
        obs_span!(tracer, "phase:measure");
        match self.phases.repartition_epoch {
            Some(epoch) if epoch > 0 && epoch < self.phases.measure => {
                let mut remaining = self.phases.measure;
                while remaining > 0 {
                    let chunk = epoch.min(remaining);
                    let epoch_start = sys.cycle();
                    sys.run(chunk);
                    remaining -= chunk;
                    if let Some(t) = tracer {
                        t.complete_at("epoch", 0, epoch_start, chunk);
                    }
                    if let Some(o) = obs {
                        sys.publish_metrics(&o.registry);
                    }
                    if remaining > 0 {
                        let (acc, intf) = sys.mc_mut().take_epoch_counters();
                        let floor = (chunk / 50).max(1);
                        let apc: Vec<f64> = acc
                            .iter()
                            .zip(&intf)
                            .map(|(&a, &i)| a as f64 / chunk.saturating_sub(i).max(floor) as f64)
                            .collect();
                        // Update the enforced partition from fresh estimates
                        // (API is stable; keep the reference values).
                        let fresh = profiles_from(&names, &apc, &api_ref);
                        match scheme {
                            PartitionScheme::NoPartitioning => {}
                            PartitionScheme::PriorityApc => sys
                                .mc_mut()
                                .policy_mut()
                                .set_keys(fresh.iter().map(|p| p.apc_alone).collect()),
                            PartitionScheme::PriorityApi => {}
                            _ => {
                                if let Ok(shares) = scheme.shares(&fresh, clamp_pos(b_est)) {
                                    if let Some(t) = tracer {
                                        for (app, &s) in shares.iter().enumerate() {
                                            t.counter_at("share", app as u64, sys.cycle(), s);
                                        }
                                    }
                                    sys.mc_mut().policy_mut().set_shares(shares);
                                }
                            }
                        }
                    }
                }
            }
            _ => sys.run(self.phases.measure),
        }
        let end = sys.snapshot();
        let stats = sys.window_stats(&start, &end);
        let total_bandwidth =
            stats.iter().map(|s| s.mem_accesses).sum::<u64>() as f64 / self.phases.measure as f64;
        if let Some(o) = obs {
            sys.publish_metrics(&o.registry);
            o.registry
                .gauge("run_total_bandwidth_apc")
                .set(total_bandwidth);
        }
        if let Some(t) = tracer {
            t.instant_at("measure_end", 0, sys.cycle());
        }

        SimOutcome {
            scheme: scheme.name(),
            stats,
            apc_alone_ref,
            api_ref,
            total_bandwidth,
        }
    }

    /// Run a mix with an explicit share vector enforced by start-time-fair
    /// scheduling (used by the QoS experiments).
    pub fn run_with_shares(
        &self,
        shares: Vec<f64>,
        label: &str,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        apc_alone_ref: Vec<f64>,
        api_ref: Vec<f64>,
    ) -> SimOutcome {
        self.run_with_allocation(
            shares,
            None,
            label,
            workloads,
            core_cfgs,
            apc_alone_ref,
            api_ref,
        )
    }

    /// Run a mix under an explicit multi-resource allocation: a bandwidth
    /// share vector enforced by start-time-fair scheduling plus, when
    /// `ways` is given, an LLC way partition installed before warm-up so
    /// the caches warm under the enforced regime (the coordinated-solver
    /// enforcement path; requires [`CmpConfig::llc`] to be set).
    // The seven knobs mirror the coordinated enforcement tuple (shares,
    // way masks, workloads, references); a builder would obscure the
    // one-call experiment surface.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_allocation(
        &self,
        shares: Vec<f64>,
        ways: Option<&[usize]>,
        label: &str,
        workloads: Vec<Box<dyn Workload>>,
        core_cfgs: Vec<CoreConfig>,
        apc_alone_ref: Vec<f64>,
        api_ref: Vec<f64>,
    ) -> SimOutcome {
        let n = workloads.len();
        assert_eq!(shares.len(), n);
        let mut sys = CmpSystem::new(&self.cmp, workloads, core_cfgs, Policy::fcfs(n));
        if let Some(w) = ways {
            sys.set_llc_ways(w);
        }
        sys.set_hybrid_armed(false);
        sys.run(self.phases.warmup + self.phases.profile);
        sys.set_hybrid_armed(true);
        sys.mc_mut().set_policy(Policy::stf(shares));
        sys.reset_phase_counters();
        let _ = sys.mc_mut().take_epoch_counters();
        let start = sys.snapshot();
        sys.run(self.phases.measure);
        let end = sys.snapshot();
        let stats = sys.window_stats(&start, &end);
        let total_bandwidth =
            stats.iter().map(|s| s.mem_accesses).sum::<u64>() as f64 / self.phases.measure as f64;
        SimOutcome {
            scheme: label.to_string(),
            stats,
            apc_alone_ref,
            api_ref,
            total_bandwidth,
        }
    }

    /// Standalone run: the workload owns the whole memory system. Returns
    /// ground-truth `APC_alone`, `API` and `IPC_alone` (Table III's
    /// measurement).
    pub fn run_alone(&self, workload: Box<dyn Workload>, core_cfg: CoreConfig) -> AloneProfile {
        let mut sys = CmpSystem::new(&self.cmp, vec![workload], vec![core_cfg], Policy::fcfs(1));
        sys.set_hybrid_armed(false);
        sys.run(self.phases.warmup);
        sys.set_hybrid_armed(true);
        sys.reset_phase_counters();
        let _ = sys.mc_mut().take_epoch_counters();
        let start = sys.snapshot();
        sys.run(self.phases.measure);
        let end = sys.snapshot();
        let stats = sys.window_stats(&start, &end).remove(0);
        AloneProfile {
            name: stats.name.clone(),
            apc_alone: stats.apc(),
            api: stats.api(),
            ipc_alone: stats.ipc(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Access;

    /// Deterministic two-region workload: streams with probability
    /// controlled by a pattern, hot set otherwise.
    struct Synthetic {
        name: String,
        gap: u32,
        stream_period: u32, // every k-th access streams (misses)
        counter: u32,
        stream_next: u64,
        hot_next: u64,
    }

    impl Synthetic {
        fn new(name: &str, gap: u32, stream_period: u32) -> Self {
            Synthetic {
                name: name.into(),
                gap,
                stream_period,
                counter: 0,
                stream_next: 1 << 24,
                hot_next: 0,
            }
        }
    }

    impl Workload for Synthetic {
        fn next_access(&mut self) -> Access {
            self.counter += 1;
            if self.counter.is_multiple_of(self.stream_period) {
                let a = self.stream_next;
                self.stream_next += 64;
                Access {
                    gap: self.gap,
                    addr: a,
                    is_write: false,
                }
            } else {
                let a = self.hot_next % (16 * 1024); // L1-resident hot set
                self.hot_next += 64;
                Access {
                    gap: self.gap,
                    addr: a,
                    is_write: false,
                }
            }
        }
        fn name(&self) -> &str {
            &self.name
        }
    }

    fn heavy() -> Box<dyn Workload> {
        Box::new(Synthetic::new("heavy", 4, 2))
    }
    fn light() -> Box<dyn Workload> {
        Box::new(Synthetic::new("light", 4, 40))
    }

    fn runner() -> Runner {
        Runner {
            cmp: CmpConfig::default(),
            phases: PhaseConfig::fast(),
        }
    }

    #[test]
    fn alone_run_reports_consistent_rates() {
        let p = runner().run_alone(heavy(), CoreConfig::default());
        assert!(p.apc_alone > 0.0);
        assert!(p.api > 0.0);
        assert!((p.ipc_alone - p.apc_alone / p.api).abs() / p.ipc_alone < 1e-6);
        // Heavy streamer on DDR2-400 should push near the bus limit.
        assert!(p.apc_alone > 0.006, "APC {}", p.apc_alone);
    }

    #[test]
    fn heavy_and_light_profiles_differ() {
        let r = runner();
        let h = r.run_alone(heavy(), CoreConfig::default());
        let l = r.run_alone(light(), CoreConfig::default());
        assert!(h.api > 3.0 * l.api, "API: {} vs {}", h.api, l.api);
        assert!(h.apc_alone > l.apc_alone);
    }

    #[test]
    fn online_profile_estimates_are_positive_and_bounded() {
        let r = runner();
        let out = r.run_scheme(
            PartitionScheme::Equal,
            vec![heavy(), heavy(), light(), light()],
            vec![CoreConfig::default(); 4],
            ShareSource::OnlineProfile,
        );
        for (i, &apc) in out.apc_alone_ref.iter().enumerate() {
            assert!(apc > 0.0, "app {i} estimate zero");
            assert!(apc < 0.02, "app {i} estimate {apc} implausible");
        }
        // The heavies should be estimated as more intensive than the lights.
        assert!(out.apc_alone_ref[0] > out.apc_alone_ref[2]);
    }

    #[test]
    fn equal_partitioning_equalizes_service_of_identical_apps() {
        let r = runner();
        let out = r.run_scheme(
            PartitionScheme::Equal,
            vec![heavy(), heavy()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
        );
        let a = out.stats[0].apc();
        let b = out.stats[1].apc();
        assert!((a - b).abs() / a < 0.1, "APCs {a} vs {b}");
    }

    #[test]
    fn priority_scheme_starves_the_heavy_app() {
        let r = runner();
        let out = r.run_scheme(
            PartitionScheme::PriorityApc,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
        );
        // light (low APC_alone) is served first; heavy gets leftovers. The
        // light app keeps most of its standalone speed (it still pays
        // priority-inversion latency behind in-flight heavy bursts).
        let speedups = out.speedups();
        assert!(
            speedups[1] > 0.7,
            "light app should keep most standalone speed, got {}",
            speedups[1]
        );
        assert!(
            speedups[1] > speedups[0],
            "priority must favour the light app: {speedups:?}"
        );
    }

    #[test]
    fn provided_source_overrides_estimates() {
        let r = runner();
        let out = r.run_scheme(
            PartitionScheme::SquareRoot,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::Provided {
                apc_alone: vec![0.008, 0.001],
                api: vec![0.05, 0.005],
            },
        );
        assert_eq!(out.apc_alone_ref, vec![0.008, 0.001]);
        assert_eq!(out.api_ref, vec![0.05, 0.005]);
    }

    #[test]
    fn run_with_shares_biases_bandwidth() {
        let r = runner();
        // Two identical heavy apps with a 4:1 share split.
        let out = r.run_with_shares(
            vec![0.8, 0.2],
            "custom",
            vec![heavy(), heavy()],
            vec![CoreConfig::default(); 2],
            vec![0.008, 0.008],
            vec![0.08, 0.08],
        );
        let ratio = out.stats[0].apc() / out.stats[1].apc();
        assert!(
            ratio > 2.5,
            "share enforcement should bias service 4:1, got {ratio}"
        );
    }

    #[test]
    fn repartitioning_epochs_do_not_break_measurement() {
        let mut r = runner();
        r.phases.repartition_epoch = Some(100_000);
        let out = r.run_scheme(
            PartitionScheme::SquareRoot,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
        );
        assert!(out.metric(Metric::HarmonicWeightedSpeedup) > 0.0);
        assert!(out.total_bandwidth > 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_collects_the_timeline() {
        let mut r = runner();
        r.phases.repartition_epoch = Some(100_000);
        let plain = r.run_scheme(
            PartitionScheme::SquareRoot,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
        );
        let obs = crate::obs::RunObserver::with_tracer(4096);
        let traced = r.run_scheme_traced(
            PartitionScheme::SquareRoot,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
            Some(&obs),
        );
        // Observation must not perturb the simulation.
        let counters = |o: &SimOutcome| -> Vec<(u64, u64)> {
            o.stats
                .iter()
                .map(|s| (s.instructions, s.mem_accesses))
                .collect()
        };
        assert_eq!(counters(&plain), counters(&traced));
        assert_eq!(plain.apc_alone_ref, traced.apc_alone_ref);
        // Metrics were published…
        let snap = obs.registry.snapshot();
        assert!(snap
            .gauges
            .iter()
            .any(|g| g.name == "run_total_bandwidth_apc"));
        // …and the cycle-domain timeline was recorded: 4 epoch windows,
        // the phase instants, and per-app share tracks for both apps.
        // lint: allow(R1): with_tracer always sets the tracer
        let events = obs.tracer.as_ref().unwrap().events();
        use bwpart_obs::EventPhase;
        let epochs = events
            .iter()
            .filter(|e| e.name == "epoch" && e.ph == EventPhase::Complete)
            .count();
        assert_eq!(epochs, 4, "400k measure cycles / 100k epochs");
        assert!(events.iter().any(|e| e.name == "profile_end"));
        for app in 0..2u64 {
            assert!(
                events
                    .iter()
                    .any(|e| e.name == "share" && e.tid == app && e.value.is_some()),
                "missing share track for app {app}"
            );
        }
    }

    #[test]
    fn outcome_metrics_are_consistent() {
        let r = runner();
        let out = r.run_scheme(
            PartitionScheme::Equal,
            vec![heavy(), light()],
            vec![CoreConfig::default(); 2],
            ShareSource::OnlineProfile,
        );
        let hsp = out.metric(Metric::HarmonicWeightedSpeedup);
        let wsp = out.metric(Metric::WeightedSpeedup);
        assert!(hsp > 0.0 && wsp >= hsp - 1e-12, "Hsp {hsp} Wsp {wsp}");
        let ipcsum = out.metric(Metric::SumOfIpcs);
        assert!((ipcsum - out.ipc_shared().iter().sum::<f64>()).abs() < 1e-12);
    }
}
