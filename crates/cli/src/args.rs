//! Hand-rolled argument parsing (no external dependency needed for six
//! subcommands).

use bwpart_core::prelude::*;

/// Parsed application spec from `--app name:api:apc_alone`.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// Accesses per instruction.
    pub api: f64,
    /// Standalone accesses per cycle.
    pub apc_alone: f64,
}

impl AppSpec {
    /// Parse `name:api:apc_alone`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--app expects name:api:apc_alone, got `{s}`"));
        }
        let api: f64 = parts[1].parse().map_err(|_| format!("bad api in `{s}`"))?;
        let apc: f64 = parts[2]
            .parse()
            .map_err(|_| format!("bad apc_alone in `{s}`"))?;
        Ok(AppSpec {
            name: parts[0].to_string(),
            api,
            apc_alone: apc,
        })
    }

    /// Convert to a model profile.
    pub fn to_profile(&self) -> Result<AppProfile, String> {
        AppProfile::new(self.name.clone(), self.api, self.apc_alone).map_err(|e| e.to_string())
    }
}

/// Parse a scheme name via the canonical `bwpart_core` parser (kebab-case
/// names, the paper's spellings, and `power:<alpha>` all accepted).
pub fn parse_scheme(s: &str) -> Result<PartitionScheme, String> {
    s.parse().map_err(|e: ModelError| e.to_string())
}

/// One fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// `partition`: derive a share vector.
    Partition {
        /// The scheme to apply.
        scheme: PartitionScheme,
        /// Total bandwidth (APC).
        bandwidth: f64,
        /// The applications.
        apps: Vec<AppSpec>,
    },
    /// `predict`: share vector plus forward-model metrics.
    Predict {
        /// The scheme to apply.
        scheme: PartitionScheme,
        /// Total bandwidth (APC).
        bandwidth: f64,
        /// The applications.
        apps: Vec<AppSpec>,
    },
    /// `simulate`: run one mix × scheme on the simulator.
    Simulate {
        /// Mix name.
        mix: String,
        /// Scheme.
        scheme: PartitionScheme,
        /// Reduced-fidelity phases.
        fast: bool,
        /// Stream seed.
        seed: u64,
    },
    /// `profile`: online APC_alone estimates for a mix.
    Profile {
        /// Mix name.
        mix: String,
        /// Reduced-fidelity phases.
        fast: bool,
        /// Stream seed.
        seed: u64,
    },
    /// `trace`: simulate a mix with observability attached and export a
    /// Chrome trace-event timeline (plus an optional metrics dump).
    Trace {
        /// Mix name.
        mix: String,
        /// Scheme.
        scheme: PartitionScheme,
        /// Reduced-fidelity phases.
        fast: bool,
        /// Stream seed.
        seed: u64,
        /// Output path for the Chrome trace-event JSON.
        out: String,
        /// Optional output path for a Prometheus-style metrics dump.
        metrics_out: Option<String>,
    },
    /// `mixes`: list the available mixes.
    Mixes,
    /// `serve`: run the online `bwpartd` partitioning service.
    Serve {
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Epoch repartitioning scheme.
        scheme: PartitionScheme,
        /// Total bandwidth `B` to partition (APC).
        bandwidth: f64,
        /// Total shared-LLC ways to co-partition (required for the
        /// `coordinated` scheme, enables `coordinated` what-ifs elsewhere).
        ways: Option<usize>,
        /// Epoch interval in milliseconds.
        epoch_ms: u64,
        /// Exit after this many epochs (`None` → run until a client sends
        /// shutdown).
        epochs: Option<u64>,
        /// Use the reactor front-end (vendored-mio event loops) instead of
        /// a thread per connection.
        reactor: bool,
        /// Number of tenant shards (independent epoch engines).
        shards: usize,
        /// Reactor worker threads (`0` → auto).
        workers: usize,
    },
    /// `client`: one request against a running `bwpartd` service.
    Client {
        /// Service address (`host:port`).
        addr: String,
        /// Wire codec to frame requests in.
        codec: bwpartd::Codec,
        /// The operation to perform.
        op: ClientOp,
    },
    /// `experiment`: regenerate a paper artifact.
    Experiment {
        /// Artifact name.
        artifact: String,
        /// Reduced-fidelity run.
        fast: bool,
    },
}

/// One `bwpart client` operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Register an application
    /// (`register <name> <api> [--cache api_llc:cpi_base:mem_penalty:w=m,...]`).
    Register {
        /// Application name.
        name: String,
        /// Accesses per instruction.
        api: f64,
        /// Optional client-measured cache profile enabling coordinated
        /// (bandwidth × LLC ways) solves.
        cache: Option<bwpartd::CacheSpec>,
    },
    /// Report a telemetry delta
    /// (`telemetry <app_id> <accesses> <shared_cycles> <interference_cycles>`).
    Telemetry {
        /// Application id from `register`.
        app_id: usize,
        /// `ΔN_accesses`.
        accesses: u64,
        /// `ΔT_cyc,shared`.
        shared_cycles: u64,
        /// `ΔT_cyc,interference`.
        interference_cycles: u64,
    },
    /// Fetch shares (`get-shares [<scheme>]`).
    GetShares {
        /// Optional what-if scheme.
        scheme: Option<String>,
    },
    /// Fetch one tenant group's shares (`group-shares <group> [<scheme>]`).
    GroupShares {
        /// Tenant group name (app-name prefix before the first `/`).
        group: String,
        /// Optional what-if scheme.
        scheme: Option<String>,
    },
    /// Request a QoS guarantee (`qos-admit <app_id> <ipc_target>`).
    QosAdmit {
        /// Application id from `register`.
        app_id: usize,
        /// Target IPC (Eq. 11).
        ipc_target: f64,
    },
    /// Fetch the service's metrics registry (`metrics`).
    Metrics,
    /// Fetch service counters (`snapshot`).
    Snapshot,
    /// Stop the service (`shutdown`).
    Shutdown,
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

/// Parse a `--cache` value: `api_llc:cpi_base:mem_penalty:w=m,w=m,...`
/// (the comma list is the sampled miss-ratio curve, e.g.
/// `0.05:1.0:60:1=0.95,8=0.4,16=0.03`).
pub fn parse_cache_spec(s: &str) -> Result<bwpartd::CacheSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 4 {
        return Err(format!(
            "--cache expects api_llc:cpi_base:mem_penalty:w=m,... — got `{s}`"
        ));
    }
    let api_llc = parse_num(parts[0], "api_llc")?;
    let cpi_base = parse_num(parts[1], "cpi_base")?;
    let mem_penalty = parse_num(parts[2], "mem_penalty")?;
    let mut mrc = Vec::new();
    for knot in parts[3].split(',') {
        let (w, m) = knot
            .split_once('=')
            .ok_or_else(|| format!("bad MRC knot `{knot}` (expected ways=miss_ratio)"))?;
        mrc.push(bwpartd::MrcPoint {
            ways: parse_num(w, "MRC ways")?,
            miss_ratio: parse_num(m, "MRC miss ratio")?,
        });
    }
    Ok(bwpartd::CacheSpec {
        api_llc,
        cpi_base,
        mem_penalty,
        mrc,
    })
}

impl ClientOp {
    /// Parse the positional tail of a `client` invocation.
    fn parse(args: &[String]) -> Result<ClientOp, String> {
        let op = args.first().ok_or(
            "client requires an operation: register | telemetry | get-shares | group-shares | qos-admit | metrics | snapshot | shutdown",
        )?;
        let arity = |n: usize| -> Result<(), String> {
            if args.len() - 1 == n {
                Ok(())
            } else {
                Err(format!(
                    "`{op}` takes {n} argument(s), got {}",
                    args.len() - 1
                ))
            }
        };
        match op.as_str() {
            "register" => {
                let cache_at = args.iter().position(|a| a == "--cache");
                let positional = cache_at.unwrap_or(args.len());
                if positional != 3 {
                    return Err(format!(
                        "`register` takes 2 argument(s) plus an optional --cache, got {}",
                        positional - 1
                    ));
                }
                let cache = match cache_at {
                    Some(i) => {
                        if args.len() != i + 2 {
                            return Err("--cache takes exactly one value and must come last".into());
                        }
                        Some(parse_cache_spec(&args[i + 1])?)
                    }
                    None => None,
                };
                Ok(ClientOp::Register {
                    name: args[1].clone(),
                    api: parse_num(&args[2], "api")?,
                    cache,
                })
            }
            "telemetry" => {
                arity(4)?;
                Ok(ClientOp::Telemetry {
                    app_id: parse_num(&args[1], "app_id")?,
                    accesses: parse_num(&args[2], "accesses")?,
                    shared_cycles: parse_num(&args[3], "shared_cycles")?,
                    interference_cycles: parse_num(&args[4], "interference_cycles")?,
                })
            }
            "get-shares" => {
                if args.len() > 2 {
                    return Err("`get-shares` takes at most one argument (a scheme)".into());
                }
                Ok(ClientOp::GetShares {
                    scheme: args.get(1).cloned(),
                })
            }
            "group-shares" => {
                if args.len() < 2 || args.len() > 3 {
                    return Err("`group-shares` takes a group and optionally a scheme".into());
                }
                Ok(ClientOp::GroupShares {
                    group: args[1].clone(),
                    scheme: args.get(2).cloned(),
                })
            }
            "qos-admit" => {
                arity(2)?;
                Ok(ClientOp::QosAdmit {
                    app_id: parse_num(&args[1], "app_id")?,
                    ipc_target: parse_num(&args[2], "ipc_target")?,
                })
            }
            "metrics" => {
                arity(0)?;
                Ok(ClientOp::Metrics)
            }
            "snapshot" => {
                arity(0)?;
                Ok(ClientOp::Snapshot)
            }
            "shutdown" => {
                arity(0)?;
                Ok(ClientOp::Shutdown)
            }
            other => Err(format!("unknown client operation `{other}`")),
        }
    }
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} requires a value"))
}

impl Parsed {
    /// Parse a raw argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Parsed, String> {
        let cmd = args.first().ok_or("missing subcommand")?;
        match cmd.as_str() {
            "partition" | "predict" => {
                let mut scheme = None;
                let mut bandwidth = None;
                let mut apps = Vec::new();
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--scheme" => {
                            scheme = Some(parse_scheme(take_value(args, &mut i, "--scheme")?)?)
                        }
                        "--bandwidth" => {
                            let v = take_value(args, &mut i, "--bandwidth")?;
                            bandwidth =
                                Some(v.parse().map_err(|_| format!("bad bandwidth `{v}`"))?);
                        }
                        "--app" => apps.push(AppSpec::parse(take_value(args, &mut i, "--app")?)?),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                let scheme = scheme.ok_or("--scheme is required")?;
                let bandwidth = bandwidth.ok_or("--bandwidth is required")?;
                if apps.is_empty() {
                    return Err("at least one --app is required".into());
                }
                if cmd == "partition" {
                    Ok(Parsed::Partition {
                        scheme,
                        bandwidth,
                        apps,
                    })
                } else {
                    Ok(Parsed::Predict {
                        scheme,
                        bandwidth,
                        apps,
                    })
                }
            }
            "simulate" | "profile" | "trace" => {
                let mut mix = None;
                let mut scheme = PartitionScheme::NoPartitioning;
                let mut fast = false;
                let mut seed = 0xB417_2013u64;
                let mut out = "trace.json".to_string();
                let mut metrics_out = None;
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--mix" => mix = Some(take_value(args, &mut i, "--mix")?.to_string()),
                        "--scheme" => scheme = parse_scheme(take_value(args, &mut i, "--scheme")?)?,
                        "--fast" => fast = true,
                        "--seed" => {
                            let v = take_value(args, &mut i, "--seed")?;
                            seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                        }
                        "--out" if cmd == "trace" => {
                            out = take_value(args, &mut i, "--out")?.to_string()
                        }
                        "--metrics-out" if cmd == "trace" => {
                            metrics_out =
                                Some(take_value(args, &mut i, "--metrics-out")?.to_string())
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                let mix = mix.ok_or("--mix is required")?;
                match cmd.as_str() {
                    "simulate" => Ok(Parsed::Simulate {
                        mix,
                        scheme,
                        fast,
                        seed,
                    }),
                    "trace" => Ok(Parsed::Trace {
                        mix,
                        scheme,
                        fast,
                        seed,
                        out,
                        metrics_out,
                    }),
                    _ => Ok(Parsed::Profile { mix, fast, seed }),
                }
            }
            "mixes" => Ok(Parsed::Mixes),
            "serve" => {
                let mut addr = "127.0.0.1:0".to_string();
                let mut scheme = PartitionScheme::SquareRoot;
                let mut bandwidth = 0.0095;
                let mut ways = None;
                let mut epoch_ms = 100;
                let mut epochs = None;
                let mut reactor = false;
                let mut shards = 1usize;
                let mut workers = 0usize;
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--addr" => addr = take_value(args, &mut i, "--addr")?.to_string(),
                        "--scheme" => scheme = parse_scheme(take_value(args, &mut i, "--scheme")?)?,
                        "--bandwidth" => {
                            bandwidth =
                                parse_num(take_value(args, &mut i, "--bandwidth")?, "bandwidth")?
                        }
                        "--ways" => {
                            let w: usize = parse_num(take_value(args, &mut i, "--ways")?, "ways")?;
                            if w == 0 {
                                return Err("--ways must be at least 1".into());
                            }
                            ways = Some(w);
                        }
                        "--epoch-ms" => {
                            epoch_ms =
                                parse_num(take_value(args, &mut i, "--epoch-ms")?, "epoch-ms")?
                        }
                        "--epochs" => {
                            epochs =
                                Some(parse_num(take_value(args, &mut i, "--epochs")?, "epochs")?)
                        }
                        "--reactor" => reactor = true,
                        "--shards" => {
                            shards = parse_num(take_value(args, &mut i, "--shards")?, "shards")?;
                            if shards == 0 {
                                return Err("--shards must be at least 1".into());
                            }
                        }
                        "--workers" => {
                            workers = parse_num(take_value(args, &mut i, "--workers")?, "workers")?
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                Ok(Parsed::Serve {
                    addr,
                    scheme,
                    bandwidth,
                    ways,
                    epoch_ms,
                    epochs,
                    reactor,
                    shards,
                    workers,
                })
            }
            "client" => {
                let mut addr = None;
                let mut codec = bwpartd::Codec::Json;
                let mut rest = Vec::new();
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--addr" => addr = Some(take_value(args, &mut i, "--addr")?.to_string()),
                        "--codec" => codec = take_value(args, &mut i, "--codec")?.parse()?,
                        other => rest.push(other.to_string()),
                    }
                    i += 1;
                }
                let addr = addr.ok_or("--addr is required for client")?;
                Ok(Parsed::Client {
                    addr,
                    codec,
                    op: ClientOp::parse(&rest)?,
                })
            }
            "experiment" => {
                let artifact = args
                    .get(1)
                    .ok_or("experiment requires an artifact name")?
                    .clone();
                let fast = args.iter().any(|a| a == "--fast");
                Ok(Parsed::Experiment { artifact, fast })
            }
            other => Err(format!("unknown subcommand `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn app_spec_parses() {
        let a = AppSpec::parse("lbm:0.053:0.0094").unwrap();
        assert_eq!(a.name, "lbm");
        assert!((a.api - 0.053).abs() < 1e-12);
        assert!((a.apc_alone - 0.0094).abs() < 1e-12);
        assert!(AppSpec::parse("missing:fields").is_err());
        assert!(AppSpec::parse("x:abc:1").is_err());
    }

    #[test]
    fn scheme_names_parse() {
        assert_eq!(
            parse_scheme("Square_root").unwrap(),
            PartitionScheme::SquareRoot
        );
        assert_eq!(
            parse_scheme("square-root").unwrap(),
            PartitionScheme::SquareRoot
        );
        assert_eq!(
            parse_scheme("2/3_power").unwrap(),
            PartitionScheme::TwoThirdsPower
        );
        assert_eq!(
            parse_scheme("power:0.8").unwrap(),
            PartitionScheme::Power(0.8)
        );
        assert!(parse_scheme("bogus").is_err());
        assert!(parse_scheme("bogus")
            .unwrap_err()
            .contains("unknown scheme"));
        assert!(parse_scheme("power:x").is_err());
    }

    #[test]
    fn partition_command_parses() {
        let p = Parsed::parse(&v(&[
            "partition",
            "--scheme",
            "Equal",
            "--bandwidth",
            "0.0095",
            "--app",
            "a:0.01:0.005",
            "--app",
            "b:0.02:0.003",
        ]))
        .unwrap();
        match p {
            Parsed::Partition {
                scheme,
                bandwidth,
                apps,
            } => {
                assert_eq!(scheme, PartitionScheme::Equal);
                assert!((bandwidth - 0.0095).abs() < 1e-12);
                assert_eq!(apps.len(), 2);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(Parsed::parse(&v(&["partition", "--scheme", "Equal"])).is_err());
        assert!(Parsed::parse(&v(&["simulate", "--scheme", "Equal"])).is_err());
        assert!(Parsed::parse(&v(&["unknown"])).is_err());
        assert!(Parsed::parse(&[]).is_err());
        assert!(Parsed::parse(&v(&["partition", "--scheme"])).is_err());
    }

    #[test]
    fn simulate_defaults_and_flags() {
        let p = Parsed::parse(&v(&[
            "simulate",
            "--mix",
            "hetero-5",
            "--scheme",
            "Priority_APC",
            "--fast",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Simulate {
                mix: "hetero-5".into(),
                scheme: PartitionScheme::PriorityApc,
                fast: true,
                seed: 7,
            }
        );
    }

    #[test]
    fn trace_defaults_and_flags() {
        let p = Parsed::parse(&v(&["trace", "--mix", "hetero-1"])).unwrap();
        assert_eq!(
            p,
            Parsed::Trace {
                mix: "hetero-1".into(),
                scheme: PartitionScheme::NoPartitioning,
                fast: false,
                seed: 0xB417_2013,
                out: "trace.json".into(),
                metrics_out: None,
            }
        );
        let p = Parsed::parse(&v(&[
            "trace",
            "--mix",
            "homo-3",
            "--scheme",
            "square-root",
            "--fast",
            "--out",
            "tl.json",
            "--metrics-out",
            "metrics.prom",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Trace {
                mix: "homo-3".into(),
                scheme: PartitionScheme::SquareRoot,
                fast: true,
                seed: 0xB417_2013,
                out: "tl.json".into(),
                metrics_out: Some("metrics.prom".into()),
            }
        );
        // `--out` belongs to `trace` only.
        assert!(Parsed::parse(&v(&["simulate", "--mix", "homo-1", "--out", "x"])).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let p = Parsed::parse(&v(&["serve"])).unwrap();
        assert_eq!(
            p,
            Parsed::Serve {
                addr: "127.0.0.1:0".into(),
                scheme: PartitionScheme::SquareRoot,
                bandwidth: 0.0095,
                ways: None,
                epoch_ms: 100,
                epochs: None,
                reactor: false,
                shards: 1,
                workers: 0,
            }
        );
        let p = Parsed::parse(&v(&[
            "serve",
            "--addr",
            "0.0.0.0:4780",
            "--scheme",
            "coordinated",
            "--bandwidth",
            "0.02",
            "--ways",
            "16",
            "--epoch-ms",
            "50",
            "--epochs",
            "10",
            "--reactor",
            "--shards",
            "4",
            "--workers",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Serve {
                addr: "0.0.0.0:4780".into(),
                scheme: PartitionScheme::Coordinated,
                bandwidth: 0.02,
                ways: Some(16),
                epoch_ms: 50,
                epochs: Some(10),
                reactor: true,
                shards: 4,
                workers: 2,
            }
        );
        assert!(Parsed::parse(&v(&["serve", "--shards", "0"])).is_err());
        assert!(Parsed::parse(&v(&["serve", "--ways", "0"])).is_err());
        assert!(Parsed::parse(&v(&["serve", "--ways", "x"])).is_err());
    }

    #[test]
    fn client_operations_parse() {
        let p = Parsed::parse(&v(&[
            "client",
            "--addr",
            "127.0.0.1:4780",
            "register",
            "milc",
            "0.00692",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Client {
                addr: "127.0.0.1:4780".into(),
                codec: bwpartd::Codec::Json,
                op: ClientOp::Register {
                    name: "milc".into(),
                    api: 0.00692,
                    cache: None,
                },
            }
        );
        // `--codec binary` selects the v2 framing; `group-shares` targets
        // one tenant group.
        let p = Parsed::parse(&v(&[
            "client",
            "--addr",
            "x:1",
            "--codec",
            "binary",
            "group-shares",
            "acme",
        ]))
        .unwrap();
        assert!(matches!(
            p,
            Parsed::Client {
                codec: bwpartd::Codec::Binary,
                op: ClientOp::GroupShares { ref group, scheme: None },
                ..
            } if group == "acme"
        ));
        assert!(Parsed::parse(&v(&[
            "client", "--addr", "x:1", "--codec", "xml", "metrics"
        ]))
        .is_err());
        let p = Parsed::parse(&v(&[
            "client",
            "--addr",
            "127.0.0.1:4780",
            "telemetry",
            "0",
            "1000",
            "100000",
            "40000",
        ]))
        .unwrap();
        assert!(matches!(
            p,
            Parsed::Client {
                op: ClientOp::Telemetry {
                    app_id: 0,
                    accesses: 1000,
                    shared_cycles: 100_000,
                    interference_cycles: 40_000,
                },
                ..
            }
        ));
        let p = Parsed::parse(&v(&[
            "client",
            "--addr",
            "x:1",
            "get-shares",
            "square-root",
        ]))
        .unwrap();
        assert!(matches!(
            p,
            Parsed::Client {
                op: ClientOp::GetShares { scheme: Some(_) },
                ..
            }
        ));
        let p = Parsed::parse(&v(&["client", "--addr", "x:1", "metrics"])).unwrap();
        assert!(matches!(
            p,
            Parsed::Client {
                op: ClientOp::Metrics,
                ..
            }
        ));
        // Missing --addr, wrong arity, unknown op all fail.
        assert!(Parsed::parse(&v(&["client", "snapshot"])).is_err());
        assert!(Parsed::parse(&v(&["client", "--addr", "x:1", "metrics", "x"])).is_err());
        assert!(Parsed::parse(&v(&["client", "--addr", "x:1", "register", "a"])).is_err());
        assert!(Parsed::parse(&v(&["client", "--addr", "x:1", "frobnicate"])).is_err());
    }

    #[test]
    fn register_with_cache_spec_parses() {
        let p = Parsed::parse(&v(&[
            "client",
            "--addr",
            "x:1",
            "register",
            "llcfit",
            "0.002",
            "--cache",
            "0.05:1.0:60:1=0.95,8=0.4,16=0.03",
        ]))
        .unwrap();
        let Parsed::Client {
            op: ClientOp::Register { name, api, cache },
            ..
        } = p
        else {
            panic!("wrong parse: {p:?}");
        };
        assert_eq!(name, "llcfit");
        assert!((api - 0.002).abs() < 1e-12);
        let cache = cache.expect("cache spec should parse");
        assert!((cache.api_llc - 0.05).abs() < 1e-12);
        assert!((cache.mem_penalty - 60.0).abs() < 1e-12);
        assert_eq!(cache.mrc.len(), 3);
        assert!((cache.mrc[1].ways - 8.0).abs() < 1e-12);
        assert!((cache.mrc[1].miss_ratio - 0.4).abs() < 1e-12);

        // Malformed specs and misplaced flags fail with clear messages.
        assert!(parse_cache_spec("0.05:1.0:60").is_err());
        assert!(parse_cache_spec("0.05:1.0:60:nonsense").is_err());
        assert!(parse_cache_spec("0.05:1.0:60:1=x").is_err());
        assert!(Parsed::parse(&v(&[
            "client", "--addr", "x:1", "register", "a", "0.1", "--cache"
        ]))
        .is_err());
        assert!(Parsed::parse(&v(&[
            "client",
            "--addr",
            "x:1",
            "register",
            "--cache",
            "0.05:1:60:1=0.9",
            "a",
            "0.1"
        ]))
        .is_err());
    }

    #[test]
    fn experiment_parses() {
        let p = Parsed::parse(&v(&["experiment", "fig1", "--fast"])).unwrap();
        assert_eq!(
            p,
            Parsed::Experiment {
                artifact: "fig1".into(),
                fast: true
            }
        );
    }
}
