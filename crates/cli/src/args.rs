//! Hand-rolled argument parsing (no external dependency needed for six
//! subcommands).

use bwpart_core::prelude::*;

/// Parsed application spec from `--app name:api:apc_alone`.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// Accesses per instruction.
    pub api: f64,
    /// Standalone accesses per cycle.
    pub apc_alone: f64,
}

impl AppSpec {
    /// Parse `name:api:apc_alone`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!("--app expects name:api:apc_alone, got `{s}`"));
        }
        let api: f64 = parts[1].parse().map_err(|_| format!("bad api in `{s}`"))?;
        let apc: f64 = parts[2]
            .parse()
            .map_err(|_| format!("bad apc_alone in `{s}`"))?;
        Ok(AppSpec {
            name: parts[0].to_string(),
            api,
            apc_alone: apc,
        })
    }

    /// Convert to a model profile.
    pub fn to_profile(&self) -> Result<AppProfile, String> {
        AppProfile::new(self.name.clone(), self.api, self.apc_alone).map_err(|e| e.to_string())
    }
}

/// Parse a scheme name (the paper's spellings, case-sensitive, plus
/// `power:<alpha>`).
pub fn parse_scheme(s: &str) -> Result<PartitionScheme, String> {
    if let Some(alpha) = s.strip_prefix("power:") {
        let a: f64 = alpha
            .parse()
            .map_err(|_| format!("bad power exponent `{alpha}`"))?;
        return Ok(PartitionScheme::Power(a));
    }
    match s {
        "No_partitioning" => Ok(PartitionScheme::NoPartitioning),
        "Equal" => Ok(PartitionScheme::Equal),
        "Proportional" => Ok(PartitionScheme::Proportional),
        "Square_root" => Ok(PartitionScheme::SquareRoot),
        "2/3_power" => Ok(PartitionScheme::TwoThirdsPower),
        "Priority_APC" => Ok(PartitionScheme::PriorityApc),
        "Priority_API" => Ok(PartitionScheme::PriorityApi),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

/// One fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// `partition`: derive a share vector.
    Partition {
        /// The scheme to apply.
        scheme: PartitionScheme,
        /// Total bandwidth (APC).
        bandwidth: f64,
        /// The applications.
        apps: Vec<AppSpec>,
    },
    /// `predict`: share vector plus forward-model metrics.
    Predict {
        /// The scheme to apply.
        scheme: PartitionScheme,
        /// Total bandwidth (APC).
        bandwidth: f64,
        /// The applications.
        apps: Vec<AppSpec>,
    },
    /// `simulate`: run one mix × scheme on the simulator.
    Simulate {
        /// Mix name.
        mix: String,
        /// Scheme.
        scheme: PartitionScheme,
        /// Reduced-fidelity phases.
        fast: bool,
        /// Stream seed.
        seed: u64,
    },
    /// `profile`: online APC_alone estimates for a mix.
    Profile {
        /// Mix name.
        mix: String,
        /// Reduced-fidelity phases.
        fast: bool,
        /// Stream seed.
        seed: u64,
    },
    /// `mixes`: list the available mixes.
    Mixes,
    /// `experiment`: regenerate a paper artifact.
    Experiment {
        /// Artifact name.
        artifact: String,
        /// Reduced-fidelity run.
        fast: bool,
    },
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} requires a value"))
}

impl Parsed {
    /// Parse a raw argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Parsed, String> {
        let cmd = args.first().ok_or("missing subcommand")?;
        match cmd.as_str() {
            "partition" | "predict" => {
                let mut scheme = None;
                let mut bandwidth = None;
                let mut apps = Vec::new();
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--scheme" => {
                            scheme = Some(parse_scheme(take_value(args, &mut i, "--scheme")?)?)
                        }
                        "--bandwidth" => {
                            let v = take_value(args, &mut i, "--bandwidth")?;
                            bandwidth =
                                Some(v.parse().map_err(|_| format!("bad bandwidth `{v}`"))?);
                        }
                        "--app" => apps.push(AppSpec::parse(take_value(args, &mut i, "--app")?)?),
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                let scheme = scheme.ok_or("--scheme is required")?;
                let bandwidth = bandwidth.ok_or("--bandwidth is required")?;
                if apps.is_empty() {
                    return Err("at least one --app is required".into());
                }
                if cmd == "partition" {
                    Ok(Parsed::Partition {
                        scheme,
                        bandwidth,
                        apps,
                    })
                } else {
                    Ok(Parsed::Predict {
                        scheme,
                        bandwidth,
                        apps,
                    })
                }
            }
            "simulate" | "profile" => {
                let mut mix = None;
                let mut scheme = PartitionScheme::NoPartitioning;
                let mut fast = false;
                let mut seed = 0xB417_2013u64;
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--mix" => mix = Some(take_value(args, &mut i, "--mix")?.to_string()),
                        "--scheme" => scheme = parse_scheme(take_value(args, &mut i, "--scheme")?)?,
                        "--fast" => fast = true,
                        "--seed" => {
                            let v = take_value(args, &mut i, "--seed")?;
                            seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                        }
                        other => return Err(format!("unexpected argument `{other}`")),
                    }
                    i += 1;
                }
                let mix = mix.ok_or("--mix is required")?;
                if cmd == "simulate" {
                    Ok(Parsed::Simulate {
                        mix,
                        scheme,
                        fast,
                        seed,
                    })
                } else {
                    Ok(Parsed::Profile { mix, fast, seed })
                }
            }
            "mixes" => Ok(Parsed::Mixes),
            "experiment" => {
                let artifact = args
                    .get(1)
                    .ok_or("experiment requires an artifact name")?
                    .clone();
                let fast = args.iter().any(|a| a == "--fast");
                Ok(Parsed::Experiment { artifact, fast })
            }
            other => Err(format!("unknown subcommand `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn app_spec_parses() {
        let a = AppSpec::parse("lbm:0.053:0.0094").unwrap();
        assert_eq!(a.name, "lbm");
        assert!((a.api - 0.053).abs() < 1e-12);
        assert!((a.apc_alone - 0.0094).abs() < 1e-12);
        assert!(AppSpec::parse("missing:fields").is_err());
        assert!(AppSpec::parse("x:abc:1").is_err());
    }

    #[test]
    fn scheme_names_parse() {
        assert_eq!(
            parse_scheme("Square_root").unwrap(),
            PartitionScheme::SquareRoot
        );
        assert_eq!(
            parse_scheme("2/3_power").unwrap(),
            PartitionScheme::TwoThirdsPower
        );
        assert_eq!(
            parse_scheme("power:0.8").unwrap(),
            PartitionScheme::Power(0.8)
        );
        assert!(parse_scheme("sqrt").is_err());
        assert!(parse_scheme("power:x").is_err());
    }

    #[test]
    fn partition_command_parses() {
        let p = Parsed::parse(&v(&[
            "partition",
            "--scheme",
            "Equal",
            "--bandwidth",
            "0.0095",
            "--app",
            "a:0.01:0.005",
            "--app",
            "b:0.02:0.003",
        ]))
        .unwrap();
        match p {
            Parsed::Partition {
                scheme,
                bandwidth,
                apps,
            } => {
                assert_eq!(scheme, PartitionScheme::Equal);
                assert!((bandwidth - 0.0095).abs() < 1e-12);
                assert_eq!(apps.len(), 2);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(Parsed::parse(&v(&["partition", "--scheme", "Equal"])).is_err());
        assert!(Parsed::parse(&v(&["simulate", "--scheme", "Equal"])).is_err());
        assert!(Parsed::parse(&v(&["unknown"])).is_err());
        assert!(Parsed::parse(&[]).is_err());
        assert!(Parsed::parse(&v(&["partition", "--scheme"])).is_err());
    }

    #[test]
    fn simulate_defaults_and_flags() {
        let p = Parsed::parse(&v(&[
            "simulate",
            "--mix",
            "hetero-5",
            "--scheme",
            "Priority_APC",
            "--fast",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            p,
            Parsed::Simulate {
                mix: "hetero-5".into(),
                scheme: PartitionScheme::PriorityApc,
                fast: true,
                seed: 7,
            }
        );
    }

    #[test]
    fn experiment_parses() {
        let p = Parsed::parse(&v(&["experiment", "fig1", "--fast"])).unwrap();
        assert_eq!(
            p,
            Parsed::Experiment {
                artifact: "fig1".into(),
                fast: true
            }
        );
    }
}
