//! Command implementations: each returns its printable output.

use bwpart_cmp::{CmpConfig, RunObserver, Runner, ShareSource};
use bwpart_core::prelude::*;
use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::{
    ablation, adaptation, fig1, fig2, fig3, fig4, model_vs_sim, profiling, table3, table4,
};
use bwpart_workloads::{mixes, Mix};
use bwpartd::protocol::{ServiceSnapshot, SharesReply};
use bwpartd::{Client, ClientError, EngineConfig, ServeConfig};

use crate::args::{AppSpec, ClientOp, Parsed};

fn profiles_of(apps: &[AppSpec]) -> Result<Vec<AppProfile>, String> {
    apps.iter().map(|a| a.to_profile()).collect()
}

fn find_mix(name: &str) -> Result<Mix, String> {
    mixes::all_mixes()
        .into_iter()
        .chain([mixes::fig1_mix()])
        .chain(mixes::qos_mixes())
        .chain(mixes::cache_mixes())
        .find(|m| m.name == name)
        .ok_or_else(|| format!("unknown mix `{name}` (try `bwpart mixes`)"))
}

fn exp_config(fast: bool) -> ExpConfig {
    if fast {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    }
}

/// Execute a parsed invocation.
pub fn dispatch(parsed: &Parsed) -> Result<String, String> {
    match parsed {
        Parsed::Partition {
            scheme,
            bandwidth,
            apps,
        } => {
            let profiles = profiles_of(apps)?;
            let beta = scheme
                .shares(&profiles, *bandwidth)
                .map_err(|e| e.to_string())?;
            let alloc = scheme
                .allocation(&profiles, *bandwidth)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} over B = {bandwidth} APC\n", scheme.name());
            for ((p, b), a) in profiles.iter().zip(&beta).zip(&alloc) {
                out.push_str(&format!(
                    "  {:<16} β = {:.4}   allocation = {:.6} APC\n",
                    p.name, b, a
                ));
            }
            Ok(out)
        }
        Parsed::Predict {
            scheme,
            bandwidth,
            apps,
        } => {
            let profiles = profiles_of(apps)?;
            let pred = predict::evaluate_scheme(&profiles, *scheme, *bandwidth)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} over B = {bandwidth} APC\n", scheme.name());
            for (p, (s, a)) in profiles
                .iter()
                .zip(pred.ipc_shared.iter().zip(&pred.ipc_alone))
            {
                out.push_str(&format!(
                    "  {:<16} IPC {:.4} / alone {:.4}  (speedup {:.3})\n",
                    p.name,
                    s,
                    a,
                    s / a
                ));
            }
            for (m, v) in pred.all_metrics() {
                out.push_str(&format!("  {:<7} = {v:.4}\n", m.label()));
            }
            Ok(out)
        }
        Parsed::Simulate {
            mix,
            scheme,
            fast,
            seed,
        } => {
            let mix = find_mix(mix)?;
            let mut cfg = exp_config(*fast);
            cfg.seed = *seed;
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let (w, cc) = mix.build(1, cfg.seed);
            let out = runner.run_scheme(*scheme, w, cc, ShareSource::OnlineProfile);
            let mut s = format!(
                "{} × {} (measure {} cycles, seed {seed})\n",
                mix.name,
                scheme.name(),
                cfg.phases.measure
            );
            for st in &out.stats {
                s.push_str(&format!(
                    "  {:<12} IPC {:.4}  APKC {:.3}  APKI {:.3}\n",
                    st.name,
                    st.ipc(),
                    st.apkc(),
                    st.apki()
                ));
            }
            for m in Metric::ALL {
                s.push_str(&format!("  {:<7} = {:.4}\n", m.label(), out.metric(m)));
            }
            s.push_str(&format!(
                "  utilized bandwidth = {:.5} APC\n",
                out.total_bandwidth
            ));
            Ok(s)
        }
        Parsed::Trace {
            mix,
            scheme,
            fast,
            seed,
            out,
            metrics_out,
        } => {
            let mix = find_mix(mix)?;
            let mut cfg = exp_config(*fast);
            cfg.seed = *seed;
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let (w, cc) = mix.build(1, cfg.seed);
            let observer = RunObserver::with_tracer(1 << 16);
            let sim = runner.run_scheme_traced(
                *scheme,
                w,
                cc,
                ShareSource::OnlineProfile,
                Some(&observer),
            );
            let tracer = observer
                .tracer
                .as_ref()
                .ok_or("internal error: observer lost its tracer")?;
            std::fs::write(out, tracer.export_chrome_json())
                .map_err(|e| format!("cannot write `{out}`: {e}"))?;
            let mut s = format!(
                "{} × {} traced: {} event(s), {} dropped → {out}\n",
                mix.name,
                scheme.name(),
                tracer.len(),
                tracer.dropped()
            );
            if let Some(path) = metrics_out {
                std::fs::write(path, observer.registry.snapshot().render_prometheus())
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                s.push_str(&format!("metrics dump → {path}\n"));
            }
            s.push_str(&format!(
                "  utilized bandwidth = {:.5} APC\n",
                sim.total_bandwidth
            ));
            Ok(s)
        }
        Parsed::Profile { mix, fast, seed } => {
            let mix = find_mix(mix)?;
            let mut cfg = exp_config(*fast);
            cfg.seed = *seed;
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let (w, cc) = mix.build(1, cfg.seed);
            let out = runner.run_scheme(
                PartitionScheme::NoPartitioning,
                w,
                cc,
                ShareSource::OnlineProfile,
            );
            let mut s = format!("online profile of {} (Eq. 12-13 estimates)\n", mix.name);
            for (st, (apc, api)) in out
                .stats
                .iter()
                .zip(out.apc_alone_ref.iter().zip(&out.api_ref))
            {
                s.push_str(&format!(
                    "  {:<12} APC_alone ≈ {:.5}  API ≈ {:.5}  (IPC_alone ≈ {:.3})\n",
                    st.name,
                    apc,
                    api,
                    apc / api.max(1e-12)
                ));
            }
            Ok(s)
        }
        Parsed::Mixes => {
            let mut s = String::from("available mixes:\n");
            for m in mixes::all_mixes()
                .into_iter()
                .chain([mixes::fig1_mix()])
                .chain(mixes::qos_mixes())
                .chain(mixes::cache_mixes())
            {
                s.push_str(&format!("  {:<10} {}\n", m.name, m.benches.join("-")));
            }
            Ok(s)
        }
        Parsed::Serve {
            addr,
            scheme,
            bandwidth,
            ways,
            epoch_ms,
            epochs,
            reactor,
            shards,
            workers,
        } => {
            use std::io::Write as _;
            let cfg = ServeConfig {
                addr: addr.clone(),
                engine: EngineConfig {
                    total_ways: *ways,
                    ..EngineConfig::new(*scheme, *bandwidth)
                },
                epoch_interval: std::time::Duration::from_millis(*epoch_ms),
                reactor: *reactor,
                shards: *shards,
                workers: *workers,
                ..ServeConfig::default()
            };
            let handle = bwpartd::serve(cfg).map_err(|e| e.to_string())?;
            // Announce the bound address immediately (port 0 resolves to a
            // real port) so scripts and tests can connect before the
            // service returns its final summary.
            println!("bwpartd listening on {}", handle.addr());
            let _ = std::io::stdout().flush();
            if let Some(n) = epochs {
                // One-shot mode: run a fixed number of timer epochs, then
                // stop. Used by scripted demos and tests.
                std::thread::sleep(std::time::Duration::from_millis(epoch_ms * (n + 1)));
                handle.shutdown();
            }
            let snap = handle.join();
            Ok(format!("bwpartd stopped\n{}", render_snapshot(&snap)))
        }
        Parsed::Client { addr, codec, op } => {
            let mut client =
                Client::connect_with(addr.as_str(), *codec).map_err(|e| e.to_string())?;
            // A service stalled for more than 5 s is a failure, not a wait:
            // the CI service-smoke job relies on every client call erroring
            // out (non-zero exit) instead of hanging.
            client
                .set_timeout(Some(std::time::Duration::from_secs(5)))
                .map_err(|e| e.to_string())?;
            let service_err = |e: ClientError| match e {
                ClientError::Service(s) => format!("service rejected the request — {s}"),
                other => other.to_string(),
            };
            match op {
                ClientOp::Register { name, api, cache } => {
                    let id = client
                        .register_with_cache(name, *api, cache.clone())
                        .map_err(service_err)?;
                    let with = if cache.is_some() {
                        " (with cache spec)"
                    } else {
                        ""
                    };
                    Ok(format!("registered `{name}` as app {id}{with}"))
                }
                ClientOp::Telemetry {
                    app_id,
                    accesses,
                    shared_cycles,
                    interference_cycles,
                } => {
                    let epoch = client
                        .telemetry(
                            *app_id,
                            bwpart_mc::TelemetryDelta {
                                accesses: *accesses,
                                shared_cycles: *shared_cycles,
                                interference_cycles: *interference_cycles,
                            },
                        )
                        .map_err(service_err)?;
                    Ok(format!("telemetry queued for epoch {epoch}"))
                }
                ClientOp::GetShares { scheme } => {
                    let reply = client.get_shares(scheme.as_deref()).map_err(service_err)?;
                    Ok(render_shares(&reply))
                }
                ClientOp::GroupShares { group, scheme } => {
                    let reply = client
                        .group_shares(group, scheme.as_deref())
                        .map_err(service_err)?;
                    Ok(render_shares(&reply))
                }
                ClientOp::QosAdmit { app_id, ipc_target } => {
                    let grant = client
                        .qos_admit(*app_id, *ipc_target)
                        .map_err(service_err)?;
                    Ok(format!(
                        "admitted app {} at IPC {ipc_target}: reserved {:.6} APC (Eq. 11), {:.6} APC remaining",
                        grant.app_id, grant.reserved_apc, grant.remaining_apc
                    ))
                }
                ClientOp::Metrics => {
                    let m = client.metrics().map_err(service_err)?;
                    Ok(format!("epoch {}\n{}", m.epoch, m.prometheus))
                }
                ClientOp::Snapshot => {
                    let snap = client.snapshot().map_err(service_err)?;
                    Ok(render_snapshot(&snap))
                }
                ClientOp::Shutdown => {
                    client.shutdown().map_err(service_err)?;
                    Ok("service shutting down".to_string())
                }
            }
        }
        Parsed::Experiment { artifact, fast } => {
            let cfg = exp_config(*fast);
            match artifact.as_str() {
                "table3" => {
                    let rows = table3::run(&cfg);
                    Ok(format!(
                        "{}\nconcordance {:.1}%",
                        table3::render(&rows),
                        table3::ordering_concordance(&rows) * 100.0
                    ))
                }
                "table4" => Ok(table4::render(&table4::run(&cfg))),
                "fig1" => Ok(fig1::render(&fig1::run(&cfg))),
                "fig2" => Ok(fig2::render(&fig2::run(&cfg))),
                "fig3" => Ok(fig3::render(&fig3::run(&cfg))),
                "fig4" => {
                    let r = if *fast {
                        fig4::run_with_limit(&cfg, 2)
                    } else {
                        fig4::run(&cfg)
                    };
                    Ok(fig4::render(&r))
                }
                "model_vs_sim" => Ok(model_vs_sim::render(&model_vs_sim::run(&cfg))),
                "profiling" => Ok(profiling::render(&profiling::run(&cfg))),
                "adaptation" => Ok(adaptation::render(&adaptation::run(&cfg))),
                "ablation" => {
                    let mut s =
                        ablation::render_window(&ablation::window_sweep(&cfg, &[1, 2, 4, 8, 16]));
                    s.push('\n');
                    s.push_str(&ablation::render_alpha(&ablation::alpha_sweep(
                        &cfg,
                        &[0.0, 0.25, 0.5, 2.0 / 3.0, 1.0, 1.25, 1.5],
                    )));
                    s.push('\n');
                    s.push_str(&ablation::render_page_policy(&ablation::page_policy(&cfg)));
                    Ok(s)
                }
                other => Err(format!("unknown artifact `{other}`")),
            }
        }
    }
}

/// Render a wire-level shares reply as the same table shape `partition`
/// prints.
fn render_shares(reply: &SharesReply) -> String {
    let mut out = format!(
        "epoch {} · {} over B = {} APC{}\n",
        reply.epoch,
        reply.outcome.scheme,
        reply.outcome.bandwidth,
        if reply.degraded {
            "  [degraded: serving last-good shares]"
        } else {
            ""
        }
    );
    for row in &reply.apps {
        out.push_str(&format!(
            "  [{}] {:<16} β = {:.4}   allocation = {:.6} APC",
            row.app_id, row.name, row.beta, row.allocation
        ));
        // Coordinated solves attach one row per partitioned resource; the
        // bandwidth row duplicates β/allocation, so print only the rest.
        for r in row.resources.iter().flatten() {
            if r.kind != "bandwidth" {
                out.push_str(&format!(
                    "   {} = {} ({:.1}%)",
                    r.kind,
                    r.amount,
                    r.share * 100.0
                ));
            }
        }
        out.push('\n');
    }
    out
}

/// Render a service snapshot.
fn render_snapshot(snap: &ServiceSnapshot) -> String {
    let mut out = format!(
        "epoch {} · scheme {} · B = {} APC\n\
         repartitions {} · held {} · idle {} · failed {} · phase changes {}{}\n",
        snap.epoch,
        snap.scheme,
        snap.bandwidth,
        snap.repartitions,
        snap.held_epochs,
        snap.idle_epochs,
        snap.failed_epochs,
        snap.phase_changes,
        if snap.degraded { " · DEGRADED" } else { "" }
    );
    for a in &snap.apps {
        let est = a
            .apc_alone_estimate
            .map(|e| format!("{e:.5}"))
            .unwrap_or_else(|| "—".to_string());
        let ways = a
            .llc_ways
            .map(|w| format!("  ways {w}"))
            .unwrap_or_default();
        let qos = a
            .qos_target
            .map(|t| format!("  QoS target {t}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  [{}] {:<16} API {:.5}  APC_alone ≈ {est}  queued {}  shed {}{ways}{qos}\n",
            a.app_id, a.name, a.api, a.queued, a.shed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn spec(name: &str, api: f64, apc: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            api,
            apc_alone: apc,
        }
    }

    #[test]
    fn partition_command_output() {
        let p = Parsed::Partition {
            scheme: PartitionScheme::SquareRoot,
            bandwidth: 0.0095,
            apps: vec![spec("a", 0.03, 0.007), spec("b", 0.004, 0.002)],
        };
        let out = dispatch(&p).unwrap();
        assert!(out.contains("Square_root"));
        assert!(out.contains("β ="));
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn predict_command_reports_metrics() {
        let p = Parsed::Predict {
            scheme: PartitionScheme::Equal,
            bandwidth: 0.008,
            apps: vec![spec("x", 0.03, 0.007), spec("y", 0.004, 0.002)],
        };
        let out = dispatch(&p).unwrap();
        for label in ["Hsp", "Wsp", "IPCsum", "MinF"] {
            assert!(out.contains(label), "missing {label} in {out}");
        }
    }

    #[test]
    fn mixes_lists_table4_names() {
        let out = dispatch(&Parsed::Mixes).unwrap();
        assert!(out.contains("hetero-7"));
        assert!(out.contains("mix-2"));
        assert!(out.contains("libquantum"));
        // The cache-hostile mixes ride along for coordinated runs.
        assert!(out.contains("cache-1"));
        assert!(out.contains("llcfit"));
    }

    #[test]
    fn unknown_mix_and_artifact_error() {
        let e = dispatch(&Parsed::Profile {
            mix: "nope".into(),
            fast: true,
            seed: 1,
        })
        .unwrap_err();
        assert!(e.contains("unknown mix"));
        let e = dispatch(&Parsed::Experiment {
            artifact: "fig9".into(),
            fast: true,
        })
        .unwrap_err();
        assert!(e.contains("unknown artifact"));
    }

    #[test]
    fn client_ops_against_in_process_service() {
        // Drive the `client` dispatch paths against a real service bound
        // on a loopback port; epochs are forced through the handle so the
        // test is deterministic.
        let handle = bwpartd::serve(ServeConfig {
            epoch_interval: std::time::Duration::from_secs(3600),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let run = |op: ClientOp| {
            dispatch(&Parsed::Client {
                addr: addr.clone(),
                codec: bwpartd::Codec::Json,
                op,
            })
        };

        let out = run(ClientOp::Register {
            name: "milc".into(),
            api: 0.00692,
            cache: None,
        })
        .unwrap();
        assert!(out.contains("app 0"), "{out}");

        let out = run(ClientOp::Telemetry {
            app_id: 0,
            accesses: 34_100,
            shared_cycles: 1_000_000,
            interference_cycles: 0,
        })
        .unwrap();
        assert!(out.contains("epoch 1"), "{out}");

        handle.force_epoch();
        let out = run(ClientOp::GetShares { scheme: None }).unwrap();
        assert!(out.contains("square-root") && out.contains("milc"), "{out}");

        let out = run(ClientOp::QosAdmit {
            app_id: 0,
            ipc_target: 99.0,
        })
        .unwrap_err();
        assert!(out.contains("QosUnreachable"), "{out}");

        let out = run(ClientOp::Snapshot).unwrap();
        assert!(out.contains("repartitions 1"), "{out}");

        let out = run(ClientOp::Metrics).unwrap();
        assert!(out.contains("bwpartd_epochs_total 1"), "{out}");
        assert!(out.contains("# TYPE bwpartd_epochs_total counter"), "{out}");

        let out = run(ClientOp::Shutdown).unwrap();
        assert!(out.contains("shutting down"));
        handle.join();
    }

    #[test]
    fn coordinated_client_ops_show_way_allocations() {
        use crate::args::parse_cache_spec;
        use bwpart_core::PartitionScheme;

        let handle = bwpartd::serve(ServeConfig {
            engine: EngineConfig {
                total_ways: Some(16),
                ..EngineConfig::new(PartitionScheme::Coordinated, 0.0095)
            },
            epoch_interval: std::time::Duration::from_secs(3600),
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.addr().to_string();
        let run = |op: ClientOp| {
            dispatch(&Parsed::Client {
                addr: addr.clone(),
                codec: bwpartd::Codec::Json,
                op,
            })
        };

        let steep = parse_cache_spec("0.05:1.0:60:1=0.95,4=0.7,8=0.4,12=0.1,16=0.03").unwrap();
        let flat = parse_cache_spec("0.02:1.2:40:1=1.0,16=0.98").unwrap();
        let out = run(ClientOp::Register {
            name: "llcfit".into(),
            api: 0.002,
            cache: Some(steep),
        })
        .unwrap();
        assert!(
            out.contains("app 0") && out.contains("with cache spec"),
            "{out}"
        );
        run(ClientOp::Register {
            name: "stream".into(),
            api: 0.02,
            cache: Some(flat),
        })
        .unwrap();
        for (id, accesses) in [(0, 9_090), (1, 9_943)] {
            run(ClientOp::Telemetry {
                app_id: id,
                accesses,
                shared_cycles: 1_000_000,
                interference_cycles: 0,
            })
            .unwrap();
        }

        handle.force_epoch();
        let out = run(ClientOp::GetShares { scheme: None }).unwrap();
        assert!(out.contains("coordinated"), "{out}");
        assert!(out.contains("llc-ways"), "{out}");
        let out = run(ClientOp::Snapshot).unwrap();
        assert!(out.contains("ways "), "{out}");

        run(ClientOp::Shutdown).unwrap();
        handle.join();
    }

    #[test]
    fn trace_command_writes_timeline_and_metrics_dump() {
        let dir = std::env::temp_dir().join(format!("bwpart-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("trace.json");
        let mout = dir.join("metrics.prom");
        let s = dispatch(&Parsed::Trace {
            mix: "hetero-1".into(),
            scheme: PartitionScheme::SquareRoot,
            fast: true,
            seed: 7,
            out: out.to_string_lossy().into_owned(),
            metrics_out: Some(mout.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(s.contains("event(s)"), "{s}");
        assert!(s.contains("utilized bandwidth"), "{s}");

        let json = std::fs::read_to_string(&out).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert!(!events.is_empty());
        let named = |n: &str| {
            events
                .iter()
                .any(|e| e.get("name").and_then(serde_json::Value::as_str) == Some(n))
        };
        assert!(named("profile_end") && named("measure_end") && named("share"));

        let prom = std::fs::read_to_string(&mout).unwrap();
        assert!(prom.contains("cmp_steps_total"), "{prom}");
        assert!(prom.contains("run_total_bandwidth_apc"), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalid_app_values_error_cleanly() {
        let p = Parsed::Partition {
            scheme: PartitionScheme::Equal,
            bandwidth: 0.008,
            apps: vec![spec("bad", -1.0, 0.001)],
        };
        assert!(dispatch(&p).is_err());
    }
}
