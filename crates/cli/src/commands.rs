//! Command implementations: each returns its printable output.

use bwpart_cmp::{CmpConfig, Runner, ShareSource};
use bwpart_core::prelude::*;
use bwpart_experiments::harness::ExpConfig;
use bwpart_experiments::{
    ablation, adaptation, fig1, fig2, fig3, fig4, model_vs_sim, profiling, table3, table4,
};
use bwpart_workloads::{mixes, Mix};

use crate::args::{AppSpec, Parsed};

fn profiles_of(apps: &[AppSpec]) -> Result<Vec<AppProfile>, String> {
    apps.iter().map(|a| a.to_profile()).collect()
}

fn find_mix(name: &str) -> Result<Mix, String> {
    mixes::all_mixes()
        .into_iter()
        .chain([mixes::fig1_mix()])
        .chain(mixes::qos_mixes())
        .find(|m| m.name == name)
        .ok_or_else(|| format!("unknown mix `{name}` (try `bwpart mixes`)"))
}

fn exp_config(fast: bool) -> ExpConfig {
    if fast {
        ExpConfig::fast()
    } else {
        ExpConfig::default()
    }
}

/// Execute a parsed invocation.
pub fn dispatch(parsed: &Parsed) -> Result<String, String> {
    match parsed {
        Parsed::Partition {
            scheme,
            bandwidth,
            apps,
        } => {
            let profiles = profiles_of(apps)?;
            let beta = scheme
                .shares(&profiles, *bandwidth)
                .map_err(|e| e.to_string())?;
            let alloc = scheme
                .allocation(&profiles, *bandwidth)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} over B = {bandwidth} APC\n", scheme.name());
            for ((p, b), a) in profiles.iter().zip(&beta).zip(&alloc) {
                out.push_str(&format!(
                    "  {:<16} β = {:.4}   allocation = {:.6} APC\n",
                    p.name, b, a
                ));
            }
            Ok(out)
        }
        Parsed::Predict {
            scheme,
            bandwidth,
            apps,
        } => {
            let profiles = profiles_of(apps)?;
            let pred = predict::evaluate_scheme(&profiles, *scheme, *bandwidth)
                .map_err(|e| e.to_string())?;
            let mut out = format!("{} over B = {bandwidth} APC\n", scheme.name());
            for (p, (s, a)) in profiles
                .iter()
                .zip(pred.ipc_shared.iter().zip(&pred.ipc_alone))
            {
                out.push_str(&format!(
                    "  {:<16} IPC {:.4} / alone {:.4}  (speedup {:.3})\n",
                    p.name,
                    s,
                    a,
                    s / a
                ));
            }
            for (m, v) in pred.all_metrics() {
                out.push_str(&format!("  {:<7} = {v:.4}\n", m.label()));
            }
            Ok(out)
        }
        Parsed::Simulate {
            mix,
            scheme,
            fast,
            seed,
        } => {
            let mix = find_mix(mix)?;
            let mut cfg = exp_config(*fast);
            cfg.seed = *seed;
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let (w, cc) = mix.build(1, cfg.seed);
            let out = runner.run_scheme(*scheme, w, cc, ShareSource::OnlineProfile);
            let mut s = format!(
                "{} × {} (measure {} cycles, seed {seed})\n",
                mix.name,
                scheme.name(),
                cfg.phases.measure
            );
            for st in &out.stats {
                s.push_str(&format!(
                    "  {:<12} IPC {:.4}  APKC {:.3}  APKI {:.3}\n",
                    st.name,
                    st.ipc(),
                    st.apkc(),
                    st.apki()
                ));
            }
            for m in Metric::ALL {
                s.push_str(&format!("  {:<7} = {:.4}\n", m.label(), out.metric(m)));
            }
            s.push_str(&format!(
                "  utilized bandwidth = {:.5} APC\n",
                out.total_bandwidth
            ));
            Ok(s)
        }
        Parsed::Profile { mix, fast, seed } => {
            let mix = find_mix(mix)?;
            let mut cfg = exp_config(*fast);
            cfg.seed = *seed;
            let runner = Runner {
                cmp: CmpConfig {
                    dram: cfg.dram.clone(),
                    ..CmpConfig::default()
                },
                phases: cfg.phases,
            };
            let (w, cc) = mix.build(1, cfg.seed);
            let out = runner.run_scheme(
                PartitionScheme::NoPartitioning,
                w,
                cc,
                ShareSource::OnlineProfile,
            );
            let mut s = format!("online profile of {} (Eq. 12-13 estimates)\n", mix.name);
            for (st, (apc, api)) in out
                .stats
                .iter()
                .zip(out.apc_alone_ref.iter().zip(&out.api_ref))
            {
                s.push_str(&format!(
                    "  {:<12} APC_alone ≈ {:.5}  API ≈ {:.5}  (IPC_alone ≈ {:.3})\n",
                    st.name,
                    apc,
                    api,
                    apc / api.max(1e-12)
                ));
            }
            Ok(s)
        }
        Parsed::Mixes => {
            let mut s = String::from("available mixes:\n");
            for m in mixes::all_mixes()
                .into_iter()
                .chain([mixes::fig1_mix()])
                .chain(mixes::qos_mixes())
            {
                s.push_str(&format!("  {:<10} {}\n", m.name, m.benches.join("-")));
            }
            Ok(s)
        }
        Parsed::Experiment { artifact, fast } => {
            let cfg = exp_config(*fast);
            match artifact.as_str() {
                "table3" => {
                    let rows = table3::run(&cfg);
                    Ok(format!(
                        "{}\nconcordance {:.1}%",
                        table3::render(&rows),
                        table3::ordering_concordance(&rows) * 100.0
                    ))
                }
                "table4" => Ok(table4::render(&table4::run(&cfg))),
                "fig1" => Ok(fig1::render(&fig1::run(&cfg))),
                "fig2" => Ok(fig2::render(&fig2::run(&cfg))),
                "fig3" => Ok(fig3::render(&fig3::run(&cfg))),
                "fig4" => {
                    let r = if *fast {
                        fig4::run_with_limit(&cfg, 2)
                    } else {
                        fig4::run(&cfg)
                    };
                    Ok(fig4::render(&r))
                }
                "model_vs_sim" => Ok(model_vs_sim::render(&model_vs_sim::run(&cfg))),
                "profiling" => Ok(profiling::render(&profiling::run(&cfg))),
                "adaptation" => Ok(adaptation::render(&adaptation::run(&cfg))),
                "ablation" => {
                    let mut s =
                        ablation::render_window(&ablation::window_sweep(&cfg, &[1, 2, 4, 8, 16]));
                    s.push('\n');
                    s.push_str(&ablation::render_alpha(&ablation::alpha_sweep(
                        &cfg,
                        &[0.0, 0.25, 0.5, 2.0 / 3.0, 1.0, 1.25, 1.5],
                    )));
                    s.push('\n');
                    s.push_str(&ablation::render_page_policy(&ablation::page_policy(&cfg)));
                    Ok(s)
                }
                other => Err(format!("unknown artifact `{other}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn spec(name: &str, api: f64, apc: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            api,
            apc_alone: apc,
        }
    }

    #[test]
    fn partition_command_output() {
        let p = Parsed::Partition {
            scheme: PartitionScheme::SquareRoot,
            bandwidth: 0.0095,
            apps: vec![spec("a", 0.03, 0.007), spec("b", 0.004, 0.002)],
        };
        let out = dispatch(&p).unwrap();
        assert!(out.contains("Square_root"));
        assert!(out.contains("β ="));
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn predict_command_reports_metrics() {
        let p = Parsed::Predict {
            scheme: PartitionScheme::Equal,
            bandwidth: 0.008,
            apps: vec![spec("x", 0.03, 0.007), spec("y", 0.004, 0.002)],
        };
        let out = dispatch(&p).unwrap();
        for label in ["Hsp", "Wsp", "IPCsum", "MinF"] {
            assert!(out.contains(label), "missing {label} in {out}");
        }
    }

    #[test]
    fn mixes_lists_table4_names() {
        let out = dispatch(&Parsed::Mixes).unwrap();
        assert!(out.contains("hetero-7"));
        assert!(out.contains("mix-2"));
        assert!(out.contains("libquantum"));
    }

    #[test]
    fn unknown_mix_and_artifact_error() {
        let e = dispatch(&Parsed::Profile {
            mix: "nope".into(),
            fast: true,
            seed: 1,
        })
        .unwrap_err();
        assert!(e.contains("unknown mix"));
        let e = dispatch(&Parsed::Experiment {
            artifact: "fig9".into(),
            fast: true,
        })
        .unwrap_err();
        assert!(e.contains("unknown artifact"));
    }

    #[test]
    fn invalid_app_values_error_cleanly() {
        let p = Parsed::Partition {
            scheme: PartitionScheme::Equal,
            bandwidth: 0.008,
            apps: vec![spec("bad", -1.0, 0.001)],
        };
        assert!(dispatch(&p).is_err());
    }
}
