//! `bwpart` — command-line front end.
//!
//! ```text
//! bwpart partition --scheme <name> --bandwidth <apc> --app name:api:apc_alone [...]
//! bwpart predict   --scheme <name> --bandwidth <apc> --app name:api:apc_alone [...]
//! bwpart simulate  --mix <mix> --scheme <name> [--fast]
//! bwpart profile   --mix <mix> [--fast]
//! bwpart mixes
//! bwpart experiment <table3|table4|fig1|fig2|fig3|fig4|ablation|adaptation|profiling|model_vs_sim> [--fast]
//! bwpart serve     [--addr h:p] [--scheme <name>] [--bandwidth <apc>] [--ways <n>] [--epoch-ms <ms>] [--epochs <n>]
//! bwpart client    --addr h:p <register|telemetry|get-shares|qos-admit|snapshot|shutdown> [...]
//! ```

use std::process::ExitCode;

use bwpart_cli::args::Parsed;
use bwpart_cli::commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Parsed::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", bwpart_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
