#![warn(missing_docs)]

//! Library half of the `bwpart` CLI: argument parsing and command
//! implementations, kept out of `main.rs` so they are unit-testable.

pub mod args;
pub mod commands;

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
bwpart — analytical off-chip memory bandwidth partitioning

USAGE:
  bwpart partition  --scheme <name> --bandwidth <apc> --app n:api:apc [...]
  bwpart predict    --scheme <name> --bandwidth <apc> --app n:api:apc [...]
  bwpart simulate   --mix <mix> --scheme <name> [--fast] [--seed <u64>]
  bwpart profile    --mix <mix> [--fast] [--seed <u64>]
  bwpart mixes
  bwpart experiment <artifact> [--fast]
  bwpart serve      [--addr h:p] [--scheme <name>] [--bandwidth <apc>]
                    [--ways <n>] [--epoch-ms <ms>] [--epochs <n>]
                    [--reactor] [--shards <n>] [--workers <n>]
  bwpart client     --addr h:p [--codec json|binary] <operation>

CLIENT OPERATIONS:
  register <name> <api> [--cache api_llc:cpi_base:mem_penalty:w=m,...]
  telemetry <app_id> <accesses> <shared_cycles> <interference_cycles>
  get-shares [<scheme>]
  group-shares <group> [<scheme>]
  qos-admit <app_id> <ipc_target>
  snapshot
  shutdown

SCHEMES:
  Canonical kebab-case names (no-partitioning, equal, proportional,
  square-root, two-thirds-power, priority-apc, priority-api,
  power:<alpha>); the paper's spellings (Square_root, 2/3_power, ...) and
  shorthands (sqrt, prop, fcfs) are accepted aliases. The `coordinated`
  scheme co-partitions bandwidth and LLC ways (`serve --ways <n>`,
  cache specs on register).

MIXES:
  homo-1..7, hetero-1..7, fig1, mix-1, mix-2, cache-1, cache-2
  (see `bwpart mixes`)

ARTIFACTS:
  table3 table4 fig1 fig2 fig3 fig4 model_vs_sim ablation adaptation profiling

EXAMPLES:
  bwpart partition --scheme Square_root --bandwidth 0.0095 \\
      --app libquantum:0.0341:0.00692 --app gobmk:0.0041:0.00191
  bwpart simulate --mix hetero-5 --scheme Priority_APC --fast
  bwpart experiment fig1 --fast
";
