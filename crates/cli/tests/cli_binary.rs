//! End-to-end tests of the compiled `bwpart` binary.

use std::process::Command;

fn bwpart(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bwpart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn partition_prints_shares() {
    let (ok, stdout, _) = bwpart(&[
        "partition",
        "--scheme",
        "Square_root",
        "--bandwidth",
        "0.0095",
        "--app",
        "libquantum:0.0341:0.00692",
        "--app",
        "gobmk:0.0041:0.00191",
    ]);
    assert!(ok);
    assert!(stdout.contains("Square_root"));
    assert!(stdout.contains("libquantum"));
    assert!(stdout.contains("β ="));
}

#[test]
fn predict_prints_all_metrics() {
    let (ok, stdout, _) = bwpart(&[
        "predict",
        "--scheme",
        "Proportional",
        "--bandwidth",
        "0.008",
        "--app",
        "a:0.03:0.006",
        "--app",
        "b:0.005:0.002",
    ]);
    assert!(ok);
    for m in ["Hsp", "MinF", "Wsp", "IPCsum"] {
        assert!(stdout.contains(m), "missing {m}: {stdout}");
    }
}

#[test]
fn mixes_lists_everything() {
    let (ok, stdout, _) = bwpart(&["mixes"]);
    assert!(ok);
    for name in ["homo-1", "hetero-7", "fig1", "mix-1", "mix-2"] {
        assert!(stdout.contains(name));
    }
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = bwpart(&["partition", "--scheme", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));
    assert!(stderr.contains("USAGE"));

    let (ok, _, stderr) = bwpart(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing subcommand"));
}

#[test]
fn power_scheme_via_cli() {
    let (ok, stdout, _) = bwpart(&[
        "partition",
        "--scheme",
        "power:0.5",
        "--bandwidth",
        "0.008",
        "--app",
        "a:0.03:0.008",
        "--app",
        "b:0.005:0.002",
    ]);
    assert!(ok);
    assert!(stdout.contains("Power(0.5)"));
}

/// The simulate path is slow even in --fast mode under the debug profile;
/// run a single tiny mix to prove the wiring end to end.
#[test]
fn simulate_fast_runs_end_to_end() {
    let (ok, stdout, stderr) = bwpart(&[
        "simulate", "--mix", "homo-7", "--scheme", "Equal", "--fast", "--seed", "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("homo-7"));
    assert!(stdout.contains("utilized bandwidth"));
    assert!(stdout.contains("Hsp"));
}
