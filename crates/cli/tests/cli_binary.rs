//! End-to-end tests of the compiled `bwpart` binary.

use std::process::Command;

fn bwpart(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bwpart"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn partition_prints_shares() {
    let (ok, stdout, _) = bwpart(&[
        "partition",
        "--scheme",
        "Square_root",
        "--bandwidth",
        "0.0095",
        "--app",
        "libquantum:0.0341:0.00692",
        "--app",
        "gobmk:0.0041:0.00191",
    ]);
    assert!(ok);
    assert!(stdout.contains("Square_root"));
    assert!(stdout.contains("libquantum"));
    assert!(stdout.contains("β ="));
}

#[test]
fn predict_prints_all_metrics() {
    let (ok, stdout, _) = bwpart(&[
        "predict",
        "--scheme",
        "Proportional",
        "--bandwidth",
        "0.008",
        "--app",
        "a:0.03:0.006",
        "--app",
        "b:0.005:0.002",
    ]);
    assert!(ok);
    for m in ["Hsp", "MinF", "Wsp", "IPCsum"] {
        assert!(stdout.contains(m), "missing {m}: {stdout}");
    }
}

#[test]
fn mixes_lists_everything() {
    let (ok, stdout, _) = bwpart(&["mixes"]);
    assert!(ok);
    for name in ["homo-1", "hetero-7", "fig1", "mix-1", "mix-2"] {
        assert!(stdout.contains(name));
    }
}

#[test]
fn bad_arguments_fail_with_usage() {
    let (ok, _, stderr) = bwpart(&["partition", "--scheme", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));
    assert!(stderr.contains("USAGE"));

    let (ok, _, stderr) = bwpart(&[]);
    assert!(!ok);
    assert!(stderr.contains("missing subcommand"));
}

#[test]
fn power_scheme_via_cli() {
    let (ok, stdout, _) = bwpart(&[
        "partition",
        "--scheme",
        "power:0.5",
        "--bandwidth",
        "0.008",
        "--app",
        "a:0.03:0.008",
        "--app",
        "b:0.005:0.002",
    ]);
    assert!(ok);
    assert!(stdout.contains("Power(0.5)"));
}

/// The simulate path is slow even in --fast mode under the debug profile;
/// run a single tiny mix to prove the wiring end to end.
#[test]
fn simulate_fast_runs_end_to_end() {
    let (ok, stdout, stderr) = bwpart(&[
        "simulate", "--mix", "homo-7", "--scheme", "Equal", "--fast", "--seed", "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("homo-7"));
    assert!(stdout.contains("utilized bandwidth"));
    assert!(stdout.contains("Hsp"));
}

/// Service smoke: spawn `bwpart serve`, then drive three client processes
/// through register → telemetry → get-shares → qos-admit and finally
/// shutdown. Each step is a fresh process, so this exercises connection
/// setup/teardown as well as the protocol itself. The CI `service-smoke`
/// job runs exactly this test under a stall timeout.
#[test]
fn service_smoke_three_clients() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_bwpart"))
        .args(["serve", "--epoch-ms", "25"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = serve.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints its address")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner ends with host:port")
        .to_string();
    assert!(banner.contains("listening"), "banner: {banner}");

    let client = |args: &[&str]| -> (bool, String, String) {
        let mut full = vec!["client", "--addr", addr.as_str()];
        full.extend_from_slice(args);
        bwpart(&full)
    };

    // Three clients, each its own app (and its own TCP connections).
    for (i, (name, api)) in [
        ("lbm", "0.00939"),
        ("libquantum", "0.00692"),
        ("omnetpp", "0.00519"),
    ]
    .iter()
    .enumerate()
    {
        let (ok, stdout, stderr) = client(&["register", name, api]);
        assert!(ok, "register {name}: {stderr}");
        assert!(stdout.contains(&format!("app {i}")), "{stdout}");
    }
    for (i, accesses) in ["53100", "34100", "30600"].iter().enumerate() {
        let id = i.to_string();
        let (ok, stdout, stderr) = client(&["telemetry", &id, accesses, "1000000", "200000"]);
        assert!(ok, "telemetry {id}: {stderr}");
        assert!(stdout.contains("queued for epoch"), "{stdout}");
    }

    // Give the 25 ms epoch timer time to fold and publish.
    std::thread::sleep(std::time::Duration::from_millis(250));

    let (ok, stdout, stderr) = client(&["get-shares"]);
    assert!(ok, "get-shares: {stderr}");
    assert!(stdout.contains("square-root"), "{stdout}");
    assert!(stdout.contains("libquantum"), "{stdout}");

    let (ok, stdout, stderr) = client(&["qos-admit", "1", "0.5"]);
    assert!(ok, "qos-admit: {stderr}");
    assert!(stdout.contains("reserved"), "{stdout}");

    // An infeasible target is a structured rejection, not a crash.
    let (ok, _, stderr) = client(&["qos-admit", "0", "1000"]);
    assert!(!ok);
    assert!(stderr.contains("QosUnreachable"), "{stderr}");

    let (ok, stdout, stderr) = client(&["snapshot"]);
    assert!(ok, "snapshot: {stderr}");
    assert!(stdout.contains("QoS target 0.5"), "{stdout}");

    let (ok, stdout, stderr) = client(&["shutdown"]);
    assert!(ok, "shutdown: {stderr}");
    assert!(stdout.contains("shutting down"), "{stdout}");

    let status = serve.wait().expect("serve exits after client shutdown");
    assert!(status.success(), "serve exit: {status:?}");
}

/// Reactor smoke: the same register → telemetry → group-shares → shutdown
/// journey against `bwpart serve --reactor --shards 4`, with one client
/// process per codec, so CI proves the nonblocking front-end, the tenant
/// sharding, and both wire codecs end to end through the real binary.
#[test]
fn service_smoke_reactor_sharded_both_codecs() {
    use std::io::BufRead;
    use std::process::{Command, Stdio};

    let mut serve = Command::new(env!("CARGO_BIN_EXE_bwpart"))
        .args([
            "serve",
            "--reactor",
            "--shards",
            "4",
            "--workers",
            "2",
            "--epoch-ms",
            "25",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = serve.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("serve prints its address")
        .expect("read banner");
    let addr = banner
        .rsplit(' ')
        .next()
        .expect("banner ends with host:port")
        .to_string();
    assert!(banner.contains("listening"), "banner: {banner}");

    let client = |codec: &str, args: &[&str]| -> (bool, String, String) {
        let mut full = vec!["client", "--addr", addr.as_str(), "--codec", codec];
        full.extend_from_slice(args);
        bwpart(&full)
    };

    // Two tenants, one app each; the JSON client owns acme, the binary
    // client owns zeta. Public app ids are shard-encoded, so parse them
    // from the register output instead of assuming 0/1.
    let mut ids = Vec::new();
    for (codec, name, api) in [
        ("json", "acme/lbm", "0.00939"),
        ("binary", "zeta/libquantum", "0.00692"),
    ] {
        let (ok, stdout, stderr) = client(codec, &["register", name, api]);
        assert!(ok, "register {name}: {stderr}");
        let id = stdout
            .split_whitespace()
            .find_map(|w| w.parse::<usize>().ok())
            .expect("register output carries the app id")
            .to_string();
        ids.push(id);
    }
    for (i, (codec, accesses)) in [("binary", "53100"), ("json", "34100")].iter().enumerate() {
        let (ok, stdout, stderr) = client(
            codec,
            &["telemetry", &ids[i], accesses, "1000000", "200000"],
        );
        assert!(ok, "telemetry {}: {stderr}", ids[i]);
        assert!(stdout.contains("queued for epoch"), "{stdout}");
    }

    // Give the 25 ms epoch timers time to fold and publish.
    std::thread::sleep(std::time::Duration::from_millis(250));

    // Each tenant group is its own simplex: the single app gets β = 1.
    for (codec, tenant, name) in [("json", "acme", "lbm"), ("binary", "zeta", "libquantum")] {
        let (ok, stdout, stderr) = client(codec, &["group-shares", tenant]);
        assert!(ok, "group-shares {tenant}: {stderr}");
        assert!(stdout.contains("square-root"), "{stdout}");
        assert!(stdout.contains(name), "{stdout}");
    }

    let (ok, stdout, stderr) = client("binary", &["shutdown"]);
    assert!(ok, "shutdown: {stderr}");
    assert!(stdout.contains("shutting down"), "{stdout}");

    let status = serve.wait().expect("serve exits after client shutdown");
    assert!(status.success(), "serve exit: {status:?}");
}
