//! Property-based tests for the analytical model: the optimality claims of
//! Section III hold against randomized adversarial share vectors, and the
//! solver primitives preserve their invariants on arbitrary inputs.

// Strategy helpers run outside #[test] functions, so the tests exemption
// does not reach them; unwraps on generator-validated data are fine.
#![allow(clippy::unwrap_used)]

use bwpart_core::prelude::*;
use bwpart_core::{closed_form, solver};
use proptest::prelude::*;

/// Strategy: a workload of 2..=8 applications with APIs in [1e-3, 0.1] and
/// APC_alone in [1e-4, 0.01] (the realistic ranges of Table III).
fn arb_apps() -> impl Strategy<Value = Vec<AppProfile>> {
    prop::collection::vec((1e-3f64..0.1, 1e-4f64..0.01), 2..=8).prop_map(|pairs| {
        pairs
            .into_iter()
            .enumerate()
            .map(|(i, (api, apc))| AppProfile::new(format!("app{i}"), api, apc).unwrap())
            .collect()
    })
}

/// A bandwidth that keeps the system contended (below total demand) so the
/// paper's derivations apply exactly.
fn contended_b(apps: &[AppProfile]) -> f64 {
    0.7 * apps.iter().map(|a| a.apc_alone).sum::<f64>()
}

proptest! {
    /// Every enforced scheme yields a valid share vector for any workload.
    #[test]
    fn shares_are_always_valid(apps in arb_apps()) {
        let b = contended_b(&apps);
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let beta = scheme.shares(&apps, b).unwrap();
            bwpart_core::schemes::validate_shares(&beta, apps.len()).unwrap();
        }
    }

    /// Allocations never exceed per-app standalone caps and sum to
    /// min(B, Σ caps).
    #[test]
    fn allocations_respect_caps(apps in arb_apps(), scale in 0.1f64..3.0) {
        let total_demand: f64 = apps.iter().map(|a| a.apc_alone).sum();
        let b = scale * total_demand;
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let alloc = scheme.allocation(&apps, b).unwrap();
            for (a, app) in alloc.iter().zip(&apps) {
                prop_assert!(*a <= app.apc_alone + 1e-12);
                prop_assert!(*a >= 0.0);
            }
            let sum: f64 = alloc.iter().sum();
            prop_assert!((sum - b.min(total_demand)).abs() < 1e-9,
                "{scheme}: sum {sum} vs expected {}", b.min(total_demand));
        }
    }

    /// Square_root maximizes Hsp: no random share vector beats it.
    #[test]
    fn square_root_maximizes_hsp(apps in arb_apps(), seed in any::<u64>()) {
        let b = contended_b(&apps);
        let best = predict::evaluate_scheme(&apps, PartitionScheme::SquareRoot, b)
            .unwrap()
            .metric(Metric::HarmonicWeightedSpeedup);
        for beta in solver::sample_simplex(apps.len(), 32, seed) {
            let v = predict::evaluate(&apps, &beta, b)
                .unwrap()
                .metric(Metric::HarmonicWeightedSpeedup);
            prop_assert!(v <= best + 1e-9, "beta {beta:?} scored {v} > {best}");
        }
    }

    /// Proportional equalizes speedups exactly (ideal fairness, Eq. 7), and
    /// no random share vector achieves higher minimum fairness.
    #[test]
    fn proportional_maximizes_min_fairness(apps in arb_apps(), seed in any::<u64>()) {
        let b = contended_b(&apps);
        let pred = predict::evaluate_scheme(&apps, PartitionScheme::Proportional, b).unwrap();
        let speedups = pred.speedups();
        for w in speedups.windows(2) {
            prop_assert!((w[0] - w[1]).abs() < 1e-9, "speedups not equal: {speedups:?}");
        }
        let best = pred.metric(Metric::MinFairness);
        for beta in solver::sample_simplex(apps.len(), 32, seed) {
            let v = predict::evaluate(&apps, &beta, b)
                .unwrap()
                .metric(Metric::MinFairness);
            prop_assert!(v <= best + 1e-9);
        }
    }

    /// Priority_APC maximizes weighted speedup against random share vectors.
    #[test]
    fn priority_apc_maximizes_wsp(apps in arb_apps(), seed in any::<u64>()) {
        let b = contended_b(&apps);
        let best = predict::evaluate_scheme(&apps, PartitionScheme::PriorityApc, b)
            .unwrap()
            .metric(Metric::WeightedSpeedup);
        for beta in solver::sample_simplex(apps.len(), 32, seed) {
            let v = predict::evaluate(&apps, &beta, b)
                .unwrap()
                .metric(Metric::WeightedSpeedup);
            prop_assert!(v <= best + 1e-9);
        }
    }

    /// Priority_API maximizes sum of IPCs against random share vectors.
    #[test]
    fn priority_api_maximizes_ipcsum(apps in arb_apps(), seed in any::<u64>()) {
        let b = contended_b(&apps);
        let best = predict::evaluate_scheme(&apps, PartitionScheme::PriorityApi, b)
            .unwrap()
            .metric(Metric::SumOfIpcs);
        for beta in solver::sample_simplex(apps.len(), 32, seed) {
            let v = predict::evaluate(&apps, &beta, b)
                .unwrap()
                .metric(Metric::SumOfIpcs);
            prop_assert!(v <= best + 1e-9);
        }
    }

    /// The closed forms (Eq. 4, 6, 8) match direct evaluation through the
    /// forward model on every workload.
    #[test]
    fn closed_forms_match_forward_model(apps in arb_apps()) {
        let b = contended_b(&apps);
        // Eq. 4/6/8 assume no standalone cap binds (Section III derives them
        // for the contended, uncapped regime); skip workloads so skewed that
        // the square-root share of a tiny app exceeds its standalone rate.
        let sqrt_alloc = closed_form::hsp_optimal_allocation(&apps, b).unwrap();
        prop_assume!(sqrt_alloc
            .iter()
            .zip(&apps)
            .all(|(x, a)| *x <= a.apc_alone));
        let sqrt_pred = predict::evaluate_scheme(&apps, PartitionScheme::SquareRoot, b).unwrap();
        let hsp = sqrt_pred.metric(Metric::HarmonicWeightedSpeedup);
        prop_assert!((hsp - closed_form::max_hsp(&apps, b).unwrap()).abs() < 1e-9);
        let wsp = sqrt_pred.metric(Metric::WeightedSpeedup);
        prop_assert!((wsp - closed_form::wsp_of_sqrt(&apps, b).unwrap()).abs() < 1e-9);

        let prop_pred =
            predict::evaluate_scheme(&apps, PartitionScheme::Proportional, b).unwrap();
        let expect = closed_form::hsp_wsp_of_proportional(&apps, b).unwrap();
        prop_assert!((prop_pred.metric(Metric::HarmonicWeightedSpeedup) - expect).abs() < 1e-9);
        prop_assert!((prop_pred.metric(Metric::WeightedSpeedup) - expect).abs() < 1e-9);
    }

    /// The paper's Cauchy orderings hold for every workload.
    #[test]
    fn cauchy_orderings(apps in arb_apps(), scale in 0.05f64..0.95) {
        let b = scale * apps.iter().map(|a| a.apc_alone).sum::<f64>();
        let (lhs, rhs) = closed_form::cauchy::hsp_sqrt_vs_prop(&apps, b).unwrap();
        prop_assert!(lhs >= rhs - 1e-12);
        let (lhs, rhs) = closed_form::cauchy::wsp_sqrt_vs_prop(&apps, b).unwrap();
        prop_assert!(lhs >= rhs - 1e-12);
    }

    /// 2/3_power always sits between Square_root and Proportional on Hsp
    /// (monotonicity of the power family toward the α=1/2 optimum).
    #[test]
    fn power_family_hsp_is_unimodal_around_half(apps in arb_apps()) {
        let b = contended_b(&apps);
        let hsp = |alpha: f64| {
            predict::evaluate_scheme(&apps, PartitionScheme::Power(alpha), b)
                .unwrap()
                .metric(Metric::HarmonicWeightedSpeedup)
        };
        let h_sqrt = hsp(0.5);
        prop_assert!(h_sqrt >= hsp(2.0 / 3.0) - 1e-9);
        prop_assert!(hsp(2.0 / 3.0) >= hsp(1.0) - 1e-9);
        prop_assert!(h_sqrt >= hsp(0.0) - 1e-9);
    }

    /// water_fill output is deterministic, bounded and conserving for
    /// arbitrary weights/caps.
    #[test]
    fn water_fill_invariants(
        pairs in prop::collection::vec((0.0f64..5.0, 0.0f64..2.0), 1..10),
        b in 0.01f64..20.0,
    ) {
        let (weights, caps): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let alloc = solver::water_fill(&weights, &caps, b);
        let total_cap: f64 = caps.iter().sum();
        let sum: f64 = alloc.iter().sum();
        prop_assert!((sum - b.min(total_cap)).abs() < 1e-9);
        for (a, c) in alloc.iter().zip(&caps) {
            prop_assert!(*a >= -1e-12 && *a <= c + 1e-9);
        }
        // Determinism.
        prop_assert_eq!(alloc, solver::water_fill(&weights, &caps, b));
    }

    /// water_fill allocations are monotone in total bandwidth: raising `b`
    /// never shrinks any application's allocation (the water level only
    /// rises), so online repartitioning after a bandwidth upgrade can never
    /// take bandwidth away from an application.
    #[test]
    fn water_fill_monotone_in_b(
        pairs in prop::collection::vec((0.0f64..5.0, 0.0f64..2.0), 1..10),
        b in 0.01f64..10.0,
        extra in 0.01f64..10.0,
    ) {
        let (weights, caps): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let lo = solver::water_fill(&weights, &caps, b);
        let hi = solver::water_fill(&weights, &caps, b + extra);
        for (l, h) in lo.iter().zip(&hi) {
            prop_assert!(*h >= *l - 1e-9, "allocation shrank: {l} -> {h}");
        }
    }

    /// knapsack_greedy grants full caps to every app with a strictly lower
    /// key than any partially-served app.
    #[test]
    fn knapsack_priority_structure(
        pairs in prop::collection::vec((0.0f64..10.0, 0.001f64..1.0), 2..8),
        b in 0.01f64..4.0,
    ) {
        let (keys, caps): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let alloc = solver::knapsack_greedy(&keys, &caps, b);
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if keys[i] < keys[j] && alloc[j] > 1e-12 {
                    // i has strictly higher priority and j got something,
                    // so i must be fully satisfied.
                    prop_assert!((alloc[i] - caps[i]).abs() < 1e-9,
                        "app {i} (key {}) not saturated while {j} (key {}) got {}",
                        keys[i], keys[j], alloc[j]);
                }
            }
        }
    }

    /// QoS partitioning always meets every feasible target exactly in the
    /// forward model, for any best-effort scheme.
    #[test]
    fn qos_targets_always_met(apps in arb_apps(), frac in 0.1f64..0.9) {
        let b = contended_b(&apps);
        // Pick app 0 as the QoS app with a target at `frac` of its alone IPC,
        // but only if the reservation is feasible.
        let target = frac * apps[0].ipc_alone();
        let reserve = target * apps[0].api;
        prop_assume!(reserve < b * 0.9);
        let req = [QosRequest { app: 0, target_ipc: target }];
        for scheme in [
            PartitionScheme::Equal,
            PartitionScheme::SquareRoot,
            PartitionScheme::PriorityApc,
        ] {
            let part = qos::partition(&apps, &req, scheme, b).unwrap();
            let pred = part.predict(&apps).unwrap();
            prop_assert!((pred.ipc_shared[0] - target).abs() < 1e-9);
        }
    }

    /// Forward-model metrics are monotone in total bandwidth: more bandwidth
    /// never hurts any objective under any power-family scheme.
    #[test]
    fn metrics_monotone_in_bandwidth(apps in arb_apps(), frac in 0.1f64..0.8) {
        let demand: f64 = apps.iter().map(|a| a.apc_alone).sum();
        let b1 = frac * demand;
        let b2 = (frac + 0.15) * demand;
        for scheme in [
            PartitionScheme::Equal,
            PartitionScheme::SquareRoot,
            PartitionScheme::Proportional,
        ] {
            let p1 = predict::evaluate_scheme(&apps, scheme, b1).unwrap();
            let p2 = predict::evaluate_scheme(&apps, scheme, b2).unwrap();
            for m in Metric::ALL {
                prop_assert!(p2.metric(m) >= p1.metric(m) - 1e-9,
                    "{scheme} {m} decreased with more bandwidth");
            }
        }
    }
}

proptest! {
    /// Weighted Square_root maximizes weighted Hsp for arbitrary workloads
    /// and weights, against randomized allocations.
    #[test]
    fn weighted_hsp_optimality(
        apps in arb_apps(),
        raw_w in prop::collection::vec(0.2f64..5.0, 8),
        seed in any::<u64>(),
    ) {
        let weights: Vec<f64> = raw_w.iter().take(apps.len()).cloned().collect();
        prop_assume!(weights.len() == apps.len());
        let b = contended_b(&apps);
        let alloc = weighted::hsp_optimal_allocation(&apps, &weights, b).unwrap();
        let eval = |alloc: &[f64]| {
            let pred = predict::evaluate_allocation(&apps, alloc).unwrap();
            weighted::weighted_hsp(&pred.ipc_shared, &pred.ipc_alone, &weights).unwrap()
        };
        let best = eval(&alloc);
        for beta in solver::sample_simplex(apps.len(), 24, seed) {
            let cand: Vec<f64> = beta.iter().map(|&x| x * b).collect();
            prop_assert!(eval(&cand) <= best + 1e-9);
        }
    }

    /// Uniform weights always recover the unweighted paper schemes.
    #[test]
    fn weighted_uniform_degenerates(apps in arb_apps(), scale in 0.2f64..1.5) {
        let b = scale * apps.iter().map(|a| a.apc_alone).sum::<f64>();
        let w = vec![1.0; apps.len()];
        let pairs = [
            (
                weighted::hsp_optimal_allocation(&apps, &w, b).unwrap(),
                PartitionScheme::SquareRoot.allocation(&apps, b).unwrap(),
            ),
            (
                weighted::fairness_optimal_allocation(&apps, &w, b).unwrap(),
                PartitionScheme::Proportional.allocation(&apps, b).unwrap(),
            ),
            (
                weighted::wsp_optimal_allocation(&apps, &w, b).unwrap(),
                PartitionScheme::PriorityApc.allocation(&apps, b).unwrap(),
            ),
            (
                weighted::ipcsum_optimal_allocation(&apps, &w, b).unwrap(),
                PartitionScheme::PriorityApi.allocation(&apps, b).unwrap(),
            ),
        ];
        for (weighted_alloc, plain) in pairs {
            for (x, y) in weighted_alloc.iter().zip(&plain) {
                prop_assert!((x - y).abs() < 1e-9, "{weighted_alloc:?} vs {plain:?}");
            }
        }
    }
}

/// Strategy: every scheme variant, including the generalized power family
/// and the coordinated multi-resource scheme.
fn arb_scheme() -> impl Strategy<Value = PartitionScheme> {
    (0usize..9, 0.01f64..4.0).prop_map(|(variant, alpha)| match variant {
        0 => PartitionScheme::NoPartitioning,
        1 => PartitionScheme::Equal,
        2 => PartitionScheme::Proportional,
        3 => PartitionScheme::SquareRoot,
        4 => PartitionScheme::TwoThirdsPower,
        5 => PartitionScheme::Power(alpha),
        6 => PartitionScheme::PriorityApc,
        7 => PartitionScheme::PriorityApi,
        _ => PartitionScheme::Coordinated,
    })
}

/// Strategy: cache-aware profiles with monotone three-knot miss-ratio
/// curves (the shape `MrcProbe` produces) over a 16-way LLC.
fn arb_cache_apps() -> impl Strategy<Value = Vec<CacheAwareProfile>> {
    prop::collection::vec(
        (
            1e-3f64..0.05,
            0.5f64..2.0,
            20.0f64..120.0,
            0.05f64..1.0,
            0.0f64..0.9,
        ),
        2..=4,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (api_llc, cpi_base, penalty, m_one, keep))| {
                let m_full = m_one * keep;
                let mrc = MissRatioCurve::fit(&[
                    (1.0, m_one),
                    (8.0, (m_one + m_full) / 2.0),
                    (16.0, m_full),
                ])
                .unwrap();
                CacheAwareProfile::new(format!("app{i}"), api_llc, cpi_base, penalty, mrc).unwrap()
            })
            .collect()
    })
}

/// Flip each alphabetic character's case and swap `-`/`_` according to
/// `bits` — every mangled spelling must still parse (the parser lowercases
/// and normalizes underscores).
fn mangle(name: &str, bits: u64) -> String {
    name.chars()
        .enumerate()
        .map(|(i, c)| {
            let flip = bits >> (i % 64) & 1 == 1;
            match c {
                '-' | '_' if flip => {
                    if c == '-' {
                        '_'
                    } else {
                        '-'
                    }
                }
                c if c.is_ascii_alphabetic() && flip => {
                    if c.is_ascii_lowercase() {
                        c.to_ascii_uppercase()
                    } else {
                        c.to_ascii_lowercase()
                    }
                }
                c => c,
            }
        })
        .collect()
}

proptest! {
    /// Every scheme round-trips through its canonical name and its
    /// `Display` form, for every variant including `Coordinated` and
    /// arbitrary power exponents.
    #[test]
    fn scheme_round_trips_canonical_and_display(scheme in arb_scheme()) {
        let canon: PartitionScheme = scheme.canonical_name().parse().unwrap();
        prop_assert_eq!(canon, scheme);
        let display: PartitionScheme = scheme.to_string().parse().unwrap();
        prop_assert_eq!(display, scheme);
    }

    /// Parsing is case-insensitive and treats `-`/`_` interchangeably, so
    /// the paper's spellings (`Square_root`, `Priority_APC`, ...) and any
    /// mixed-case variant resolve to the same scheme.
    #[test]
    fn scheme_parse_tolerates_case_and_separator_mangling(
        scheme in arb_scheme(),
        bits in any::<u64>(),
    ) {
        let mangled = mangle(&scheme.canonical_name(), bits);
        let parsed: PartitionScheme = mangled.parse().unwrap();
        prop_assert_eq!(parsed, scheme);
    }

    /// The coordinated solve returns a certified multi-resource outcome on
    /// arbitrary cache-aware workloads: ways form an integral partition,
    /// both per-resource allocations lie on the simplex and mirror the
    /// outcome's own fields, and the objective never trails the best
    /// single-resource baseline.
    #[test]
    fn coordinated_outcome_is_certified_and_beats_baselines(
        apps in arb_cache_apps(),
        bfrac in 0.3f64..0.9,
        scale in 0.5f64..1.5,
    ) {
        let n = apps.len();
        let b = bfrac * apps.iter().map(|a| a.apc_alone_at(16.0)).sum::<f64>();
        let cfg = CoordConfig::new(b, 16);
        let scales = vec![scale; n];
        for out in [
            solve_coordinated(&apps, &cfg).unwrap(),
            solve_coordinated_scaled(&apps, &scales, &cfg).unwrap(),
        ] {
            prop_assert_eq!(out.ways.len(), n);
            prop_assert!(out.ways.iter().all(|&w| w >= cfg.min_ways));
            prop_assert_eq!(out.ways.iter().sum::<usize>(), cfg.total_ways);
            for kind in ResourceKind::ALL {
                let alloc = out.allocation.get(kind).unwrap();
                prop_assert_eq!(alloc.len(), n);
                let sum: f64 = alloc.shares.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "{kind} shares sum {sum}");
                prop_assert!(alloc.shares.iter().all(|&s| s >= 0.0));
            }
            let lw = out.allocation.get(ResourceKind::LlcWays).unwrap();
            for (amt, &w) in lw.amounts.iter().zip(&out.ways) {
                prop_assert!((amt - w as f64).abs() < 1e-12);
            }
            let bw = out.allocation.get(ResourceKind::Bandwidth).unwrap();
            for (amt, a) in bw.amounts.iter().zip(&out.bandwidth.allocation) {
                prop_assert!((amt - a).abs() < 1e-12);
            }
            let beta_sum: f64 = out.bandwidth.beta.iter().sum();
            prop_assert!((beta_sum - 1.0).abs() < 1e-9);
            prop_assert!(
                out.objective_value
                    >= out.baseline_value - out.baseline_value.abs() * 1e-9,
                "objective {} trails baseline {}",
                out.objective_value,
                out.baseline_value
            );
            prop_assert!(out.rounds <= cfg.max_rounds);
        }
    }
}
