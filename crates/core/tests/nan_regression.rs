//! NaN robustness regression tests.
//!
//! Ordering in the solver and schemes goes through `f64::total_cmp`, under
//! which NaN sorts *after* every number. A NaN priority key therefore
//! degrades gracefully — the malformed application is served last — instead
//! of panicking inside a comparator, which is what the previous
//! `partial_cmp().expect(...)` implementation did.

use bwpart_core::prelude::*;
use bwpart_core::solver;

#[test]
fn knapsack_greedy_tolerates_nan_keys() {
    let keys = [f64::NAN, 2.0, 1.0];
    let caps = [1.0, 1.0, 1.0];
    let alloc = solver::knapsack_greedy(&keys, &caps, 2.5);
    // Ascending keys with NaN last: app 2, then app 1, then the NaN app.
    assert!((alloc[2] - 1.0).abs() < 1e-12);
    assert!((alloc[1] - 1.0).abs() < 1e-12);
    assert!((alloc[0] - 0.5).abs() < 1e-12);
    // Eq. 2 conservation survives the malformed key.
    assert!((alloc.iter().sum::<f64>() - 2.5).abs() < 1e-9);
}

#[test]
fn knapsack_greedy_all_nan_keys_still_conserves() {
    let keys = [f64::NAN, f64::NAN];
    let caps = [0.6, 0.6];
    let alloc = solver::knapsack_greedy(&keys, &caps, 1.0);
    assert!((alloc.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    for (a, c) in alloc.iter().zip(&caps) {
        assert!(*a >= 0.0 && *a <= c + 1e-12);
    }
}

#[test]
fn priority_api_tolerates_nan_profile() {
    // AppProfile::new rejects NaN, but the fields are public so a profile
    // can be built literally (e.g. from deserialized or computed data). The
    // scheme must degrade gracefully, not panic.
    let apps = vec![
        AppProfile {
            name: "nan".into(),
            api: f64::NAN,
            apc_alone: 0.004,
        },
        AppProfile {
            name: "ok".into(),
            api: 0.02,
            apc_alone: 0.006,
        },
    ];
    let alloc = PartitionScheme::PriorityApi
        .allocation(&apps, 0.008)
        .unwrap();
    assert_eq!(alloc.len(), 2);
    // The NaN-keyed app sorts last: the well-formed app saturates first.
    assert!((alloc[1] - 0.006).abs() < 1e-12);
    assert!((alloc[0] - 0.002).abs() < 1e-12);
}

#[test]
fn priority_apc_ranks_finite_keys_totally() {
    // Sanity companion: with well-formed profiles Priority_APC saturates
    // ascending APC_alone order (smallest standalone appetite first).
    let apps = vec![
        AppProfile::new("big", 0.03, 0.009).unwrap(),
        AppProfile::new("small", 0.02, 0.002).unwrap(),
        AppProfile::new("mid", 0.01, 0.004).unwrap(),
    ];
    let alloc = PartitionScheme::PriorityApc
        .allocation(&apps, 0.007)
        .unwrap();
    assert!((alloc[1] - 0.002).abs() < 1e-12);
    assert!((alloc[2] - 0.004).abs() < 1e-12);
    assert!((alloc[0] - 0.001).abs() < 1e-12);
}
