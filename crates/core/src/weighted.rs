//! Priority-weighted objectives and their optimal partitions.
//!
//! Section II-B motivates weights — "the system performance metric may be
//! defined in such a way that applications with higher priority have more
//! weights" — but the paper only derives the uniform-weight optima. This
//! module supplies the weighted generalization, following the same
//! constrained-optimization recipe (it is exactly the "any IPC-based
//! metric" claim of Section III-F made concrete):
//!
//! * **Weighted harmonic speedup** `N / Σ (w_i · IPC_alone,i/IPC_shared,i)`
//!   (higher weight = that application's slowdown hurts more). Lagrange
//!   gives the optimum at `APC_shared,i ∝ √(w_i · APC_alone,i)` — the
//!   `Square_root` rule with weights folded in.
//! * **Weighted speedup** `Σ w_i · IPC_shared,i/IPC_alone,i`: the knapsack
//!   value density becomes `w_i / APC_alone,i`, so strict priority goes to
//!   the highest `w_i / APC_alone,i` (uniform weights recover
//!   `Priority_APC`).
//! * **Weighted sum of IPCs** `Σ w_i · IPC_shared,i`: density
//!   `w_i / API_i` (uniform weights recover `Priority_API`).

use crate::app::AppProfile;
use crate::error::ModelError;
use crate::solver;

fn check(apps: &[AppProfile], weights: &[f64], b: f64) -> Result<(), ModelError> {
    if apps.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if weights.len() != apps.len() {
        return Err(ModelError::LengthMismatch {
            expected: apps.len(),
            got: weights.len(),
        });
    }
    for &w in weights {
        if !(w.is_finite() && w > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "weight",
                value: w,
            });
        }
    }
    if !(b.is_finite() && b > 0.0) {
        return Err(ModelError::InvalidInput {
            what: "total_bandwidth",
            value: b,
        });
    }
    Ok(())
}

/// Weighted harmonic speedup of an outcome:
/// `N / Σ (w_i · IPC_alone,i / IPC_shared,i)`.
pub fn weighted_hsp(
    ipc_shared: &[f64],
    ipc_alone: &[f64],
    weights: &[f64],
) -> Result<f64, ModelError> {
    if ipc_shared.len() != ipc_alone.len() || ipc_shared.len() != weights.len() {
        return Err(ModelError::LengthMismatch {
            expected: ipc_shared.len(),
            got: weights.len(),
        });
    }
    if ipc_shared.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if ipc_shared.contains(&0.0) {
        return Ok(0.0);
    }
    let denom: f64 = ipc_shared
        .iter()
        .zip(ipc_alone)
        .zip(weights)
        .map(|((&s, &a), &w)| w * a / s)
        .sum();
    Ok(ipc_shared.len() as f64 / denom)
}

/// Weighted speedup: `Σ w_i · IPC_shared,i / IPC_alone,i / N`.
pub fn weighted_wsp(
    ipc_shared: &[f64],
    ipc_alone: &[f64],
    weights: &[f64],
) -> Result<f64, ModelError> {
    if ipc_shared.len() != weights.len() || ipc_shared.len() != ipc_alone.len() {
        return Err(ModelError::LengthMismatch {
            expected: ipc_shared.len(),
            got: weights.len(),
        });
    }
    if ipc_shared.is_empty() {
        return Err(ModelError::NoApplications);
    }
    Ok(ipc_shared
        .iter()
        .zip(ipc_alone)
        .zip(weights)
        .map(|((&s, &a), &w)| w * s / a)
        .sum::<f64>()
        / ipc_shared.len() as f64)
}

/// Optimal allocation for weighted harmonic speedup:
/// `APC_shared,i ∝ √(w_i · APC_alone,i)`, capped at standalone rates.
pub fn hsp_optimal_allocation(
    apps: &[AppProfile],
    weights: &[f64],
    b: f64,
) -> Result<Vec<f64>, ModelError> {
    check(apps, weights, b)?;
    let wvec: Vec<f64> = apps
        .iter()
        .zip(weights)
        .map(|(a, &w)| (w * a.apc_alone).sqrt())
        .collect();
    let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
    let alloc = solver::water_fill(&wvec, &caps, b);
    crate::ensures_capped!(alloc, caps);
    Ok(alloc)
}

/// Optimal allocation for weighted speedup: strict priority by descending
/// value density `w_i / APC_alone,i` (fractional knapsack).
pub fn wsp_optimal_allocation(
    apps: &[AppProfile],
    weights: &[f64],
    b: f64,
) -> Result<Vec<f64>, ModelError> {
    check(apps, weights, b)?;
    // knapsack_greedy fills ascending keys; use the reciprocal density.
    let keys: Vec<f64> = apps
        .iter()
        .zip(weights)
        .map(|(a, &w)| a.apc_alone / w)
        .collect();
    let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
    let alloc = solver::knapsack_greedy(&keys, &caps, b);
    crate::ensures_capped!(alloc, caps);
    Ok(alloc)
}

/// Optimal allocation for weighted sum of IPCs: strict priority by
/// descending `w_i / API_i`.
pub fn ipcsum_optimal_allocation(
    apps: &[AppProfile],
    weights: &[f64],
    b: f64,
) -> Result<Vec<f64>, ModelError> {
    check(apps, weights, b)?;
    let keys: Vec<f64> = apps.iter().zip(weights).map(|(a, &w)| a.api / w).collect();
    let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
    let alloc = solver::knapsack_greedy(&keys, &caps, b);
    crate::ensures_capped!(alloc, caps);
    Ok(alloc)
}

/// Weighted-fair allocation: equalize *weighted* speedups
/// (`speedup_i / w_i` equal), i.e. `APC_shared,i ∝ w_i · APC_alone,i`.
pub fn fairness_optimal_allocation(
    apps: &[AppProfile],
    weights: &[f64],
    b: f64,
) -> Result<Vec<f64>, ModelError> {
    check(apps, weights, b)?;
    let wvec: Vec<f64> = apps
        .iter()
        .zip(weights)
        .map(|(a, &w)| w * a.apc_alone)
        .collect();
    let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
    let alloc = solver::water_fill(&wvec, &caps, b);
    crate::ensures_capped!(alloc, caps);
    Ok(alloc)
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::predict;
    use crate::solver::sample_simplex;

    fn apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new("a", 0.04, 0.008).unwrap(),
            AppProfile::new("b", 0.03, 0.005).unwrap(),
            AppProfile::new("c", 0.006, 0.002).unwrap(),
        ]
    }

    const B: f64 = 0.009;

    fn ipc_from_alloc(apps: &[AppProfile], alloc: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let pred = predict::evaluate_allocation(apps, alloc).unwrap();
        (pred.ipc_shared, pred.ipc_alone)
    }

    #[test]
    fn uniform_weights_recover_paper_schemes() {
        let a = apps();
        let w = vec![1.0; 3];
        let weighted = hsp_optimal_allocation(&a, &w, B).unwrap();
        let unweighted = crate::schemes::PartitionScheme::SquareRoot
            .allocation(&a, B)
            .unwrap();
        for (x, y) in weighted.iter().zip(&unweighted) {
            assert!((x - y).abs() < 1e-12);
        }
        let weighted = wsp_optimal_allocation(&a, &w, B).unwrap();
        let unweighted = crate::schemes::PartitionScheme::PriorityApc
            .allocation(&a, B)
            .unwrap();
        assert_eq!(weighted, unweighted);
        let weighted = ipcsum_optimal_allocation(&a, &w, B).unwrap();
        let unweighted = crate::schemes::PartitionScheme::PriorityApi
            .allocation(&a, B)
            .unwrap();
        assert_eq!(weighted, unweighted);
    }

    #[test]
    fn weighted_hsp_optimum_beats_sampled_allocations() {
        let a = apps();
        let w = vec![4.0, 1.0, 1.0];
        let alloc = hsp_optimal_allocation(&a, &w, B).unwrap();
        let (s, al) = ipc_from_alloc(&a, &alloc);
        let best = weighted_hsp(&s, &al, &w).unwrap();
        for beta in sample_simplex(3, 200, 0xFEED) {
            let cand: Vec<f64> = beta.iter().map(|&x| x * B).collect();
            let (s, al) = ipc_from_alloc(&a, &cand);
            let v = weighted_hsp(&s, &al, &w).unwrap();
            assert!(v <= best + 1e-9, "beta {beta:?} scored {v} > {best}");
        }
    }

    #[test]
    fn weighted_wsp_optimum_beats_sampled_allocations() {
        let a = apps();
        let w = vec![1.0, 5.0, 1.0];
        let alloc = wsp_optimal_allocation(&a, &w, B).unwrap();
        let (s, al) = ipc_from_alloc(&a, &alloc);
        let best = weighted_wsp(&s, &al, &w).unwrap();
        for beta in sample_simplex(3, 200, 0xBEEF) {
            let cand: Vec<f64> = beta.iter().map(|&x| x * B).collect();
            let (s, al) = ipc_from_alloc(&a, &cand);
            let v = weighted_wsp(&s, &al, &w).unwrap();
            assert!(v <= best + 1e-9);
        }
    }

    #[test]
    fn raising_a_weight_raises_its_share() {
        let a = apps();
        let low = hsp_optimal_allocation(&a, &[1.0, 1.0, 1.0], B).unwrap();
        let high = hsp_optimal_allocation(&a, &[4.0, 1.0, 1.0], B).unwrap();
        assert!(high[0] > low[0], "weight 4 should grow app 0's share");
        assert!(high[1] < low[1] && high[2] < low[2]);
    }

    #[test]
    fn weighted_fairness_equalizes_weighted_speedups() {
        let a = apps();
        let w = vec![2.0, 1.0, 0.5];
        let alloc = fairness_optimal_allocation(&a, &w, B).unwrap();
        let (s, al) = ipc_from_alloc(&a, &alloc);
        // speedup_i / w_i equal across apps (uncapped regime check).
        let ratios: Vec<f64> = s
            .iter()
            .zip(&al)
            .zip(&w)
            .map(|((&s, &a), &w)| s / a / w)
            .collect();
        for pair in ratios.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 1e-9,
                "weighted speedups not equal: {ratios:?}"
            );
        }
    }

    #[test]
    fn wsp_priority_ordering_follows_density() {
        let a = apps();
        // App b gets weight 10: its density w/APC = 2000 dominates.
        let w = vec![1.0, 10.0, 1.0];
        // Scarce bandwidth (below b's standalone cap): b soaks it all up.
        let alloc = wsp_optimal_allocation(&a, &w, 0.004).unwrap();
        assert!(
            (alloc[1] - 0.004).abs() < 1e-12,
            "b served first: {alloc:?}"
        );
        assert_eq!(alloc[0], 0.0);
        assert_eq!(alloc[2], 0.0);
    }

    #[test]
    fn rejects_bad_weights() {
        let a = apps();
        assert!(hsp_optimal_allocation(&a, &[1.0, 1.0], B).is_err());
        assert!(hsp_optimal_allocation(&a, &[1.0, 0.0, 1.0], B).is_err());
        assert!(hsp_optimal_allocation(&a, &[1.0, -1.0, 1.0], B).is_err());
        assert!(weighted_hsp(&[1.0], &[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn starved_app_zeroes_weighted_hsp() {
        assert_eq!(
            weighted_hsp(&[0.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]).unwrap(),
            0.0
        );
    }
}
