//! The coordinated multi-resource solver: alternating descent over
//! (bandwidth shares × LLC way allocations).
//!
//! Coordinated bandwidth + cache partitioning (CBP) observes that the two
//! resources interact: the ways an application holds set its miss traffic
//! — [`CacheAwareProfile::apc_alone_at`] — which in turn sets the optimal
//! bandwidth split. The solver alternates the two coordinates:
//!
//! 1. **Bandwidth step** — at the current way vector `w`, materialize
//!    per-app [`AppProfile`]s via the fitted miss-ratio curves and solve
//!    the inner (paper) scheme for the bandwidth shares.
//! 2. **Way step** — greedy local search over single-way moves
//!    (donor → recipient, keeping every app at `min_ways`); each candidate
//!    is scored by re-running the bandwidth step and evaluating the
//!    objective on the predicted outcome (Section III-F forward model).
//!
//! **Convergence criteria**: the descent stops when no single-way move
//! improves the predicted objective by more than a relative `1e-9`, or
//! after [`CoordConfig::max_rounds`] rounds. Because only improving moves
//! are taken, the objective is non-decreasing across rounds and the search
//! terminates.
//!
//! **Baseline guarantee**: before returning, the solver also scores every
//! enforced single-resource scheme at the fair (equal-ways) split and at
//! the descent's final ways, and returns the argmax over the whole
//! candidate set. The coordinated outcome is therefore *never worse than
//! the best single-resource scheme* on the configured objective — the
//! property the solver proptests pin down. Ties break toward the
//! descent's inner-scheme outcome (a baseline must win by more than an
//! ulp-scale relative margin to displace it), so the returned split is a
//! deterministic, stable function of the inputs even when standalone caps
//! make several schemes outcome-equivalent.
//!
//! Both resulting allocations are certified per resource with
//! [`ensures_simplex!`](crate::ensures_simplex) /
//! [`ensures_capped!`](crate::ensures_capped) via
//! [`Allocation::certified`].

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::error::ModelError;
use crate::metrics::Metric;
use crate::mrc::CacheAwareProfile;
use crate::predict;
use crate::resource::{Allocation, MultiAllocation, Resource};
use crate::schemes::{PartitionScheme, SharesOutcome};

/// Relative improvement below which a way move is considered converged.
const REL_TOL: f64 = 1e-9;

/// Configuration for the coordinated solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoordConfig {
    /// Total utilized off-chip bandwidth `B` (APC).
    pub bandwidth: f64,
    /// Total shared-LLC ways to divide.
    pub total_ways: usize,
    /// Minimum ways per application (way masks cannot be empty).
    pub min_ways: usize,
    /// Inner bandwidth scheme used at each way vector (the paper's
    /// `SquareRoot` is the harmonic-speedup optimum and the default).
    pub inner: PartitionScheme,
    /// Objective the descent maximizes.
    pub objective: Metric,
    /// Maximum alternating rounds before the solve settles.
    pub max_rounds: usize,
}

impl CoordConfig {
    /// Defaults: the paper's DDR2-400 `B`, a 16-way LLC, square-root inner
    /// scheme, harmonic weighted speedup objective.
    pub fn new(bandwidth: f64, total_ways: usize) -> Self {
        CoordConfig {
            bandwidth,
            total_ways,
            min_ways: 1,
            inner: PartitionScheme::SquareRoot,
            objective: Metric::HarmonicWeightedSpeedup,
            max_rounds: 16,
        }
    }

    /// Check the configuration against an application count.
    pub fn validate(&self, n_apps: usize) -> Result<(), ModelError> {
        if n_apps == 0 {
            return Err(ModelError::NoApplications);
        }
        if !(self.bandwidth.is_finite() && self.bandwidth > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "total_bandwidth",
                value: self.bandwidth,
            });
        }
        if self.min_ways == 0 {
            return Err(ModelError::InvalidInput {
                what: "min_ways",
                value: 0.0,
            });
        }
        if self.total_ways < n_apps * self.min_ways {
            return Err(ModelError::InvalidInput {
                what: "total_ways below min_ways per app",
                value: self.total_ways as f64,
            });
        }
        Ok(())
    }
}

/// The coordinated solver's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordOutcome {
    /// Final integral way allocation (sums to `total_ways`, each ≥
    /// `min_ways`).
    pub ways: Vec<usize>,
    /// The bandwidth solve at the final way vector (the inner scheme's
    /// canonical name, shares, and capped allocation).
    pub bandwidth: SharesOutcome,
    /// Per-app profiles materialized at the final way vector.
    pub profiles: Vec<AppProfile>,
    /// Predicted objective value of the returned partitioning.
    pub objective_value: f64,
    /// Best predicted objective among single-resource baselines (every
    /// enforced scheme at the equal-ways split) — by construction
    /// `objective_value ≥ baseline_value`.
    pub baseline_value: f64,
    /// Alternating rounds the descent ran before converging.
    pub rounds: usize,
    /// Certified per-resource allocations (bandwidth + LLC ways).
    pub allocation: MultiAllocation,
}

/// One scored candidate during the search.
struct Candidate {
    ways: Vec<usize>,
    outcome: SharesOutcome,
    profiles: Vec<AppProfile>,
    value: f64,
}

/// Score `scheme` at way vector `ways`: materialize profiles, solve the
/// bandwidth split, run the forward model, evaluate the objective.
///
/// Speedups are normalized against the *standalone* machine — the app
/// alone with the whole LLC (`total_ways`) and the whole bandwidth — not
/// against the candidate's own way count, so that way moves register in
/// the objective instead of cancelling out of the ratio.
fn score(
    apps: &[CacheAwareProfile],
    scales: &[f64],
    ways: &[usize],
    scheme: PartitionScheme,
    cfg: &CoordConfig,
) -> Result<Candidate, ModelError> {
    let profiles: Vec<AppProfile> = apps
        .iter()
        .zip(scales)
        .zip(ways)
        .map(|((a, &s), &w)| a.profile_at(w as f64, s))
        .collect::<Result<_, _>>()?;
    let outcome = scheme.solve(&profiles, cfg.bandwidth)?;
    // Shared-mode IPCs at the candidate ways (Eq. 1, standalone-capped).
    let shared = predict::evaluate_allocation(&profiles, &outcome.allocation)?;
    // Standalone denominators at the full LLC.
    let ipc_alone: Vec<f64> = apps
        .iter()
        .zip(scales)
        .map(|(a, &s)| {
            a.profile_at(cfg.total_ways as f64, s)
                .map(|p| p.ipc_alone())
        })
        .collect::<Result<_, _>>()?;
    let value = crate::metrics::evaluate(cfg.objective, &shared.ipc_shared, &ipc_alone)?;
    Ok(Candidate {
        ways: ways.to_vec(),
        outcome,
        profiles,
        value,
    })
}

/// The fair integral split: `total_ways` divided as evenly as possible.
fn equal_ways(n: usize, cfg: &CoordConfig) -> Vec<usize> {
    let free = cfg.total_ways - n * cfg.min_ways;
    (0..n)
        .map(|i| cfg.min_ways + free / n + usize::from(i < free % n))
        .collect()
}

/// Solve the coordinated (bandwidth × LLC ways) partitioning for pure
/// model profiles (no telemetry calibration).
// lint: allow(R3): thin delegator — certification runs inside
// solve_coordinated_scaled (A2 verifies the reachability)
pub fn solve_coordinated(
    apps: &[CacheAwareProfile],
    cfg: &CoordConfig,
) -> Result<CoordOutcome, ModelError> {
    solve_coordinated_scaled(apps, &vec![1.0; apps.len()], cfg)
}

/// Solve the coordinated partitioning with per-app `APC_alone` calibration
/// factors (`bwpartd` passes the ratio of the Eq. 12–13 telemetry estimate
/// to the model's prediction at the currently enforced ways; offline
/// callers pass 1.0).
pub fn solve_coordinated_scaled(
    apps: &[CacheAwareProfile],
    apc_scales: &[f64],
    cfg: &CoordConfig,
) -> Result<CoordOutcome, ModelError> {
    cfg.validate(apps.len())?;
    if apc_scales.len() != apps.len() {
        return Err(ModelError::LengthMismatch {
            expected: apps.len(),
            got: apc_scales.len(),
        });
    }
    let n = apps.len();
    let fair = equal_ways(n, cfg);
    let mut best = score(apps, apc_scales, &fair, cfg.inner, cfg)?;

    // Alternating descent: bandwidth step is folded into `score`; the way
    // step takes the best improving single-way move per round.
    let mut rounds = 0usize;
    while rounds < cfg.max_rounds {
        rounds += 1;
        let mut round_best: Option<Candidate> = None;
        for donor in 0..n {
            if best.ways[donor] <= cfg.min_ways {
                continue;
            }
            for recipient in 0..n {
                if recipient == donor {
                    continue;
                }
                let mut ways = best.ways.clone();
                ways[donor] -= 1;
                ways[recipient] += 1;
                let cand = score(apps, apc_scales, &ways, cfg.inner, cfg)?;
                if cand.value > round_best.as_ref().map_or(best.value, |c| c.value) {
                    round_best = Some(cand);
                }
            }
        }
        match round_best {
            Some(cand) if cand.value > best.value * (1.0 + REL_TOL) => best = cand,
            _ => break,
        }
    }

    // Baseline guarantee: score every enforced single-resource scheme at
    // the fair split (the bandwidth-only operating point) and at the
    // descent's final ways; return the argmax over all candidates.
    //
    // Ties are common once standalone caps flatten the objective (every
    // scheme whose split saturates the same caps predicts the same
    // speedups), so a candidate only displaces the descent's inner-scheme
    // outcome when it is *strictly* better beyond an ulp-scale margin —
    // otherwise the returned split would flip between outcome-equivalent
    // schemes on float noise in the calibration scales.
    let tie_margin = |v: f64| v.abs() * 1e-12;
    let mut baseline_value = f64::NEG_INFINITY;
    for scheme in PartitionScheme::ENFORCED_SCHEMES {
        let at_fair = score(apps, apc_scales, &fair, scheme, cfg)?;
        baseline_value = baseline_value.max(at_fair.value);
        if at_fair.value > best.value + tie_margin(best.value) {
            best = at_fair;
        }
        if best.ways != fair {
            let at_final = score(apps, apc_scales, &best.ways.clone(), scheme, cfg)?;
            if at_final.value > best.value + tie_margin(best.value) {
                best = at_final;
            }
        }
    }
    crate::invariant!(
        best.value >= baseline_value - tie_margin(baseline_value),
        "coordinated outcome {} must not trail the best single-resource baseline {}",
        best.value,
        baseline_value
    );

    // Certify both resources.
    let way_amounts: Vec<f64> = best.ways.iter().map(|&w| w as f64).collect();
    let way_caps = vec![(cfg.total_ways - (n - 1) * cfg.min_ways) as f64; n];
    let ways_alloc = Allocation::certified(
        &Resource {
            min_unit: cfg.min_ways as f64,
            ..Resource::llc_ways(cfg.total_ways)
        },
        way_amounts,
        &way_caps,
    )?;
    let bw_caps: Vec<f64> = best.profiles.iter().map(|p| p.apc_alone).collect();
    let bw_alloc = Allocation::certified(
        &Resource::bandwidth(cfg.bandwidth),
        best.outcome.allocation.clone(),
        &bw_caps,
    )?;
    crate::ensures_simplex!(best.outcome.beta);
    crate::invariant!(
        best.ways.iter().sum::<usize>() == cfg.total_ways
            && best.ways.iter().all(|&w| w >= cfg.min_ways),
        "way allocation must be integral, conservative, and floored"
    );

    let Candidate {
        ways,
        outcome,
        profiles,
        value,
    } = best;
    Ok(CoordOutcome {
        ways,
        bandwidth: outcome,
        profiles,
        objective_value: value,
        baseline_value,
        rounds,
        allocation: MultiAllocation {
            per_resource: vec![bw_alloc, ways_alloc],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrc::MissRatioCurve;
    use crate::resource::ResourceKind;

    /// A latency-sensitive app whose working set fits in a few ways, and a
    /// streaming hog whose miss ratio barely moves with ways.
    fn cache_mix() -> Vec<CacheAwareProfile> {
        let steep = MissRatioCurve::fit(&[
            (1.0, 0.95),
            (2.0, 0.85),
            (4.0, 0.7),
            (8.0, 0.45),
            (12.0, 0.12),
            (16.0, 0.03),
        ])
        .unwrap();
        let flat = MissRatioCurve::fit(&[(1.0, 0.99), (16.0, 0.97)]).unwrap();
        vec![
            CacheAwareProfile::new("latsens", 0.03, 1.0, 350.0, steep).unwrap(),
            CacheAwareProfile::new("streamhog", 0.06, 0.4, 60.0, flat).unwrap(),
        ]
    }

    fn cfg() -> CoordConfig {
        CoordConfig::new(0.0095, 16)
    }

    #[test]
    fn coordinated_beats_fair_ways_on_cache_mix() {
        let apps = cache_mix();
        let out = solve_coordinated(&apps, &cfg()).unwrap();
        assert!(
            out.objective_value >= out.baseline_value - 1e-12,
            "coordinated {} vs baseline {}",
            out.objective_value,
            out.baseline_value
        );
        // The cache-sensitive app should end up with more ways than the
        // streamer, and strictly more than the fair split.
        assert!(out.ways[0] > out.ways[1], "ways: {:?}", out.ways);
        assert!(out.ways[0] > 8, "ways: {:?}", out.ways);
    }

    #[test]
    fn outcome_is_conservative_and_floored() {
        let apps = cache_mix();
        let c = cfg();
        let out = solve_coordinated(&apps, &c).unwrap();
        assert_eq!(out.ways.iter().sum::<usize>(), c.total_ways);
        assert!(out.ways.iter().all(|&w| w >= c.min_ways));
        assert_eq!(out.profiles.len(), apps.len());
        let bw = out.allocation.get(ResourceKind::Bandwidth).unwrap();
        let ways = out.allocation.get(ResourceKind::LlcWays).unwrap();
        assert!((bw.shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((ways.shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (w, amt) in out.ways.iter().zip(&ways.amounts) {
            assert!((*w as f64 - amt).abs() < 1e-12);
        }
    }

    #[test]
    fn identical_apps_settle_on_fair_ways() {
        let flatish =
            MissRatioCurve::fit(&[(1.0, 0.8), (4.0, 0.4), (8.0, 0.2), (16.0, 0.1)]).unwrap();
        let apps: Vec<CacheAwareProfile> = (0..4)
            .map(|i| {
                CacheAwareProfile::new(format!("a{i}"), 0.03, 0.8, 150.0, flatish.clone()).unwrap()
            })
            .collect();
        let out = solve_coordinated(&apps, &cfg()).unwrap();
        assert_eq!(out.ways, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_app_takes_everything() {
        let apps = vec![cache_mix().remove(0)];
        let out = solve_coordinated(&apps, &cfg()).unwrap();
        assert_eq!(out.ways, vec![16]);
        assert!((out.bandwidth.beta[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_scales_the_solve_inputs() {
        let apps = cache_mix();
        let base = solve_coordinated(&apps, &cfg()).unwrap();
        let scaled = solve_coordinated_scaled(&apps, &[1.0, 1.0], &cfg()).unwrap();
        assert_eq!(base, scaled);
        assert!(solve_coordinated_scaled(&apps, &[1.0], &cfg()).is_err());
    }

    #[test]
    fn config_validation() {
        let apps = cache_mix();
        let mut c = cfg();
        c.total_ways = 1;
        assert!(solve_coordinated(&apps, &c).is_err());
        let mut c = cfg();
        c.bandwidth = -1.0;
        assert!(solve_coordinated(&apps, &c).is_err());
        let mut c = cfg();
        c.min_ways = 0;
        assert!(solve_coordinated(&apps, &c).is_err());
        assert!(solve_coordinated(&[], &cfg()).is_err());
    }

    #[test]
    fn determinism() {
        let apps = cache_mix();
        let a = solve_coordinated(&apps, &cfg()).unwrap();
        let b = solve_coordinated(&apps, &cfg()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn outcome_serializes_round_trip() {
        let apps = cache_mix();
        let out = solve_coordinated(&apps, &cfg()).unwrap();
        let json = serde_json::to_string(&out).unwrap();
        let back: CoordOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out);
    }
}
