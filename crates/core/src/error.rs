//! Error type shared by the analytical-model crate.

use std::fmt;

/// Errors produced while constructing profiles or solving for partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A numeric input was non-finite or out of its legal domain.
    InvalidInput {
        /// Name of the offending field or parameter.
        what: &'static str,
        /// The value that was rejected.
        value: f64,
    },
    /// The application list was empty where at least one app is required.
    NoApplications,
    /// Vector lengths disagreed (e.g. a share vector for a different app count).
    LengthMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Number of entries actually supplied.
        got: usize,
    },
    /// A share vector did not lie on the unit simplex.
    InvalidShares {
        /// Sum of the supplied shares.
        sum: f64,
    },
    /// A QoS reservation is infeasible with the available bandwidth.
    QosInfeasible {
        /// Bandwidth the QoS group requires (accesses per cycle).
        required: f64,
        /// Bandwidth actually available (accesses per cycle).
        available: f64,
    },
    /// A scheme name failed to parse (see `PartitionScheme::from_str`).
    UnknownScheme {
        /// The name that did not match any scheme or alias.
        name: String,
    },
    /// A resource-kind name failed to parse (see `ResourceKind::from_str`).
    UnknownResource {
        /// The name that did not match any resource kind.
        name: String,
    },
    /// A QoS target exceeds what the application can reach even alone.
    QosTargetUnreachable {
        /// Index of the offending application.
        app: usize,
        /// The requested IPC target.
        target_ipc: f64,
        /// The application's standalone IPC ceiling.
        ipc_alone: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidInput { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            ModelError::NoApplications => write!(f, "at least one application is required"),
            ModelError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
            ModelError::InvalidShares { sum } => {
                write!(f, "share vector must sum to 1 (got {sum})")
            }
            ModelError::QosInfeasible {
                required,
                available,
            } => write!(
                f,
                "QoS group needs {required} APC but only {available} APC is available"
            ),
            ModelError::UnknownScheme { name } => {
                write!(
                    f,
                    "unknown scheme `{name}` (canonical names are kebab-case, e.g. `square-root`)"
                )
            }
            ModelError::UnknownResource { name } => {
                write!(
                    f,
                    "unknown resource `{name}` (known kinds: `bandwidth`, `llc-ways`)"
                )
            }
            ModelError::QosTargetUnreachable {
                app,
                target_ipc,
                ipc_alone,
            } => write!(
                f,
                "QoS target IPC {target_ipc} for app {app} exceeds its standalone IPC {ipc_alone}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidInput {
            what: "api",
            value: -1.0,
        };
        assert!(e.to_string().contains("api"));
        assert!(e.to_string().contains("-1"));

        let e = ModelError::QosInfeasible {
            required: 0.02,
            available: 0.01,
        };
        assert!(e.to_string().contains("0.02"));
        assert!(e.to_string().contains("0.01"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::NoApplications);
    }
}
