//! Miss-ratio curves and cache-aware application profiles.
//!
//! The paper treats `APC_alone` as a constant per application. Under
//! coordinated bandwidth + LLC-way partitioning it becomes a function of
//! the ways `w` the application holds: fewer ways raise the LLC miss ratio
//! `m(w)`, which raises the DDR traffic per instruction
//! (`API(w) = API_llc · m(w)`) and the standalone CPI
//! (`CPI(w) = CPI_base + API_llc · m(w) · penalty`), so
//!
//! ```text
//! APC_alone(w) = API(w) / CPI(w)            (Eq. 1 composed with m(w))
//! ```
//!
//! Everything downstream of [`AppProfile`] — Eq. 1–8, the schemes, the
//! QoS admission — composes unchanged: [`CacheAwareProfile::profile_at`]
//! materializes a plain profile for any way count.
//!
//! Miss-ratio curves are *sampled* (short standalone profiling runs at a
//! grid of way counts — see `bwpart-workloads`' sampler) and fitted here:
//! samples are pool-adjacent-violators-isotonized to be non-increasing in
//! ways, then monotone piecewise-linearly interpolated. Isotonization makes
//! the curve robust to simulation noise without losing the physical shape.

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::error::ModelError;

/// A fitted, monotone non-increasing miss-ratio curve `m(ways)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// Fitted `(ways, miss_ratio)` knots, strictly increasing in ways and
    /// non-increasing in miss ratio.
    points: Vec<(f64, f64)>,
}

impl MissRatioCurve {
    /// Fit a curve from raw `(ways, miss_ratio)` samples. Samples are
    /// sorted by ways, averaged at duplicate way counts, clamped into
    /// `[0, 1]`, and isotonized (pool adjacent violators) so the fitted
    /// curve is non-increasing — a cache never misses more with more ways.
    pub fn fit(samples: &[(f64, f64)]) -> Result<Self, ModelError> {
        if samples.is_empty() {
            return Err(ModelError::NoApplications);
        }
        for &(w, m) in samples {
            if !(w.is_finite() && w > 0.0) {
                return Err(ModelError::InvalidInput {
                    what: "mrc ways sample",
                    value: w,
                });
            }
            if !m.is_finite() || !(0.0..=1.0 + 1e-9).contains(&m) {
                return Err(ModelError::InvalidInput {
                    what: "mrc miss-ratio sample",
                    value: m,
                });
            }
        }
        let mut sorted: Vec<(f64, f64)> = samples.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Average duplicate way counts.
        let mut merged: Vec<(f64, f64, f64)> = Vec::with_capacity(sorted.len()); // (w, sum, count)
        for (w, m) in sorted {
            match merged.last_mut() {
                Some(last) if (last.0 - w).abs() < 1e-12 => {
                    last.1 += m;
                    last.2 += 1.0;
                }
                _ => merged.push((w, m, 1.0)),
            }
        }
        // Pool adjacent violators for a non-increasing sequence: walking
        // left to right, whenever a block's mean exceeds its predecessor's
        // (an *increase*), merge them. Operating on the negated values
        // would be the textbook non-decreasing PAV; this is the mirrored
        // form.
        struct Block {
            sum: f64,
            count: f64,
        }
        let ws: Vec<f64> = merged.iter().map(|&(w, _, _)| w).collect();
        let mut blocks: Vec<(Block, usize)> = Vec::with_capacity(merged.len()); // (block, span)
        for &(_, sum, count) in &merged {
            let mut blk = Block { sum, count };
            let mut span = 1usize;
            while let Some((prev, pspan)) = blocks.last() {
                if blk.sum / blk.count > prev.sum / prev.count + 1e-15 {
                    blk.sum += prev.sum;
                    blk.count += prev.count;
                    span += pspan;
                    blocks.pop();
                } else {
                    break;
                }
            }
            blocks.push((blk, span));
        }
        let mut points = Vec::with_capacity(ws.len());
        let mut idx = 0usize;
        for (blk, span) in blocks {
            let mean = (blk.sum / blk.count).clamp(0.0, 1.0);
            for _ in 0..span {
                points.push((ws[idx], mean));
                idx += 1;
            }
        }
        Ok(MissRatioCurve { points })
    }

    /// Evaluate the fitted curve at `ways` (monotone piecewise-linear,
    /// clamped to the end knots outside the sampled range).
    pub fn at(&self, ways: f64) -> f64 {
        let pts = &self.points;
        if ways <= pts[0].0 {
            return pts[0].1;
        }
        if ways >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for pair in pts.windows(2) {
            let (w0, m0) = pair[0];
            let (w1, m1) = pair[1];
            if ways <= w1 {
                let t = (ways - w0) / (w1 - w0);
                return m0 + t * (m1 - m0);
            }
        }
        pts[pts.len() - 1].1
    }

    /// The fitted knots (diagnostics, serialization surfaces).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// A cache-aware application descriptor: the paper's two-number profile
/// generalized so `API` and `APC_alone` become functions of allocated LLC
/// ways through a fitted [`MissRatioCurve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheAwareProfile {
    /// Identifier used in reports.
    pub name: String,
    /// LLC-incoming accesses per instruction (the app's L2 miss rate —
    /// invariant under way partitioning, which only filters *below* L2).
    pub api_llc: f64,
    /// Standalone CPI with a fully hitting LLC (core + L1/L2 + LLC-hit
    /// latency folded in).
    pub cpi_base: f64,
    /// Standalone stall cycles charged per DDR access (the un-overlapped
    /// remainder of the memory latency at the app's MLP).
    pub mem_penalty: f64,
    /// Fitted LLC miss-ratio curve.
    pub mrc: MissRatioCurve,
}

impl CacheAwareProfile {
    /// Build a profile, validating all rates.
    pub fn new(
        name: impl Into<String>,
        api_llc: f64,
        cpi_base: f64,
        mem_penalty: f64,
        mrc: MissRatioCurve,
    ) -> Result<Self, ModelError> {
        if !(api_llc.is_finite() && api_llc > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "api_llc",
                value: api_llc,
            });
        }
        if !(cpi_base.is_finite() && cpi_base > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "cpi_base",
                value: cpi_base,
            });
        }
        if !(mem_penalty.is_finite() && mem_penalty >= 0.0) {
            return Err(ModelError::InvalidInput {
                what: "mem_penalty",
                value: mem_penalty,
            });
        }
        Ok(CacheAwareProfile {
            name: name.into(),
            api_llc,
            cpi_base,
            mem_penalty,
            mrc,
        })
    }

    /// Miss ratio at `ways`.
    pub fn miss_ratio(&self, ways: f64) -> f64 {
        self.mrc.at(ways)
    }

    /// DDR accesses per instruction at `ways`: `API_llc · m(w)`, floored
    /// so the derived [`AppProfile`] stays valid even for a fully fitting
    /// working set.
    pub fn api_at(&self, ways: f64) -> f64 {
        (self.api_llc * self.miss_ratio(ways)).max(1e-9)
    }

    /// Standalone CPI at `ways`.
    pub fn cpi_alone_at(&self, ways: f64) -> f64 {
        self.cpi_base + self.api_llc * self.miss_ratio(ways) * self.mem_penalty
    }

    /// Standalone DDR access rate at `ways` (Eq. 1 composed with the MRC):
    /// `APC_alone(w) = API(w) / CPI(w)`.
    pub fn apc_alone_at(&self, ways: f64) -> f64 {
        self.api_at(ways) / self.cpi_alone_at(ways)
    }

    /// Materialize the paper's two-number profile at `ways`, optionally
    /// scaled by a calibration factor (`bwpartd` scales the analytic
    /// `APC_alone` so it matches the Eq. 12–13 telemetry estimate at the
    /// currently enforced way count; pass 1.0 for the pure model).
    pub fn profile_at(&self, ways: f64, apc_scale: f64) -> Result<AppProfile, ModelError> {
        if !(apc_scale.is_finite() && apc_scale > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "apc_scale",
                value: apc_scale,
            });
        }
        AppProfile::new(
            self.name.clone(),
            self.api_at(ways),
            self.apc_alone_at(ways) * apc_scale,
        )
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn steep_mrc() -> MissRatioCurve {
        MissRatioCurve::fit(&[(1.0, 0.9), (2.0, 0.6), (4.0, 0.2), (8.0, 0.05)]).unwrap()
    }

    #[test]
    fn fit_orders_and_interpolates() {
        let mrc = MissRatioCurve::fit(&[(4.0, 0.2), (1.0, 0.9), (2.0, 0.6)]).unwrap();
        assert_eq!(mrc.at(1.0), 0.9);
        assert_eq!(mrc.at(4.0), 0.2);
        assert!((mrc.at(3.0) - 0.4).abs() < 1e-12);
        // Clamped outside the sampled range.
        assert_eq!(mrc.at(0.5), 0.9);
        assert_eq!(mrc.at(16.0), 0.2);
    }

    #[test]
    fn fit_isotonizes_noisy_samples() {
        // The (2, 0.75) sample violates monotonicity against (1, 0.7): PAV
        // pools them to their mean.
        let mrc = MissRatioCurve::fit(&[(1.0, 0.7), (2.0, 0.75), (4.0, 0.3)]).unwrap();
        assert!((mrc.at(1.0) - 0.725).abs() < 1e-12);
        assert!((mrc.at(2.0) - 0.725).abs() < 1e-12);
        assert_eq!(mrc.at(4.0), 0.3);
        // The fitted curve is non-increasing everywhere.
        let mut prev = f64::INFINITY;
        for w in 1..=16 {
            let m = mrc.at(w as f64);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn fit_averages_duplicate_way_counts() {
        let mrc = MissRatioCurve::fit(&[(2.0, 0.4), (2.0, 0.6), (4.0, 0.1)]).unwrap();
        assert!((mrc.at(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_bad_samples() {
        assert!(MissRatioCurve::fit(&[]).is_err());
        assert!(MissRatioCurve::fit(&[(0.0, 0.5)]).is_err());
        assert!(MissRatioCurve::fit(&[(1.0, -0.1)]).is_err());
        assert!(MissRatioCurve::fit(&[(1.0, 1.5)]).is_err());
        assert!(MissRatioCurve::fit(&[(1.0, f64::NAN)]).is_err());
    }

    #[test]
    fn apc_alone_rises_with_ways_for_latency_bound_apps() {
        // A latency-sensitive app (large mem_penalty): more ways → fewer
        // misses → much lower CPI → higher IPC; APC_alone may fall (less
        // traffic) but IPC_alone must rise.
        let p = CacheAwareProfile::new("latsens", 0.02, 1.0, 400.0, steep_mrc()).unwrap();
        let ipc_few = 1.0 / p.cpi_alone_at(1.0);
        let ipc_many = 1.0 / p.cpi_alone_at(8.0);
        assert!(ipc_many > ipc_few * 2.0, "{ipc_few} vs {ipc_many}");
        // API falls with ways (less DDR traffic per instruction).
        assert!(p.api_at(8.0) < p.api_at(1.0));
    }

    #[test]
    fn flat_mrc_means_way_insensitive() {
        let flat = MissRatioCurve::fit(&[(1.0, 0.98), (8.0, 0.97)]).unwrap();
        let p = CacheAwareProfile::new("stream", 0.05, 0.5, 50.0, flat).unwrap();
        let a1 = p.apc_alone_at(1.0);
        let a8 = p.apc_alone_at(8.0);
        assert!((a1 - a8).abs() / a1 < 0.02, "{a1} vs {a8}");
    }

    #[test]
    fn profile_at_composes_with_eq1() {
        let p = CacheAwareProfile::new("latsens", 0.02, 1.0, 400.0, steep_mrc()).unwrap();
        let prof = p.profile_at(4.0, 1.0).unwrap();
        assert_eq!(prof.name, "latsens");
        assert!((prof.api - p.api_at(4.0)).abs() < 1e-15);
        assert!((prof.apc_alone - p.apc_alone_at(4.0)).abs() < 1e-15);
        // Eq. 1: IPC_alone = APC_alone / API = 1 / CPI.
        assert!((prof.ipc_alone() - 1.0 / p.cpi_alone_at(4.0)).abs() < 1e-9);
    }

    #[test]
    fn calibration_scales_apc_only() {
        let p = CacheAwareProfile::new("latsens", 0.02, 1.0, 400.0, steep_mrc()).unwrap();
        let base = p.profile_at(4.0, 1.0).unwrap();
        let scaled = p.profile_at(4.0, 1.1).unwrap();
        assert_eq!(scaled.api, base.api);
        assert!((scaled.apc_alone - base.apc_alone * 1.1).abs() < 1e-15);
        assert!(p.profile_at(4.0, 0.0).is_err());
        assert!(p.profile_at(4.0, f64::NAN).is_err());
    }

    #[test]
    fn rejects_bad_profiles() {
        let mrc = steep_mrc();
        assert!(CacheAwareProfile::new("x", 0.0, 1.0, 10.0, mrc.clone()).is_err());
        assert!(CacheAwareProfile::new("x", 0.01, 0.0, 10.0, mrc.clone()).is_err());
        assert!(CacheAwareProfile::new("x", 0.01, 1.0, -1.0, mrc).is_err());
    }

    #[test]
    fn curves_serialize_round_trip() {
        let p = CacheAwareProfile::new("latsens", 0.02, 1.0, 400.0, steep_mrc()).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: CacheAwareProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
