#![warn(missing_docs)]

//! # bwpart-core — the analytical bandwidth-partitioning model
//!
//! This crate implements the primary contribution of *"An Analytical
//! Performance Model for Partitioning Off-Chip Memory Bandwidth"*
//! (Wang, Chen, Pinkston — IPDPS 2013): a unified analytical model that
//! relates how a chip multiprocessor's off-chip memory bandwidth is divided
//! among co-scheduled applications to a broad family of IPC-based
//! system-level performance objectives.
//!
//! ## The model in two equations
//!
//! For application `i`, performance is tied to its bandwidth share by
//!
//! ```text
//! IPC_i = APC_i / API_i                      (Eq. 1)
//! ```
//!
//! where `APC` is memory accesses per cycle (the bandwidth it occupies) and
//! `API` is memory accesses per instruction (a program property, invariant
//! under partitioning). Shares are coupled by the total-bandwidth constraint
//!
//! ```text
//! Σ_i APC_shared,i = B                       (Eq. 2)
//! ```
//!
//! Any IPC-based objective (weighted speedup, sum of IPCs, harmonic weighted
//! speedup, minimum fairness, ...) becomes a constrained optimization over
//! the share vector. Solving it yields a closed-form *optimal partitioning
//! scheme per objective*:
//!
//! | objective                  | optimal scheme  | share rule                      |
//! |----------------------------|-----------------|---------------------------------|
//! | harmonic weighted speedup  | `SquareRoot`    | `β_i ∝ √APC_alone,i`            |
//! | minimum fairness           | `Proportional`  | `β_i ∝ APC_alone,i`             |
//! | weighted speedup           | `PriorityApc`   | greedy, low `APC_alone` first   |
//! | sum of IPCs                | `PriorityApi`   | greedy, low `API` first         |
//!
//! ## Crate layout
//!
//! * [`app`] — application descriptors ([`AppProfile`]): `API`, `APC_alone`.
//! * [`contracts`] — debug-mode model invariants ([`invariant!`],
//!   [`ensures_simplex!`], [`ensures_capped!`]) and the approved
//!   floating-point comparison helpers.
//! * [`metrics`] — the four system objectives of Section V-A.
//! * [`schemes`] — the seven partitioning schemes of Section V-D.
//! * [`solver`] — the optimization machinery: Lagrange power-family solver,
//!   fractional-knapsack greedy with per-app caps, and a numeric verifier.
//! * [`closed_form`] — Eq. 4/6/8 closed forms and the Cauchy comparisons of
//!   Section III.
//! * [`predict`] — the forward model: share vector → predicted IPCs → any
//!   metric (Section III-F).
//! * [`qos`] — the QoS-guarantee extension of Section III-G (Eq. 11).
//! * [`weighted`] — priority-weighted objectives and their optima (the
//!   Section II-B motivation, derived).
//! * [`resource`] — the generic N-resource abstraction ([`Resource`],
//!   certified [`Allocation`]s); the paper schemes are the
//!   single-resource special case.
//! * [`mrc`] — fitted miss-ratio curves making `APC_alone(w)` a function
//!   of allocated LLC ways ([`CacheAwareProfile`]).
//! * [`coord`] — the coordinated (bandwidth × LLC ways) solver.
//!
//! ## Quick example
//!
//! ```
//! use bwpart_core::prelude::*;
//!
//! // Four applications: (API, APC_alone) pairs, e.g. profiled online.
//! let apps = vec![
//!     AppProfile::new("libquantum", 0.0341, 0.00692).unwrap(),
//!     AppProfile::new("milc",       0.0422, 0.00687).unwrap(),
//!     AppProfile::new("gromacs",    0.0052, 0.00337).unwrap(),
//!     AppProfile::new("gobmk",      0.0041, 0.00191).unwrap(),
//! ];
//! let b = 0.01; // total utilized bandwidth, in accesses per cycle
//!
//! // The optimal scheme for harmonic weighted speedup:
//! let beta = PartitionScheme::SquareRoot.shares(&apps, b).unwrap();
//! let outcome = predict::evaluate(&apps, &beta, b).unwrap();
//! let hsp_sqrt = outcome.metric(Metric::HarmonicWeightedSpeedup);
//!
//! // ... beats Equal partitioning on that metric:
//! let beta_eq = PartitionScheme::Equal.shares(&apps, b).unwrap();
//! let hsp_eq = predict::evaluate(&apps, &beta_eq, b)
//!     .unwrap()
//!     .metric(Metric::HarmonicWeightedSpeedup);
//! assert!(hsp_sqrt >= hsp_eq);
//! ```

pub mod app;
pub mod closed_form;
pub mod contracts;
pub mod coord;
pub mod error;
pub mod metrics;
pub mod mrc;
pub mod predict;
pub mod qos;
pub mod resource;
pub mod schemes;
pub mod solver;
pub mod weighted;

pub use app::AppProfile;
pub use coord::{solve_coordinated, solve_coordinated_scaled, CoordConfig, CoordOutcome};
pub use error::ModelError;
pub use metrics::Metric;
pub use mrc::{CacheAwareProfile, MissRatioCurve};
pub use resource::{Allocation, MultiAllocation, Resource, ResourceKind};
pub use schemes::{PartitionScheme, SharesOutcome};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::app::AppProfile;
    pub use crate::contracts;
    pub use crate::coord::{
        self, solve_coordinated, solve_coordinated_scaled, CoordConfig, CoordOutcome,
    };
    pub use crate::error::ModelError;
    pub use crate::metrics::{self, Metric};
    pub use crate::mrc::{CacheAwareProfile, MissRatioCurve};
    pub use crate::predict;
    pub use crate::qos::{self, QosRequest};
    pub use crate::resource::{Allocation, MultiAllocation, Resource, ResourceKind};
    pub use crate::schemes::{PartitionScheme, SharesOutcome};
    pub use crate::solver;
    pub use crate::weighted;
}
