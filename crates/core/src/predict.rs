//! The forward model of Section III-F: from a share vector to predicted
//! per-application IPCs and any IPC-based system objective.
//!
//! "Given a particular memory bandwidth partitioning, we can easily have the
//! bandwidth share of each application (APC_i), translate it to IPC_i based
//! on Eq. (1), and calculate the final IPC-based system performance
//! objective."
//!
//! The prediction honours the physical cap `APC_shared,i ≤ APC_alone,i`: an
//! application granted more bandwidth than it can generate simply leaves the
//! surplus unused (its IPC saturates at `IPC_alone`).

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::error::ModelError;
use crate::metrics::{self, Metric};
use crate::schemes::{validate_shares, PartitionScheme};

/// The model's prediction for one partitioning of one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Effective bandwidth each application consumes (APC), post-cap.
    pub apc_shared: Vec<f64>,
    /// Predicted shared-mode IPCs (Eq. 1).
    pub ipc_shared: Vec<f64>,
    /// Standalone IPCs used as the speedup denominators.
    pub ipc_alone: Vec<f64>,
}

impl Prediction {
    /// Evaluate one of the paper's objectives on this prediction.
    pub fn metric(&self, metric: Metric) -> f64 {
        metrics::evaluate(metric, &self.ipc_shared, &self.ipc_alone)
            // lint: allow(R1): vectors are validated by the evaluate* constructors
            .expect("prediction vectors are well-formed by construction")
    }

    /// All four objectives in [`Metric::ALL`] order.
    pub fn all_metrics(&self) -> [(Metric, f64); 4] {
        Metric::ALL.map(|m| (m, self.metric(m)))
    }

    /// Per-application speedups.
    // lint: allow(R3): speedups are per-app ratios, not a share vector
    pub fn speedups(&self) -> Vec<f64> {
        metrics::speedups(&self.ipc_shared, &self.ipc_alone)
            // lint: allow(R1): vectors are validated by the evaluate* constructors
            .expect("prediction vectors are well-formed by construction")
    }

    /// Total bandwidth actually consumed (≤ the granted `B` when caps bind).
    pub fn consumed_bandwidth(&self) -> f64 {
        self.apc_shared.iter().sum()
    }
}

/// Predict outcomes for an explicit share vector `beta` over bandwidth `b`.
pub fn evaluate(apps: &[AppProfile], beta: &[f64], b: f64) -> Result<Prediction, ModelError> {
    if apps.is_empty() {
        return Err(ModelError::NoApplications);
    }
    validate_shares(beta, apps.len())?;
    if !(b.is_finite() && b > 0.0) {
        return Err(ModelError::InvalidInput {
            what: "total_bandwidth",
            value: b,
        });
    }
    let apc_shared: Vec<f64> = apps
        .iter()
        .zip(beta)
        .map(|(a, &bi)| (bi * b).min(a.apc_alone))
        .collect();
    finish(apps, apc_shared)
}

/// Predict outcomes for an explicit allocation in APC units (already capped
/// or not; caps are applied here as well).
pub fn evaluate_allocation(apps: &[AppProfile], alloc: &[f64]) -> Result<Prediction, ModelError> {
    if apps.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if alloc.len() != apps.len() {
        return Err(ModelError::LengthMismatch {
            expected: apps.len(),
            got: alloc.len(),
        });
    }
    for &a in alloc {
        if !(a.is_finite() && a >= 0.0) {
            return Err(ModelError::InvalidInput {
                what: "allocation",
                value: a,
            });
        }
    }
    let apc_shared: Vec<f64> = apps
        .iter()
        .zip(alloc)
        .map(|(p, &a)| a.min(p.apc_alone))
        .collect();
    finish(apps, apc_shared)
}

/// Predict outcomes for a named scheme (errors for `NoPartitioning`, which
/// has no analytic allocation).
pub fn evaluate_scheme(
    apps: &[AppProfile],
    scheme: PartitionScheme,
    b: f64,
) -> Result<Prediction, ModelError> {
    let alloc = scheme.allocation(apps, b)?;
    evaluate_allocation(apps, &alloc)
}

fn finish(apps: &[AppProfile], apc_shared: Vec<f64>) -> Result<Prediction, ModelError> {
    let ipc_shared: Vec<f64> = apps
        .iter()
        .zip(&apc_shared)
        .map(|(a, &apc)| apc / a.api)
        .collect();
    let ipc_alone: Vec<f64> = apps.iter().map(|a| a.ipc_alone()).collect();
    Ok(Prediction {
        apc_shared,
        ipc_shared,
        ipc_alone,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new("a", 0.04, 0.008).unwrap(),
            AppProfile::new("b", 0.02, 0.004).unwrap(),
            AppProfile::new("c", 0.005, 0.002).unwrap(),
        ]
    }

    #[test]
    fn eq1_translation() {
        let a = apps();
        let p = evaluate(&a, &[0.5, 0.3, 0.2], 0.008).unwrap();
        // app 0: 0.004 APC / 0.04 API = 0.1 IPC
        assert!((p.ipc_shared[0] - 0.1).abs() < 1e-12);
        assert!((p.ipc_shared[1] - 0.12).abs() < 1e-12);
        assert!((p.ipc_shared[2] - 0.32).abs() < 1e-12);
    }

    #[test]
    fn caps_bind_when_share_exceeds_alone_rate() {
        let a = apps();
        // App c alone only reaches 0.002 APC; granting it 0.008 wastes most.
        let p = evaluate(&a, &[0.0, 0.0, 1.0], 0.008).unwrap();
        assert!((p.apc_shared[2] - 0.002).abs() < 1e-12);
        assert!((p.ipc_shared[2] - a[2].ipc_alone()).abs() < 1e-12);
        assert!(p.consumed_bandwidth() < 0.008);
        // Speedup never exceeds 1.
        assert!(p.speedups().iter().all(|&s| s <= 1.0 + 1e-12));
    }

    #[test]
    fn scheme_and_share_paths_agree() {
        let a = apps();
        let b = 0.006;
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let via_scheme = evaluate_scheme(&a, scheme, b).unwrap();
            let beta = scheme.shares(&a, b).unwrap();
            // shares() normalizes over the *granted* total, which may be <
            // b if caps bound; reconstruct the same allocation.
            let granted: f64 = scheme.allocation(&a, b).unwrap().iter().sum();
            let via_beta = evaluate(&a, &beta, granted).unwrap();
            for (x, y) in via_scheme.apc_shared.iter().zip(&via_beta.apc_shared) {
                assert!((x - y).abs() < 1e-12, "{scheme}");
            }
        }
    }

    #[test]
    fn all_metrics_returns_four() {
        let a = apps();
        let p = evaluate_scheme(&a, PartitionScheme::Equal, 0.006).unwrap();
        let all = p.all_metrics();
        assert_eq!(all.len(), 4);
        for (m, v) in all {
            assert!(v.is_finite(), "{m} not finite");
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = apps();
        assert!(evaluate(&a, &[0.5, 0.5], 0.01).is_err()); // wrong length
        assert!(evaluate(&a, &[0.5, 0.4, 0.2], 0.01).is_err()); // sum != 1
        assert!(evaluate(&a, &[0.5, 0.3, 0.2], -1.0).is_err());
        assert!(evaluate(&[], &[], 0.01).is_err());
        assert!(evaluate_allocation(&a, &[0.1, f64::NAN, 0.0]).is_err());
    }

    /// The model reproduces the paper's headline qualitative claim: each
    /// derived scheme is the best of the scheme family on its own metric.
    #[test]
    fn each_scheme_wins_its_own_metric() {
        let a = vec![
            AppProfile::new("lbm", 0.0531, 0.00939).unwrap(),
            AppProfile::new("libquantum", 0.0341, 0.00692).unwrap(),
            AppProfile::new("gromacs", 0.0052, 0.00337).unwrap(),
            AppProfile::new("gobmk", 0.0041, 0.00191).unwrap(),
        ];
        let b = 0.0095;
        let winners = [
            (Metric::HarmonicWeightedSpeedup, PartitionScheme::SquareRoot),
            (Metric::MinFairness, PartitionScheme::Proportional),
            (Metric::WeightedSpeedup, PartitionScheme::PriorityApc),
            (Metric::SumOfIpcs, PartitionScheme::PriorityApi),
        ];
        for (metric, winner) in winners {
            let best = evaluate_scheme(&a, winner, b).unwrap().metric(metric);
            for other in PartitionScheme::ENFORCED_SCHEMES {
                let v = evaluate_scheme(&a, other, b).unwrap().metric(metric);
                assert!(
                    best >= v - 1e-9,
                    "{} should win {metric} but {other} scored {v} > {best}",
                    winner
                );
            }
        }
    }
}
