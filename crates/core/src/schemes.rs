//! The bandwidth-partitioning schemes of Section V-D.
//!
//! A scheme maps application profiles to a share vector `β` (fractions of
//! the total utilized bandwidth `B`, summing to 1) or — for the two strict
//! priority schemes — to a greedy *allocation* in APC units.
//!
//! Two physical caps apply to every allocation:
//!
//! 1. shares are non-negative and sum to `B` (Eq. 2), and
//! 2. no application can consume more bandwidth than it does running alone:
//!    `APC_shared,i ≤ APC_alone,i` (Section III-D).
//!
//! The power-family schemes (`Equal`, `Proportional`, `SquareRoot`,
//! `TwoThirdsPower`, and the generalized `Power(α)`) are defined by
//! `β_i ∝ APC_alone,i^α`; when a raw share would exceed an application's
//! standalone rate, the surplus is redistributed to the remaining
//! applications by water-filling (this only matters when `B` approaches the
//! sum of standalone rates; the paper implicitly assumes it does not).

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::error::ModelError;
use crate::solver;

/// A bandwidth-partitioning scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionScheme {
    /// No enforced partitioning: the memory controller serves requests
    /// first-come-first-served and shares emerge from demand. This scheme
    /// has no analytic share vector; it exists as the experimental baseline.
    NoPartitioning,
    /// `β_i = 1/N` — Nesbit et al.'s fair-queueing split (power family α=0).
    Equal,
    /// `β_i ∝ APC_alone,i` — optimal for minimum fairness (α=1).
    Proportional,
    /// `β_i ∝ √APC_alone,i` — optimal for harmonic weighted speedup (α=1/2).
    SquareRoot,
    /// `β_i ∝ APC_alone,i^(2/3)` — Liu et al.'s queueing-model optimum for
    /// weighted speedup, included as the prior state of the art (α=2/3).
    TwoThirdsPower,
    /// Generalized power-family scheme `β_i ∝ APC_alone,i^α`.
    Power(f64),
    /// Strict priority to applications with low `APC_alone` — the fractional
    /// knapsack solution maximizing weighted speedup.
    PriorityApc,
    /// Strict priority to applications with low `API` — the fractional
    /// knapsack solution maximizing sum of IPCs.
    PriorityApi,
    /// Coordinated multi-resource partitioning: alternating descent over
    /// (bandwidth shares × LLC way allocations). It has no bandwidth-only
    /// analytic rule — the solve needs cache-aware profiles and lives in
    /// [`crate::coord::solve_coordinated`].
    Coordinated,
}

impl PartitionScheme {
    /// Every concrete scheme the paper evaluates, in its Figure 2 order.
    pub const PAPER_SCHEMES: [PartitionScheme; 7] = [
        PartitionScheme::NoPartitioning,
        PartitionScheme::Equal,
        PartitionScheme::Proportional,
        PartitionScheme::SquareRoot,
        PartitionScheme::TwoThirdsPower,
        PartitionScheme::PriorityApc,
        PartitionScheme::PriorityApi,
    ];

    /// The six *enforced* schemes compared against `NoPartitioning` in
    /// Figure 2.
    pub const ENFORCED_SCHEMES: [PartitionScheme; 6] = [
        PartitionScheme::Equal,
        PartitionScheme::Proportional,
        PartitionScheme::SquareRoot,
        PartitionScheme::TwoThirdsPower,
        PartitionScheme::PriorityApc,
        PartitionScheme::PriorityApi,
    ];

    /// The paper's name for the scheme, as printed in its tables and
    /// figures. Machine-facing surfaces (CLI flags, the `bwpartd` wire
    /// protocol) use [`PartitionScheme::canonical_name`] instead.
    pub fn name(self) -> String {
        match self {
            PartitionScheme::NoPartitioning => "No_partitioning".into(),
            PartitionScheme::Equal => "Equal".into(),
            PartitionScheme::Proportional => "Proportional".into(),
            PartitionScheme::SquareRoot => "Square_root".into(),
            PartitionScheme::TwoThirdsPower => "2/3_power".into(),
            PartitionScheme::Power(a) => format!("Power({a})"),
            PartitionScheme::PriorityApc => "Priority_APC".into(),
            PartitionScheme::PriorityApi => "Priority_API".into(),
            PartitionScheme::Coordinated => "Coordinated".into(),
        }
    }

    /// The canonical machine-facing name: kebab-case, stable, and the
    /// inverse of [`str::parse::<PartitionScheme>`]. This is the single
    /// spelling every external surface (CLI, wire protocol, JSON reports)
    /// agrees on; the paper spellings from [`PartitionScheme::name`] are
    /// accepted as parse aliases but never emitted.
    pub fn canonical_name(self) -> String {
        match self {
            PartitionScheme::NoPartitioning => "no-partitioning".into(),
            PartitionScheme::Equal => "equal".into(),
            PartitionScheme::Proportional => "proportional".into(),
            PartitionScheme::SquareRoot => "square-root".into(),
            PartitionScheme::TwoThirdsPower => "two-thirds-power".into(),
            PartitionScheme::Power(a) => format!("power:{a}"),
            PartitionScheme::PriorityApc => "priority-apc".into(),
            PartitionScheme::PriorityApi => "priority-api".into(),
            PartitionScheme::Coordinated => "coordinated".into(),
        }
    }

    /// The power-family exponent α for schemes of the form
    /// `β_i ∝ APC_alone,i^α`, or `None` for priority/no-partitioning.
    pub fn power_exponent(self) -> Option<f64> {
        match self {
            PartitionScheme::Equal => Some(0.0),
            PartitionScheme::Proportional => Some(1.0),
            PartitionScheme::SquareRoot => Some(0.5),
            PartitionScheme::TwoThirdsPower => Some(2.0 / 3.0),
            PartitionScheme::Power(a) => Some(a),
            PartitionScheme::NoPartitioning
            | PartitionScheme::PriorityApc
            | PartitionScheme::PriorityApi
            | PartitionScheme::Coordinated => None,
        }
    }

    /// True for the strict-priority (knapsack-greedy) schemes, whose
    /// allocation depends on `B` rather than being a fixed fraction.
    pub fn is_priority(self) -> bool {
        matches!(
            self,
            PartitionScheme::PriorityApc | PartitionScheme::PriorityApi
        )
    }

    /// The bandwidth allocation in APC units for each application under this
    /// scheme, respecting both Eq. 2 (`Σ = min(B, Σ APC_alone)`) and the
    /// per-application standalone caps.
    ///
    /// Errors for [`PartitionScheme::NoPartitioning`], which has no analytic
    /// allocation — use the simulator's FCFS baseline instead.
    pub fn allocation(self, apps: &[AppProfile], b: f64) -> Result<Vec<f64>, ModelError> {
        if apps.is_empty() {
            return Err(ModelError::NoApplications);
        }
        if !(b.is_finite() && b > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "total_bandwidth",
                value: b,
            });
        }
        let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
        let alloc = match self {
            PartitionScheme::NoPartitioning => {
                return Err(ModelError::InvalidInput {
                    what: "scheme (No_partitioning has no analytic allocation)",
                    value: f64::NAN,
                })
            }
            PartitionScheme::Coordinated => return Err(ModelError::InvalidInput {
                what:
                    "scheme (Coordinated needs cache-aware profiles; use coord::solve_coordinated)",
                value: f64::NAN,
            }),
            PartitionScheme::PriorityApc => {
                let keys: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
                solver::knapsack_greedy(&keys, &caps, b)
            }
            PartitionScheme::PriorityApi => {
                let keys: Vec<f64> = apps.iter().map(|a| a.api).collect();
                solver::knapsack_greedy(&keys, &caps, b)
            }
            PartitionScheme::Equal
            | PartitionScheme::Proportional
            | PartitionScheme::SquareRoot
            | PartitionScheme::TwoThirdsPower
            | PartitionScheme::Power(_) => {
                // Every variant listed here is power-family, but route the
                // impossible case through ModelError rather than panicking.
                let Some(alpha) = self.power_exponent() else {
                    return Err(ModelError::InvalidInput {
                        what: "scheme (expected a power-family scheme)",
                        value: f64::NAN,
                    });
                };
                if !alpha.is_finite() {
                    return Err(ModelError::InvalidInput {
                        what: "power exponent",
                        value: alpha,
                    });
                }
                let weights: Vec<f64> = apps.iter().map(|a| a.apc_alone.powf(alpha)).collect();
                solver::water_fill(&weights, &caps, b)
            }
        };
        crate::ensures_capped!(alloc, caps);
        Ok(alloc)
    }

    /// The *nominal* share vector `β` (fractions summing to 1). This is
    /// what the enforcement mechanism (start-time-fair scheduling) consumes:
    /// an application that cannot use its nominal share simply leaves the
    /// scheduler work-conserving, so standalone caps need not be applied
    /// here. For the power family this is the pure
    /// `APC_alone^α / Σ APC_alone^α` rule; for the priority schemes the
    /// share is the (bandwidth-dependent) greedy allocation normalized.
    pub fn shares(self, apps: &[AppProfile], b: f64) -> Result<Vec<f64>, ModelError> {
        if apps.is_empty() {
            return Err(ModelError::NoApplications);
        }
        if let Some(alpha) = self.power_exponent() {
            if !alpha.is_finite() {
                return Err(ModelError::InvalidInput {
                    what: "power exponent",
                    value: alpha,
                });
            }
            let weights: Vec<f64> = apps.iter().map(|a| a.apc_alone.powf(alpha)).collect();
            let sum: f64 = weights.iter().sum();
            crate::invariant!(sum > 0.0, "power-family weights must have positive mass");
            let beta: Vec<f64> = weights.iter().map(|&w| w / sum).collect();
            crate::ensures_simplex!(beta);
            return Ok(beta);
        }
        let alloc = self.allocation(apps, b)?;
        let total: f64 = alloc.iter().sum();
        crate::invariant!(
            total > 0.0,
            "priority allocation must grant positive bandwidth"
        );
        let beta: Vec<f64> = alloc.iter().map(|&a| a / total).collect();
        crate::ensures_simplex!(beta);
        Ok(beta)
    }
}

impl std::fmt::Display for PartitionScheme {
    /// Displays the canonical kebab-case name (see
    /// [`PartitionScheme::canonical_name`]); paper-table rendering goes
    /// through [`PartitionScheme::name`] explicitly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical_name())
    }
}

impl std::str::FromStr for PartitionScheme {
    type Err = ModelError;

    /// Parse a scheme name. Canonical spellings are kebab-case
    /// (`square-root`, `priority-apc`, `power:<alpha>`); the paper's
    /// spellings (`Square_root`, `2/3_power`, `Priority_APC`, ...) and a
    /// few common shorthands (`sqrt`, `prop`, `none`) are accepted as
    /// aliases. Matching is case-insensitive and treats `_` as `-`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s.trim().to_ascii_lowercase().replace('_', "-");
        if let Some(alpha) = norm.strip_prefix("power:") {
            let a: f64 = alpha
                .parse()
                .map_err(|_| ModelError::UnknownScheme { name: s.into() })?;
            if !a.is_finite() {
                return Err(ModelError::InvalidInput {
                    what: "power exponent",
                    value: a,
                });
            }
            return Ok(PartitionScheme::Power(a));
        }
        match norm.as_str() {
            "no-partitioning" | "none" | "fcfs" => Ok(PartitionScheme::NoPartitioning),
            "equal" => Ok(PartitionScheme::Equal),
            "proportional" | "prop" => Ok(PartitionScheme::Proportional),
            "square-root" | "sqrt" => Ok(PartitionScheme::SquareRoot),
            "two-thirds-power" | "2/3-power" => Ok(PartitionScheme::TwoThirdsPower),
            "priority-apc" => Ok(PartitionScheme::PriorityApc),
            "priority-api" => Ok(PartitionScheme::PriorityApi),
            "coordinated" | "coord" => Ok(PartitionScheme::Coordinated),
            _ => Err(ModelError::UnknownScheme { name: s.into() }),
        }
    }
}

/// A fully solved partitioning, in a shape that serializes cleanly across
/// process boundaries (the `bwpartd` wire protocol, JSON reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharesOutcome {
    /// Canonical scheme name ([`PartitionScheme::canonical_name`]).
    pub scheme: String,
    /// Total utilized bandwidth `B` the solve used (APC).
    pub bandwidth: f64,
    /// Nominal share vector `β` (sums to 1).
    pub beta: Vec<f64>,
    /// Bandwidth allocation in APC units, standalone-capped.
    pub allocation: Vec<f64>,
}

impl PartitionScheme {
    /// Solve shares and allocation together into a serializable
    /// [`SharesOutcome`] — the form the online service hands to clients.
    pub fn solve(self, apps: &[AppProfile], b: f64) -> Result<SharesOutcome, ModelError> {
        let beta = self.shares(apps, b)?;
        let allocation = self.allocation(apps, b)?;
        Ok(SharesOutcome {
            scheme: self.canonical_name(),
            bandwidth: b,
            beta,
            allocation,
        })
    }
}

/// Validate that `beta` is a share vector for `n` applications: correct
/// length, entries in `[0, 1]`, summing to 1 (±1e-9).
pub fn validate_shares(beta: &[f64], n: usize) -> Result<(), ModelError> {
    if beta.len() != n {
        return Err(ModelError::LengthMismatch {
            expected: n,
            got: beta.len(),
        });
    }
    for &b in beta {
        if !(b.is_finite() && (0.0..=1.0 + 1e-12).contains(&b)) {
            return Err(ModelError::InvalidInput {
                what: "share",
                value: b,
            });
        }
    }
    let sum: f64 = beta.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return Err(ModelError::InvalidShares { sum });
    }
    Ok(())
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn four_apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new("libquantum", 0.0341188, 0.00691693).unwrap(),
            AppProfile::new("milc", 0.0422216, 0.00687143).unwrap(),
            AppProfile::new("gromacs", 0.0051976, 0.00336604).unwrap(),
            AppProfile::new("gobmk", 0.0040668, 0.00191485).unwrap(),
        ]
    }

    const B: f64 = 0.01; // DDR2-400 at 5 GHz, 64 B lines

    #[test]
    fn equal_shares_are_uniform() {
        let beta = PartitionScheme::Equal.shares(&four_apps(), B).unwrap();
        for b in &beta {
            assert!((b - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn proportional_ratios_match_apc_alone() {
        let apps = four_apps();
        let beta = PartitionScheme::Proportional.shares(&apps, B).unwrap();
        // β_i / β_j == APC_alone,i / APC_alone,j
        for i in 0..apps.len() {
            for j in 0..apps.len() {
                let lhs = beta[i] / beta[j];
                let rhs = apps[i].apc_alone / apps[j].apc_alone;
                assert!((lhs - rhs).abs() < 1e-9, "({i},{j}): {lhs} vs {rhs}");
            }
        }
    }

    #[test]
    fn sqrt_ratios_match_sqrt_apc_alone() {
        let apps = four_apps();
        let beta = PartitionScheme::SquareRoot.shares(&apps, B).unwrap();
        for i in 0..apps.len() {
            for j in 0..apps.len() {
                let lhs = beta[i] / beta[j];
                let rhs = (apps[i].apc_alone / apps[j].apc_alone).sqrt();
                assert!((lhs - rhs).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn two_thirds_sits_between_sqrt_and_proportional() {
        let apps = four_apps();
        let sqrt = PartitionScheme::SquareRoot.shares(&apps, B).unwrap();
        let twothirds = PartitionScheme::TwoThirdsPower.shares(&apps, B).unwrap();
        let prop = PartitionScheme::Proportional.shares(&apps, B).unwrap();
        // For the most memory-intensive app the share grows with α;
        // for the least intensive it shrinks.
        assert!(sqrt[0] < twothirds[0] && twothirds[0] < prop[0]);
        assert!(sqrt[3] > twothirds[3] && twothirds[3] > prop[3]);
    }

    #[test]
    fn priority_apc_fills_low_apc_first() {
        let apps = four_apps();
        let alloc = PartitionScheme::PriorityApc.allocation(&apps, B).unwrap();
        // gobmk (lowest APC_alone) and gromacs are fully satisfied.
        assert!((alloc[3] - apps[3].apc_alone).abs() < 1e-12);
        assert!((alloc[2] - apps[2].apc_alone).abs() < 1e-12);
        // The rest of B flows to libquantum/milc in APC order (milc lower).
        let rest = B - alloc[2] - alloc[3];
        assert!((alloc[1] - rest.min(apps[1].apc_alone)).abs() < 1e-12);
        assert!((alloc.iter().sum::<f64>() - B).abs() < 1e-12);
    }

    #[test]
    fn priority_api_orders_by_api() {
        let apps = four_apps();
        let alloc = PartitionScheme::PriorityApi.allocation(&apps, B).unwrap();
        // gobmk has lowest API, then gromacs, libquantum, milc.
        assert!((alloc[3] - apps[3].apc_alone).abs() < 1e-12);
        assert!((alloc[2] - apps[2].apc_alone).abs() < 1e-12);
        assert!(alloc[0] >= alloc[1]); // libquantum before milc
    }

    #[test]
    fn priority_schemes_starve_heavy_apps_when_b_small() {
        let apps = four_apps();
        let b = 0.004; // scarce bandwidth
        let alloc = PartitionScheme::PriorityApc.allocation(&apps, b).unwrap();
        // Low-APC apps soak up everything; the heaviest gets nothing.
        assert_eq!(alloc[0], 0.0);
        assert!((alloc.iter().sum::<f64>() - b).abs() < 1e-12);
    }

    #[test]
    fn all_schemes_yield_valid_shares() {
        let apps = four_apps();
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let beta = scheme.shares(&apps, B).unwrap();
            validate_shares(&beta, apps.len()).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        }
    }

    #[test]
    fn no_partitioning_has_no_allocation() {
        assert!(PartitionScheme::NoPartitioning
            .allocation(&four_apps(), B)
            .is_err());
    }

    #[test]
    fn coordinated_has_no_bandwidth_only_allocation() {
        // The coordinated scheme needs cache-aware profiles; its bare
        // bandwidth solve errors (see `coord::solve_coordinated`).
        assert!(PartitionScheme::Coordinated
            .allocation(&four_apps(), B)
            .is_err());
        assert!(PartitionScheme::Coordinated
            .shares(&four_apps(), B)
            .is_err());
        assert_eq!(PartitionScheme::Coordinated.power_exponent(), None);
    }

    #[test]
    fn coordinated_names_round_trip() {
        assert_eq!(PartitionScheme::Coordinated.to_string(), "coordinated");
        assert_eq!(PartitionScheme::Coordinated.name(), "Coordinated");
        for alias in ["coordinated", "coord", "Coordinated", " COORD "] {
            assert_eq!(
                alias.parse::<PartitionScheme>().unwrap(),
                PartitionScheme::Coordinated,
                "{alias}"
            );
        }
    }

    #[test]
    fn allocation_respects_caps_when_b_large() {
        let apps = four_apps();
        let total_demand: f64 = apps.iter().map(|a| a.apc_alone).sum();
        let b = total_demand * 2.0; // more bandwidth than anyone can use
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let alloc = scheme.allocation(&apps, b).unwrap();
            for (a, app) in alloc.iter().zip(&apps) {
                assert!(
                    *a <= app.apc_alone + 1e-12,
                    "{scheme}: {a} > cap {}",
                    app.apc_alone
                );
            }
            // Everyone is fully satisfied.
            assert!((alloc.iter().sum::<f64>() - total_demand).abs() < 1e-9);
        }
    }

    #[test]
    fn power_family_exponents() {
        assert_eq!(PartitionScheme::Equal.power_exponent(), Some(0.0));
        assert_eq!(PartitionScheme::SquareRoot.power_exponent(), Some(0.5));
        assert_eq!(PartitionScheme::Proportional.power_exponent(), Some(1.0));
        assert_eq!(PartitionScheme::PriorityApc.power_exponent(), None);
        let p = PartitionScheme::Power(0.8);
        assert_eq!(p.power_exponent(), Some(0.8));
    }

    #[test]
    fn generalized_power_interpolates() {
        let apps = four_apps();
        let p05 = PartitionScheme::Power(0.5).shares(&apps, B).unwrap();
        let sqrt = PartitionScheme::SquareRoot.shares(&apps, B).unwrap();
        for (a, b) in p05.iter().zip(&sqrt) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_shares_rejects_bad_vectors() {
        assert!(validate_shares(&[0.5, 0.5], 3).is_err());
        assert!(validate_shares(&[0.7, 0.7], 2).is_err());
        assert!(validate_shares(&[-0.1, 1.1], 2).is_err());
        assert!(validate_shares(&[f64::NAN, 1.0], 2).is_err());
        assert!(validate_shares(&[0.25; 4], 4).is_ok());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PartitionScheme::SquareRoot.name(), "Square_root");
        assert_eq!(PartitionScheme::TwoThirdsPower.name(), "2/3_power");
        assert_eq!(PartitionScheme::PriorityApc.name(), "Priority_APC");
    }

    #[test]
    fn display_is_canonical_kebab_case() {
        assert_eq!(PartitionScheme::SquareRoot.to_string(), "square-root");
        assert_eq!(
            PartitionScheme::TwoThirdsPower.to_string(),
            "two-thirds-power"
        );
        assert_eq!(PartitionScheme::PriorityApc.to_string(), "priority-apc");
        assert_eq!(PartitionScheme::Power(0.8).to_string(), "power:0.8");
    }

    #[test]
    fn from_str_round_trips_canonical_names() {
        for scheme in PartitionScheme::PAPER_SCHEMES {
            let parsed: PartitionScheme = scheme.canonical_name().parse().unwrap();
            assert_eq!(parsed, scheme);
        }
        let p: PartitionScheme = PartitionScheme::Power(0.75).to_string().parse().unwrap();
        assert_eq!(p, PartitionScheme::Power(0.75));
    }

    #[test]
    fn from_str_accepts_paper_spellings_and_aliases() {
        for (alias, scheme) in [
            ("No_partitioning", PartitionScheme::NoPartitioning),
            ("Equal", PartitionScheme::Equal),
            ("Proportional", PartitionScheme::Proportional),
            ("Square_root", PartitionScheme::SquareRoot),
            ("2/3_power", PartitionScheme::TwoThirdsPower),
            ("Priority_APC", PartitionScheme::PriorityApc),
            ("Priority_API", PartitionScheme::PriorityApi),
            ("sqrt", PartitionScheme::SquareRoot),
            ("prop", PartitionScheme::Proportional),
            ("none", PartitionScheme::NoPartitioning),
            ("  square-root ", PartitionScheme::SquareRoot),
            ("SQUARE-ROOT", PartitionScheme::SquareRoot),
        ] {
            assert_eq!(alias.parse::<PartitionScheme>().unwrap(), scheme, "{alias}");
        }
    }

    #[test]
    fn from_str_rejects_unknown_and_bad_power() {
        assert!(matches!(
            "bogus".parse::<PartitionScheme>(),
            Err(ModelError::UnknownScheme { .. })
        ));
        assert!("power:x".parse::<PartitionScheme>().is_err());
        assert!("power:inf".parse::<PartitionScheme>().is_err());
        let msg = "bogus".parse::<PartitionScheme>().unwrap_err().to_string();
        assert!(msg.contains("unknown scheme"), "{msg}");
        assert!(msg.contains("bogus"), "{msg}");
    }

    #[test]
    fn solve_packages_shares_and_allocation() {
        let apps = four_apps();
        let out = PartitionScheme::SquareRoot.solve(&apps, B).unwrap();
        assert_eq!(out.scheme, "square-root");
        assert_eq!(
            out.beta,
            PartitionScheme::SquareRoot.shares(&apps, B).unwrap()
        );
        assert_eq!(
            out.allocation,
            PartitionScheme::SquareRoot.allocation(&apps, B).unwrap()
        );
        let json = serde_json::to_string(&out).unwrap();
        let back: SharesOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, out);
    }
}
