//! Optimization machinery behind the optimal partitioning schemes.
//!
//! Section III of the paper formulates each objective as a constrained
//! optimization over the share vector. Two solver shapes cover all four
//! objectives:
//!
//! * a **Lagrange power-family** solution for smooth concave objectives
//!   (harmonic weighted speedup → `β ∝ √APC_alone`), realized here as
//!   [`water_fill`] over power-law weights with per-application caps, and
//! * a **fractional-knapsack greedy** for the linear objectives (weighted
//!   speedup and sum of IPCs → strict priority orders), realized as
//!   [`knapsack_greedy`].
//!
//! A generic numeric optimizer ([`maximize_on_simplex`]) and a deterministic
//! simplex sampler ([`sample_simplex`]) are provided so tests and the
//! `model_vs_sim` experiment can verify the closed forms against brute
//! force.
//!
//! Both solvers certify their outputs with the debug-mode contracts of
//! [`crate::contracts`]: allocations stay within the standalone caps and
//! conserve exactly `min(b, Σ caps)`.

use crate::contracts;

/// Distribute `b` units proportionally to `weights`, capping each recipient
/// at `caps[i]` and redistributing the surplus among the uncapped
/// (water-filling). The result sums to `min(b, Σ caps)`.
///
/// Entries with zero weight receive bandwidth only if every positively
/// weighted application is saturated.
///
/// # Panics
/// Panics if `weights` and `caps` differ in length, if any weight or cap is
/// negative/non-finite, or if `b` is not positive.
pub fn water_fill(weights: &[f64], caps: &[f64], b: f64) -> Vec<f64> {
    assert_eq!(weights.len(), caps.len(), "weights/caps length mismatch");
    assert!(b > 0.0 && b.is_finite(), "bandwidth must be positive");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative"
    );
    assert!(
        caps.iter().all(|c| c.is_finite() && *c >= 0.0),
        "caps must be non-negative"
    );

    let n = weights.len();
    let mut alloc = vec![0.0; n];
    let total_cap: f64 = caps.iter().sum();
    let mut remaining = b.min(total_cap);
    if remaining <= 0.0 {
        return alloc;
    }

    // Iteratively split the remaining bandwidth among unsaturated apps in
    // proportion to their weights; each round saturates at least one app, so
    // this terminates in ≤ n rounds.
    let mut active: Vec<usize> = (0..n)
        .filter(|&i| weights[i] > 0.0 && caps[i] > 0.0)
        .collect();
    while remaining > 1e-15 && !active.is_empty() {
        let wsum: f64 = active.iter().map(|&i| weights[i]).sum();
        debug_assert!(wsum > 0.0);
        let mut overflowed = false;
        let mut next_active = Vec::with_capacity(active.len());
        // First pass: find apps whose proportional grant would exceed the cap.
        let grants: Vec<(usize, f64)> = active
            .iter()
            .map(|&i| (i, remaining * weights[i] / wsum))
            .collect();
        for &(i, g) in &grants {
            let room = caps[i] - alloc[i];
            if g >= room {
                alloc[i] = caps[i];
                remaining -= room;
                overflowed = true;
            } else {
                next_active.push(i);
            }
        }
        if !overflowed {
            // Nobody hit a cap: grant everything and finish.
            for (i, g) in grants {
                if next_active.contains(&i) {
                    alloc[i] += g;
                }
            }
            remaining = 0.0;
        }
        active = next_active;
    }

    // If weighted apps are all saturated but bandwidth remains, spill to
    // zero-weight apps (rare; keeps Σ = min(b, Σcaps) exact).
    if remaining > 1e-15 {
        for i in 0..n {
            let room = caps[i] - alloc[i];
            if room > 0.0 {
                let take = room.min(remaining);
                alloc[i] += take;
                remaining -= take;
                if remaining <= 1e-15 {
                    break;
                }
            }
        }
    }
    crate::ensures_capped!(alloc, caps);
    crate::invariant!(
        contracts::approx_eq(
            alloc.iter().sum::<f64>(),
            b.min(total_cap),
            contracts::TOLERANCE
        ),
        "water_fill must conserve min(b, Σ caps) = {} (Eq. 2), got {}",
        b.min(total_cap),
        alloc.iter().sum::<f64>()
    );
    alloc
}

/// Fractional-knapsack greedy (Section III-D/E): grant bandwidth to
/// applications in ascending order of `keys[i]`, giving each up to its cap,
/// until `b` is exhausted. Ties are broken by index for determinism.
///
/// The result sums to `min(b, Σ caps)`.
pub fn knapsack_greedy(keys: &[f64], caps: &[f64], b: f64) -> Vec<f64> {
    assert_eq!(keys.len(), caps.len(), "keys/caps length mismatch");
    assert!(b > 0.0 && b.is_finite(), "bandwidth must be positive");
    let mut order: Vec<usize> = (0..keys.len()).collect();
    // total_cmp gives a total order even for NaN keys (NaN sorts last), so a
    // pathological profile degrades gracefully instead of panicking.
    order.sort_by(|&i, &j| keys[i].total_cmp(&keys[j]).then(i.cmp(&j)));
    let mut alloc = vec![0.0; keys.len()];
    let mut remaining = b;
    for &i in &order {
        if remaining <= 0.0 {
            break;
        }
        let grant = caps[i].min(remaining);
        alloc[i] = grant;
        remaining -= grant;
    }
    crate::ensures_capped!(alloc, caps);
    if cfg!(debug_assertions) {
        // Greedy-order certificate: once any lower-priority application
        // holds bandwidth, every higher-priority one must be saturated.
        let mut lower_holds = false;
        for &i in order.iter().rev() {
            crate::invariant!(
                !lower_holds || contracts::approx_le(caps[i], alloc[i], contracts::TOLERANCE),
                "knapsack order violated: app {} unsaturated ({} < cap {}) while a \
                 lower-priority app holds bandwidth",
                i,
                alloc[i],
                caps[i]
            );
            lower_holds |= alloc[i] > contracts::TOLERANCE;
        }
        let granted: f64 = alloc.iter().sum();
        let total_cap: f64 = caps.iter().sum();
        crate::invariant!(
            contracts::approx_eq(granted, b.min(total_cap), contracts::TOLERANCE),
            "knapsack_greedy must conserve min(b, Σ caps) = {}, got {}",
            b.min(total_cap),
            granted
        );
    }
    alloc
}

/// Deterministically sample `count` points from the interior of the
/// `n`-simplex using a splitmix-style generator seeded by `seed`. Used by
/// property tests and the brute-force verifier.
pub fn sample_simplex(n: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(n >= 1);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    let samples: Vec<Vec<f64>> = (0..count)
        .map(|_| {
            // Exponential spacings give a uniform Dirichlet(1,...,1) sample.
            let mut v: Vec<f64> = (0..n)
                .map(|_| {
                    let u: f64 = next().max(1e-12);
                    -u.ln()
                })
                .collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        })
        .collect();
    if cfg!(debug_assertions) {
        for v in &samples {
            crate::ensures_simplex!(*v);
        }
    }
    samples
}

/// Numerically maximize `objective(β)` over the unit simplex with a simple
/// multiplicative-weights ascent followed by greedy coordinate polishing.
/// The objective is treated as a black box; this is a verification tool, not
/// a production solver. Returns `(best_beta, best_value)`.
pub fn maximize_on_simplex<F>(n: usize, objective: F, iterations: usize) -> (Vec<f64>, f64)
where
    F: Fn(&[f64]) -> f64,
{
    assert!(n >= 1);
    let mut best = vec![1.0 / n as f64; n];
    let mut best_val = objective(&best);

    // Seed from a spread of deterministic simplex samples.
    for candidate in sample_simplex(n, 64, 0xB417) {
        let v = objective(&candidate);
        if v > best_val {
            best_val = v;
            best = candidate;
        }
    }

    // Coordinate-pair polishing: move mass between pairs while it helps.
    let mut step = 0.25;
    for _ in 0..iterations {
        let mut improved = false;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let delta = step * best[i];
                if delta <= 0.0 {
                    continue;
                }
                let mut cand = best.clone();
                cand[i] -= delta;
                cand[j] += delta;
                let v = objective(&cand);
                if v > best_val {
                    best_val = v;
                    best = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-7 {
                break;
            }
        }
    }
    crate::ensures_simplex!(best);
    (best, best_val)
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn water_fill_uncapped_is_proportional() {
        let alloc = water_fill(&[1.0, 2.0, 1.0], &[10.0, 10.0, 10.0], 4.0);
        assert!((alloc[0] - 1.0).abs() < 1e-12);
        assert!((alloc[1] - 2.0).abs() < 1e-12);
        assert!((alloc[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn water_fill_redistributes_over_caps() {
        // App 1 would get 2.0 but is capped at 0.5; the surplus flows to the
        // others in weight proportion.
        let alloc = water_fill(&[1.0, 2.0, 1.0], &[10.0, 0.5, 10.0], 4.0);
        assert!((alloc[1] - 0.5).abs() < 1e-12);
        assert!((alloc[0] - 1.75).abs() < 1e-12);
        assert!((alloc[2] - 1.75).abs() < 1e-12);
        assert!((alloc.iter().sum::<f64>() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn water_fill_cascading_caps() {
        let alloc = water_fill(&[1.0, 1.0, 1.0], &[0.1, 0.2, 10.0], 3.0);
        assert!((alloc[0] - 0.1).abs() < 1e-12);
        assert!((alloc[1] - 0.2).abs() < 1e-12);
        assert!((alloc[2] - 2.7).abs() < 1e-12);
    }

    #[test]
    fn water_fill_total_capped_by_sum_of_caps() {
        let alloc = water_fill(&[1.0, 1.0], &[0.3, 0.4], 100.0);
        assert!((alloc[0] - 0.3).abs() < 1e-12);
        assert!((alloc[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn water_fill_zero_weight_gets_nothing_until_saturation() {
        let alloc = water_fill(&[0.0, 1.0], &[5.0, 5.0], 3.0);
        assert_eq!(alloc[0], 0.0);
        assert!((alloc[1] - 3.0).abs() < 1e-12);
        // ...but spills once the weighted app saturates.
        let alloc = water_fill(&[0.0, 1.0], &[5.0, 2.0], 3.0);
        assert!((alloc[1] - 2.0).abs() < 1e-12);
        assert!((alloc[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn water_fill_length_mismatch_panics() {
        water_fill(&[1.0], &[1.0, 2.0], 1.0);
    }

    #[test]
    fn knapsack_fills_in_key_order() {
        let alloc = knapsack_greedy(&[3.0, 1.0, 2.0], &[1.0, 1.0, 1.0], 2.5);
        assert!((alloc[1] - 1.0).abs() < 1e-12); // key 1 first
        assert!((alloc[2] - 1.0).abs() < 1e-12); // key 2 second
        assert!((alloc[0] - 0.5).abs() < 1e-12); // partial for key 3
    }

    #[test]
    fn knapsack_ties_break_by_index() {
        let alloc = knapsack_greedy(&[1.0, 1.0], &[1.0, 1.0], 1.0);
        assert_eq!(alloc, vec![1.0, 0.0]);
    }

    #[test]
    fn knapsack_respects_caps_with_surplus() {
        let alloc = knapsack_greedy(&[1.0, 2.0], &[0.5, 0.25], 10.0);
        assert_eq!(alloc, vec![0.5, 0.25]);
    }

    #[test]
    fn knapsack_is_optimal_for_linear_objective() {
        // Objective: Σ alloc_i / key_i (higher value density for low keys) —
        // the structure of both Wsp and IPCsum.
        let keys = [4.0, 1.0, 2.0, 8.0];
        let caps = [0.4, 0.2, 0.3, 0.5];
        let b = 0.6;
        let greedy = knapsack_greedy(&keys, &caps, b);
        let value = |a: &[f64]| a.iter().zip(&keys).map(|(x, k)| x / k).sum::<f64>();
        let gv = value(&greedy);
        // Compare against many random feasible allocations.
        for sample in sample_simplex(4, 200, 42) {
            // Scale the simplex point to a feasible capped allocation.
            let mut cand: Vec<f64> = sample
                .iter()
                .zip(&caps)
                .map(|(s, c)| (s * b).min(*c))
                .collect();
            let total: f64 = cand.iter().sum();
            if total > b {
                for x in &mut cand {
                    *x *= b / total;
                }
            }
            assert!(value(&cand) <= gv + 1e-9);
        }
    }

    #[test]
    fn simplex_samples_are_valid_and_deterministic() {
        let a = sample_simplex(5, 10, 7);
        let b = sample_simplex(5, 10, 7);
        assert_eq!(a, b);
        for v in &a {
            assert_eq!(v.len(), 5);
            assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x > 0.0));
        }
        // Different seeds give different samples.
        let c = sample_simplex(5, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn numeric_optimizer_finds_known_optimum() {
        // max Σ √β_i over the simplex is at β = 1/n.
        let (beta, val) = maximize_on_simplex(4, |b| b.iter().map(|x| x.sqrt()).sum(), 200);
        assert!((val - 2.0).abs() < 1e-3, "val = {val}");
        for x in beta {
            assert!((x - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn numeric_optimizer_handles_single_app() {
        let (beta, val) = maximize_on_simplex(1, |b| b[0], 10);
        assert_eq!(beta, vec![1.0]);
        assert_eq!(val, 1.0);
    }
}
