//! Generic multi-resource partitioning: [`Resource`] descriptors and
//! certified [`Allocation`]s.
//!
//! The paper partitions a single resource — off-chip bandwidth — and every
//! share producer in this crate historically returned a bare `Vec<f64>` of
//! bandwidth fractions. Coordinated partitioning (CBP-style bandwidth +
//! shared-LLC ways, see [`crate::coord`]) needs the same machinery over *N*
//! resources, so this module factors the resource-independent parts out:
//!
//! * a [`Resource`] names the thing being divided and its capacity
//!   (bandwidth in APC, LLC ways in ways, prefetch slots later),
//! * an [`Allocation`] carries both absolute amounts and the normalized
//!   share simplex for one resource, certified on construction with the
//!   same [`ensures_simplex!`](crate::ensures_simplex)/
//!   [`ensures_capped!`](crate::ensures_capped) contracts the bandwidth
//!   path uses, and
//! * a [`MultiAllocation`] bundles one allocation per resource — the shape
//!   the coordinated solver returns and `bwpartd` publishes.
//!
//! The four paper schemes remain the single-resource special case: a
//! [`PartitionScheme`] solve over [`ResourceKind::Bandwidth`] reproduces
//! `PartitionScheme::solve` exactly, and the same power-family/priority
//! rules apportion integral LLC ways via largest-remainder rounding.

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::error::ModelError;
use crate::schemes::{PartitionScheme, SharesOutcome};

/// The kind of resource being partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Off-chip memory bandwidth, measured in accesses per cycle (APC).
    Bandwidth,
    /// Shared last-level-cache ways (integral, at least one per app).
    LlcWays,
}

impl ResourceKind {
    /// Every resource kind the model knows about.
    pub const ALL: [ResourceKind; 2] = [ResourceKind::Bandwidth, ResourceKind::LlcWays];

    /// Canonical machine-facing name (kebab-case, stable on the wire).
    pub fn canonical_name(self) -> &'static str {
        match self {
            ResourceKind::Bandwidth => "bandwidth",
            ResourceKind::LlcWays => "llc-ways",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.canonical_name())
    }
}

impl std::str::FromStr for ResourceKind {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s.trim().to_ascii_lowercase().replace('_', "-");
        match norm.as_str() {
            "bandwidth" | "bw" => Ok(ResourceKind::Bandwidth),
            "llc-ways" | "ways" | "cache-ways" => Ok(ResourceKind::LlcWays),
            _ => Err(ModelError::UnknownResource { name: s.into() }),
        }
    }
}

/// One partitionable resource: its kind, total capacity, and granularity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// What is being divided.
    pub kind: ResourceKind,
    /// Total capacity in the resource's natural unit (APC for bandwidth,
    /// ways for the LLC).
    pub capacity: f64,
    /// Whether per-app amounts must be whole units (LLC ways are).
    pub integral: bool,
    /// Minimum per-app grant in natural units (1 way for the LLC; 0 for
    /// bandwidth, where the work-conserving scheduler handles starvation).
    pub min_unit: f64,
}

impl Resource {
    /// The off-chip bandwidth resource with total utilized bandwidth `b`.
    pub fn bandwidth(b: f64) -> Self {
        Resource {
            kind: ResourceKind::Bandwidth,
            capacity: b,
            integral: false,
            min_unit: 0.0,
        }
    }

    /// A shared LLC with `total_ways` ways, at least one per application.
    pub fn llc_ways(total_ways: usize) -> Self {
        Resource {
            kind: ResourceKind::LlcWays,
            capacity: total_ways as f64,
            integral: true,
            min_unit: 1.0,
        }
    }

    /// Check that the descriptor is well-formed.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "resource capacity",
                value: self.capacity,
            });
        }
        if !(self.min_unit.is_finite() && self.min_unit >= 0.0) {
            return Err(ModelError::InvalidInput {
                what: "resource min_unit",
                value: self.min_unit,
            });
        }
        Ok(())
    }
}

/// A certified division of one resource among `n` applications.
///
/// Constructed only through [`Allocation::certified`], which runs the same
/// debug-mode contracts the bandwidth solvers use: the share vector lies on
/// the unit simplex and the absolute amounts respect per-app caps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The resource being divided.
    pub kind: ResourceKind,
    /// Total capacity the division was solved against.
    pub capacity: f64,
    /// Absolute per-app amounts in the resource's natural unit.
    pub amounts: Vec<f64>,
    /// Normalized shares (amounts over the granted total; sums to 1).
    pub shares: Vec<f64>,
}

impl Allocation {
    /// Build and certify an allocation: `amounts` must be non-negative and
    /// elementwise within `caps`, and the derived share vector must lie on
    /// the unit simplex. Certification uses the debug-mode contracts
    /// ([`ensures_simplex!`](crate::ensures_simplex),
    /// [`ensures_capped!`](crate::ensures_capped)); release builds get the
    /// always-on [`validate_allocation`] checks.
    pub fn certified(
        resource: &Resource,
        amounts: Vec<f64>,
        caps: &[f64],
    ) -> Result<Self, ModelError> {
        resource.validate()?;
        if amounts.is_empty() {
            return Err(ModelError::NoApplications);
        }
        if caps.len() != amounts.len() {
            return Err(ModelError::LengthMismatch {
                expected: amounts.len(),
                got: caps.len(),
            });
        }
        let granted: f64 = amounts.iter().sum();
        if !(granted.is_finite() && granted > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "granted resource total",
                value: granted,
            });
        }
        let shares: Vec<f64> = amounts.iter().map(|&a| a / granted).collect();
        let alloc = Allocation {
            kind: resource.kind,
            capacity: resource.capacity,
            amounts,
            shares,
        };
        crate::ensures_simplex!(alloc.shares);
        crate::ensures_capped!(alloc.amounts, caps);
        validate_allocation(&alloc, resource, alloc.amounts.len())?;
        Ok(alloc)
    }

    /// Number of applications this allocation covers.
    pub fn len(&self) -> usize {
        self.amounts.len()
    }

    /// True when the allocation covers no applications (unreachable through
    /// [`Allocation::certified`], provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.amounts.is_empty()
    }
}

/// Always-on validation of an [`Allocation`] against its [`Resource`] — the
/// release-build counterpart of the debug contracts, used by `bwpartd`
/// admission. Checks length, finiteness, non-negativity, capacity,
/// integrality and minimum grants (for integral resources), and that the
/// share vector sums to 1.
pub fn validate_allocation(
    alloc: &Allocation,
    resource: &Resource,
    n: usize,
) -> Result<(), ModelError> {
    if alloc.amounts.len() != n {
        return Err(ModelError::LengthMismatch {
            expected: n,
            got: alloc.amounts.len(),
        });
    }
    if alloc.shares.len() != n {
        return Err(ModelError::LengthMismatch {
            expected: n,
            got: alloc.shares.len(),
        });
    }
    for &a in &alloc.amounts {
        if !(a.is_finite() && a >= 0.0) {
            return Err(ModelError::InvalidInput {
                what: "allocation amount",
                value: a,
            });
        }
        if resource.integral && a.fract().abs() > 1e-9 {
            return Err(ModelError::InvalidInput {
                what: "integral allocation amount",
                value: a,
            });
        }
        if a > 0.0 && a < resource.min_unit - 1e-9 {
            return Err(ModelError::InvalidInput {
                what: "allocation below resource min_unit",
                value: a,
            });
        }
    }
    let total: f64 = alloc.amounts.iter().sum();
    if total > resource.capacity + 1e-9 {
        return Err(ModelError::InvalidInput {
            what: "allocation exceeds resource capacity",
            value: total,
        });
    }
    let sum: f64 = alloc.shares.iter().sum();
    if (sum - 1.0).abs() > 1e-9 {
        return Err(ModelError::InvalidShares { sum });
    }
    Ok(())
}

/// One certified allocation per resource — the coordinated solver's output
/// shape and the `bwpartd` publication unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiAllocation {
    /// Per-resource allocations (one entry per [`ResourceKind`] in play).
    pub per_resource: Vec<Allocation>,
}

impl MultiAllocation {
    /// Look up the allocation for one resource kind.
    pub fn get(&self, kind: ResourceKind) -> Option<&Allocation> {
        self.per_resource.iter().find(|a| a.kind == kind)
    }

    /// Validate that every resource covers the same `n` applications.
    pub fn validate_app_count(&self, n: usize) -> Result<(), ModelError> {
        for a in &self.per_resource {
            if a.amounts.len() != n {
                return Err(ModelError::LengthMismatch {
                    expected: n,
                    got: a.amounts.len(),
                });
            }
        }
        Ok(())
    }
}

/// Apportion `resource.capacity` integral units to weights by the
/// largest-remainder method, honouring a `min_unit` floor per recipient.
/// Deterministic: remainder ties break by index.
fn apportion_integral(weights: &[f64], total: usize, min_each: usize) -> Vec<usize> {
    let n = weights.len();
    debug_assert!(total >= n * min_each);
    let free = total - n * min_each;
    let wsum: f64 = weights.iter().sum();
    let mut grants = vec![min_each; n];
    if free == 0 {
        return grants;
    }
    if wsum <= 0.0 {
        // Degenerate weights: spread the free units round-robin.
        for (i, g) in grants.iter_mut().enumerate() {
            *g += free / n + usize::from(i < free % n);
        }
        return grants;
    }
    let ideal: Vec<f64> = weights.iter().map(|&w| free as f64 * w / wsum).collect();
    let mut assigned = 0usize;
    let mut rema: Vec<(usize, f64)> = Vec::with_capacity(n);
    for (i, &x) in ideal.iter().enumerate() {
        let floor = x.floor() as usize;
        grants[i] += floor;
        assigned += floor;
        rema.push((i, x - x.floor()));
    }
    rema.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in rema.iter().take(free - assigned) {
        grants[i] += 1;
    }
    grants
}

impl PartitionScheme {
    /// Solve this scheme over an arbitrary [`Resource`] — the N-resource
    /// generalization of [`PartitionScheme::allocation`]. For
    /// [`ResourceKind::Bandwidth`] this reproduces the paper's solve
    /// exactly; for [`ResourceKind::LlcWays`] the same power-family /
    /// priority rules apportion integral ways by largest remainder with a
    /// one-way floor. Errors for `NoPartitioning` and `Coordinated`, which
    /// have no per-resource analytic rule (the coordinated solve lives in
    /// [`crate::coord`]).
    pub fn solve_resource(
        self,
        apps: &[AppProfile],
        resource: &Resource,
    ) -> Result<Allocation, ModelError> {
        resource.validate()?;
        if apps.is_empty() {
            return Err(ModelError::NoApplications);
        }
        match resource.kind {
            ResourceKind::Bandwidth => {
                let amounts = self.allocation(apps, resource.capacity)?;
                let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
                Allocation::certified(resource, amounts, &caps)
            }
            ResourceKind::LlcWays => {
                let total = resource.capacity as usize;
                if total < apps.len() {
                    return Err(ModelError::InvalidInput {
                        what: "llc-ways capacity below one way per app",
                        value: resource.capacity,
                    });
                }
                let weights: Vec<f64> = match self {
                    PartitionScheme::NoPartitioning | PartitionScheme::Coordinated => {
                        return Err(ModelError::InvalidInput {
                            what: "scheme (no per-resource analytic rule)",
                            value: f64::NAN,
                        })
                    }
                    // Priority schemes: all free ways to the best key
                    // (ascending APC_alone / API), one-way floor elsewhere.
                    PartitionScheme::PriorityApc | PartitionScheme::PriorityApi => {
                        let keys: Vec<f64> = apps
                            .iter()
                            .map(|a| {
                                if self == PartitionScheme::PriorityApc {
                                    a.apc_alone
                                } else {
                                    a.api
                                }
                            })
                            .collect();
                        let best = (0..apps.len())
                            .min_by(|&i, &j| keys[i].total_cmp(&keys[j]).then(i.cmp(&j)))
                            // lint: allow(R1): apps is non-empty (checked above)
                            .expect("apps is non-empty");
                        (0..apps.len()).map(|i| f64::from(i == best)).collect()
                    }
                    PartitionScheme::Equal
                    | PartitionScheme::Proportional
                    | PartitionScheme::SquareRoot
                    | PartitionScheme::TwoThirdsPower
                    | PartitionScheme::Power(_) => {
                        let Some(alpha) = self.power_exponent() else {
                            return Err(ModelError::InvalidInput {
                                what: "scheme (expected a power-family scheme)",
                                value: f64::NAN,
                            });
                        };
                        if !alpha.is_finite() {
                            return Err(ModelError::InvalidInput {
                                what: "power exponent",
                                value: alpha,
                            });
                        }
                        apps.iter().map(|a| a.apc_alone.powf(alpha)).collect()
                    }
                };
                let min_each = resource.min_unit.ceil() as usize;
                let ways = apportion_integral(&weights, total, min_each);
                let amounts: Vec<f64> = ways.iter().map(|&w| w as f64).collect();
                // No app may hold more ways than leave one each for the rest.
                let caps = vec![(total - (apps.len() - 1) * min_each) as f64; apps.len()];
                Allocation::certified(resource, amounts, &caps)
            }
        }
    }
}

impl From<&SharesOutcome> for Allocation {
    /// View a solved bandwidth partitioning as a generic [`Allocation`]
    /// (the single-resource special case). The nominal share simplex and
    /// capped allocation are taken verbatim from the outcome.
    fn from(out: &SharesOutcome) -> Self {
        Allocation {
            kind: ResourceKind::Bandwidth,
            capacity: out.bandwidth,
            amounts: out.allocation.clone(),
            shares: out.beta.clone(),
        }
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn four_apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new("libquantum", 0.0341188, 0.00691693).unwrap(),
            AppProfile::new("milc", 0.0422216, 0.00687143).unwrap(),
            AppProfile::new("gromacs", 0.0051976, 0.00336604).unwrap(),
            AppProfile::new("gobmk", 0.0040668, 0.00191485).unwrap(),
        ]
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in ResourceKind::ALL {
            let parsed: ResourceKind = kind.canonical_name().parse().unwrap();
            assert_eq!(parsed, kind);
            assert_eq!(kind.to_string(), kind.canonical_name());
        }
        assert_eq!(
            "bw".parse::<ResourceKind>().unwrap(),
            ResourceKind::Bandwidth
        );
        assert_eq!(
            "WAYS".parse::<ResourceKind>().unwrap(),
            ResourceKind::LlcWays
        );
        assert!("disk".parse::<ResourceKind>().is_err());
    }

    #[test]
    fn bandwidth_solve_resource_matches_legacy_solve() {
        let apps = four_apps();
        let b = 0.0095;
        let resource = Resource::bandwidth(b);
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let alloc = scheme.solve_resource(&apps, &resource).unwrap();
            let legacy = scheme.allocation(&apps, b).unwrap();
            assert_eq!(alloc.amounts, legacy, "{scheme}");
            assert_eq!(alloc.kind, ResourceKind::Bandwidth);
            let granted: f64 = legacy.iter().sum();
            for (s, a) in alloc.shares.iter().zip(&legacy) {
                assert!((s - a / granted).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn llc_ways_are_integral_with_one_way_floor() {
        let apps = four_apps();
        let resource = Resource::llc_ways(16);
        for scheme in PartitionScheme::ENFORCED_SCHEMES {
            let alloc = scheme.solve_resource(&apps, &resource).unwrap();
            let total: f64 = alloc.amounts.iter().sum();
            assert_eq!(total, 16.0, "{scheme}");
            for &w in &alloc.amounts {
                assert_eq!(w.fract(), 0.0, "{scheme}: non-integral ways {w}");
                assert!(w >= 1.0, "{scheme}: below one-way floor");
            }
        }
    }

    #[test]
    fn equal_ways_split_evenly() {
        let apps = four_apps();
        let alloc = PartitionScheme::Equal
            .solve_resource(&apps, &Resource::llc_ways(16))
            .unwrap();
        assert_eq!(alloc.amounts, vec![4.0; 4]);
        assert_eq!(alloc.shares, vec![0.25; 4]);
    }

    #[test]
    fn proportional_ways_follow_apc_alone_order() {
        let apps = four_apps();
        let alloc = PartitionScheme::Proportional
            .solve_resource(&apps, &Resource::llc_ways(16))
            .unwrap();
        // libquantum and milc (heaviest) must hold at least as many ways as
        // gromacs and gobmk.
        assert!(alloc.amounts[0] >= alloc.amounts[2]);
        assert!(alloc.amounts[1] >= alloc.amounts[3]);
        assert!(alloc.amounts[0] > alloc.amounts[3]);
    }

    #[test]
    fn priority_ways_concentrate_on_best_key() {
        let apps = four_apps();
        let alloc = PartitionScheme::PriorityApc
            .solve_resource(&apps, &Resource::llc_ways(16))
            .unwrap();
        // gobmk has the lowest APC_alone: it gets all free ways.
        assert_eq!(alloc.amounts[3], 13.0);
        assert_eq!(alloc.amounts[0], 1.0);
    }

    #[test]
    fn too_few_ways_is_an_error() {
        let apps = four_apps();
        assert!(PartitionScheme::Equal
            .solve_resource(&apps, &Resource::llc_ways(3))
            .is_err());
    }

    #[test]
    fn no_partitioning_and_coordinated_have_no_resource_rule() {
        let apps = four_apps();
        for scheme in [
            PartitionScheme::NoPartitioning,
            PartitionScheme::Coordinated,
        ] {
            assert!(scheme
                .solve_resource(&apps, &Resource::llc_ways(16))
                .is_err());
        }
        assert!(PartitionScheme::Coordinated
            .solve_resource(&apps, &Resource::bandwidth(0.01))
            .is_err());
    }

    #[test]
    fn certified_rejects_malformed_allocations() {
        let r = Resource::bandwidth(0.01);
        assert!(Allocation::certified(&r, vec![], &[]).is_err());
        assert!(Allocation::certified(&r, vec![0.005], &[0.004, 0.004]).is_err());
        assert!(Allocation::certified(&r, vec![0.0, 0.0], &[0.01, 0.01]).is_err());
    }

    #[test]
    fn validate_allocation_checks_integrality_and_capacity() {
        let r = Resource::llc_ways(8);
        let ok = Allocation {
            kind: ResourceKind::LlcWays,
            capacity: 8.0,
            amounts: vec![6.0, 2.0],
            shares: vec![0.75, 0.25],
        };
        assert!(validate_allocation(&ok, &r, 2).is_ok());
        let frac = Allocation {
            amounts: vec![5.5, 2.5],
            shares: vec![5.5 / 8.0, 2.5 / 8.0],
            ..ok.clone()
        };
        assert!(validate_allocation(&frac, &r, 2).is_err());
        let over = Allocation {
            amounts: vec![7.0, 3.0],
            shares: vec![0.7, 0.3],
            ..ok.clone()
        };
        assert!(validate_allocation(&over, &r, 2).is_err());
        assert!(validate_allocation(&ok, &r, 3).is_err());
    }

    #[test]
    fn multi_allocation_lookup_and_validation() {
        let apps = four_apps();
        let bw = PartitionScheme::SquareRoot
            .solve_resource(&apps, &Resource::bandwidth(0.0095))
            .unwrap();
        let ways = PartitionScheme::SquareRoot
            .solve_resource(&apps, &Resource::llc_ways(16))
            .unwrap();
        let multi = MultiAllocation {
            per_resource: vec![bw, ways],
        };
        assert!(multi.get(ResourceKind::Bandwidth).is_some());
        assert!(multi.get(ResourceKind::LlcWays).is_some());
        assert!(multi.validate_app_count(4).is_ok());
        assert!(multi.validate_app_count(3).is_err());
    }

    #[test]
    fn shares_outcome_converts_to_allocation() {
        let apps = four_apps();
        let out = PartitionScheme::SquareRoot.solve(&apps, 0.0095).unwrap();
        let alloc = Allocation::from(&out);
        assert_eq!(alloc.kind, ResourceKind::Bandwidth);
        assert_eq!(alloc.amounts, out.allocation);
        assert_eq!(alloc.shares, out.beta);
    }

    #[test]
    fn apportion_handles_degenerate_weights() {
        let grants = apportion_integral(&[0.0, 0.0, 0.0], 8, 1);
        assert_eq!(grants.iter().sum::<usize>(), 8);
        assert!(grants.iter().all(|&g| g >= 1));
    }

    #[test]
    fn allocations_serialize_round_trip() {
        let apps = four_apps();
        let alloc = PartitionScheme::SquareRoot
            .solve_resource(&apps, &Resource::llc_ways(16))
            .unwrap();
        let json = serde_json::to_string(&alloc).unwrap();
        let back: Allocation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, alloc);
    }
}
