//! Closed-form results of Section III (Eq. 4, 6 and 8) and the Cauchy
//! comparisons drawn from them.
//!
//! With `a_i = APC_alone,i` and total utilized bandwidth `B`:
//!
//! * **Eq. 4** — maximum harmonic weighted speedup (achieved by
//!   `Square_root`): `Hsp* = N·B / (Σ √a_i)²`.
//! * **Eq. 6** — weighted speedup *of* the `Square_root` scheme:
//!   `Wsp^sqrt = (B/N) · (Σ a_i^{-1/2}) / (Σ a_i^{1/2})`.
//!   (The camera-ready PDF typesets this formula ambiguously; the form here
//!   is the one that follows from substituting Eq. 5 into Eq. 9 and is the
//!   one consistent with the paper's own Cauchy-inequality argument.)
//! * **Eq. 8** — both speedup metrics of the `Proportional` scheme:
//!   `Hsp^prop = Wsp^prop = B / Σ a_i`.
//!
//! The derivations assume shares below standalone caps
//! (`β_i·B ≤ APC_alone,i`), i.e. contended bandwidth; all formulas here
//! inherit that assumption.

use crate::app::AppProfile;
use crate::error::ModelError;

fn check(apps: &[AppProfile], b: f64) -> Result<(), ModelError> {
    if apps.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if !(b.is_finite() && b > 0.0) {
        return Err(ModelError::InvalidInput {
            what: "total_bandwidth",
            value: b,
        });
    }
    Ok(())
}

/// Eq. 4: the maximum achievable harmonic weighted speedup,
/// `N·B / (Σ √APC_alone,i)²`, attained by the `Square_root` scheme.
pub fn max_hsp(apps: &[AppProfile], b: f64) -> Result<f64, ModelError> {
    check(apps, b)?;
    let n = apps.len() as f64;
    let s: f64 = apps.iter().map(|a| a.apc_alone.sqrt()).sum();
    Ok(n * b / (s * s))
}

/// Eq. 5: the bandwidth allocation achieving [`max_hsp`]:
/// `APC_shared,i = B · √a_i / Σ √a_j`.
pub fn hsp_optimal_allocation(apps: &[AppProfile], b: f64) -> Result<Vec<f64>, ModelError> {
    check(apps, b)?;
    let s: f64 = apps.iter().map(|a| a.apc_alone.sqrt()).sum();
    let alloc: Vec<f64> = apps.iter().map(|a| b * a.apc_alone.sqrt() / s).collect();
    crate::invariant!(
        crate::contracts::approx_eq(alloc.iter().sum::<f64>(), b, crate::contracts::TOLERANCE),
        "Eq. 5 allocation must exhaust B = {} (Eq. 2), got {}",
        b,
        alloc.iter().sum::<f64>()
    );
    Ok(alloc)
}

/// Eq. 6: the weighted speedup achieved by the `Square_root` scheme,
/// `(B/N) · (Σ a_i^{-1/2}) / (Σ a_i^{1/2})`.
pub fn wsp_of_sqrt(apps: &[AppProfile], b: f64) -> Result<f64, ModelError> {
    check(apps, b)?;
    let n = apps.len() as f64;
    let inv: f64 = apps.iter().map(|a| 1.0 / a.apc_alone.sqrt()).sum();
    let fwd: f64 = apps.iter().map(|a| a.apc_alone.sqrt()).sum();
    Ok(b / n * inv / fwd)
}

/// Eq. 8: harmonic weighted speedup and weighted speedup of the
/// `Proportional` scheme (they coincide because every speedup is equal):
/// `B / Σ APC_alone,i`.
pub fn hsp_wsp_of_proportional(apps: &[AppProfile], b: f64) -> Result<f64, ModelError> {
    check(apps, b)?;
    Ok(b / apps.iter().map(|a| a.apc_alone).sum::<f64>())
}

/// The common speedup every application receives under `Proportional`
/// partitioning: `B / Σ a_j` (each app's speedup equals the system Wsp).
pub fn proportional_common_speedup(apps: &[AppProfile], b: f64) -> Result<f64, ModelError> {
    hsp_wsp_of_proportional(apps, b)
}

/// Section III-C's Cauchy-inequality conclusions, as machine-checkable
/// predicates: both return the (lhs, rhs) pair so callers can assert
/// `lhs ≥ rhs`.
pub mod cauchy {
    use super::*;

    /// `Hsp(Square_root) ≥ Hsp(Proportional)` (Eq. 4 vs Eq. 8).
    pub fn hsp_sqrt_vs_prop(apps: &[AppProfile], b: f64) -> Result<(f64, f64), ModelError> {
        Ok((max_hsp(apps, b)?, hsp_wsp_of_proportional(apps, b)?))
    }

    /// `Wsp(Square_root) ≥ Wsp(Proportional)` (Eq. 6 vs Eq. 8).
    pub fn wsp_sqrt_vs_prop(apps: &[AppProfile], b: f64) -> Result<(f64, f64), ModelError> {
        Ok((wsp_of_sqrt(apps, b)?, hsp_wsp_of_proportional(apps, b)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::schemes::PartitionScheme;

    fn apps() -> Vec<AppProfile> {
        vec![
            AppProfile::new("lbm", 0.0531, 0.00939).unwrap(),
            AppProfile::new("milc", 0.0422, 0.00687).unwrap(),
            AppProfile::new("gobmk", 0.0041, 0.00191).unwrap(),
            AppProfile::new("zeusmp", 0.0045, 0.00242).unwrap(),
        ]
    }

    const B: f64 = 0.008;

    /// Eq. 4 agrees with evaluating Hsp at the Eq. 5 allocation.
    #[test]
    fn eq4_consistent_with_eq5() {
        let a = apps();
        let alloc = hsp_optimal_allocation(&a, B).unwrap();
        assert!((alloc.iter().sum::<f64>() - B).abs() < 1e-12);
        let ipc_shared: Vec<f64> = alloc.iter().zip(&a).map(|(x, p)| x / p.api).collect();
        let ipc_alone: Vec<f64> = a.iter().map(|p| p.ipc_alone()).collect();
        let hsp = metrics::harmonic_weighted_speedup(&ipc_shared, &ipc_alone).unwrap();
        assert!((hsp - max_hsp(&a, B).unwrap()).abs() < 1e-12);
    }

    /// Eq. 5 equals the SquareRoot scheme's allocation (uncapped regime).
    #[test]
    fn eq5_matches_square_root_scheme() {
        let a = apps();
        let from_scheme = PartitionScheme::SquareRoot.allocation(&a, B).unwrap();
        let from_eq5 = hsp_optimal_allocation(&a, B).unwrap();
        for (x, y) in from_scheme.iter().zip(&from_eq5) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    /// Eq. 6 agrees with evaluating Wsp at the sqrt allocation.
    #[test]
    fn eq6_consistent_with_direct_evaluation() {
        let a = apps();
        let alloc = hsp_optimal_allocation(&a, B).unwrap();
        let ipc_shared: Vec<f64> = alloc.iter().zip(&a).map(|(x, p)| x / p.api).collect();
        let ipc_alone: Vec<f64> = a.iter().map(|p| p.ipc_alone()).collect();
        let wsp = metrics::weighted_speedup(&ipc_shared, &ipc_alone).unwrap();
        assert!(
            (wsp - wsp_of_sqrt(&a, B).unwrap()).abs() < 1e-12,
            "direct {wsp} vs closed form {}",
            wsp_of_sqrt(&a, B).unwrap()
        );
    }

    /// Eq. 8: proportional equalizes speedups; Hsp == Wsp == B/Σa.
    #[test]
    fn eq8_consistent_with_direct_evaluation() {
        let a = apps();
        let alloc = PartitionScheme::Proportional.allocation(&a, B).unwrap();
        let ipc_shared: Vec<f64> = alloc.iter().zip(&a).map(|(x, p)| x / p.api).collect();
        let ipc_alone: Vec<f64> = a.iter().map(|p| p.ipc_alone()).collect();
        let hsp = metrics::harmonic_weighted_speedup(&ipc_shared, &ipc_alone).unwrap();
        let wsp = metrics::weighted_speedup(&ipc_shared, &ipc_alone).unwrap();
        let expect = hsp_wsp_of_proportional(&a, B).unwrap();
        assert!((hsp - expect).abs() < 1e-12);
        assert!((wsp - expect).abs() < 1e-12);
        // Every app's speedup equals the common value.
        for (s, al) in ipc_shared.iter().zip(&ipc_alone) {
            assert!((s / al - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn cauchy_orderings_hold() {
        let a = apps();
        let (lhs, rhs) = cauchy::hsp_sqrt_vs_prop(&a, B).unwrap();
        assert!(lhs >= rhs - 1e-15, "Hsp: {lhs} < {rhs}");
        let (lhs, rhs) = cauchy::wsp_sqrt_vs_prop(&a, B).unwrap();
        assert!(lhs >= rhs - 1e-15, "Wsp: {lhs} < {rhs}");
    }

    #[test]
    fn cauchy_tight_for_identical_apps() {
        // When all APC_alone are equal the inequalities collapse to equality.
        let a: Vec<_> = (0..4)
            .map(|i| AppProfile::new(format!("x{i}"), 0.01, 0.004).unwrap())
            .collect();
        let (lhs, rhs) = cauchy::hsp_sqrt_vs_prop(&a, B).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
        let (lhs, rhs) = cauchy::wsp_sqrt_vs_prop(&a, B).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(max_hsp(&[], 0.01).is_err());
        assert!(max_hsp(&apps(), 0.0).is_err());
        assert!(wsp_of_sqrt(&apps(), f64::NAN).is_err());
    }
}
