//! Application descriptors consumed by the analytical model.
//!
//! The model characterizes an application by exactly two numbers (Table I of
//! the paper):
//!
//! * `API` — memory **A**ccesses **P**er **I**nstruction: a property of the
//!   program and its input set, *invariant* under bandwidth partitioning.
//! * `APC_alone` — memory **A**ccesses **P**er **C**ycle the application
//!   sustains when it owns the whole memory system. This is its inherent
//!   memory access frequency and doubles as an upper bound on the bandwidth
//!   it can usefully consume when sharing.
//!
//! Everything else (`IPC_alone`, classification thresholds, ...) derives from
//! those two.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Memory-intensity class used by the paper's benchmark taxonomy
/// (Section V-C1): thresholds are on `APKC_alone` = `APC_alone × 1000`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntensityClass {
    /// `APKC_alone > 8`.
    High,
    /// `4 < APKC_alone ≤ 8`.
    Middle,
    /// `APKC_alone ≤ 4`.
    Low,
}

impl IntensityClass {
    /// Classify from an `APKC_alone` (accesses per kilo-cycle) value.
    pub fn from_apkc(apkc: f64) -> Self {
        if apkc > 8.0 {
            IntensityClass::High
        } else if apkc > 4.0 {
            IntensityClass::Middle
        } else {
            IntensityClass::Low
        }
    }

    /// Human-readable label matching the paper's Table III.
    pub fn label(self) -> &'static str {
        match self {
            IntensityClass::High => "high",
            IntensityClass::Middle => "middle",
            IntensityClass::Low => "low",
        }
    }
}

/// The per-application inputs to the analytical model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Identifier used in reports (benchmark name in the paper's tables).
    pub name: String,
    /// Memory accesses per instruction (strictly positive).
    pub api: f64,
    /// Memory accesses per cycle when running alone (strictly positive).
    pub apc_alone: f64,
}

impl AppProfile {
    /// Build a profile, validating that both rates are finite and positive.
    pub fn new(name: impl Into<String>, api: f64, apc_alone: f64) -> Result<Self, ModelError> {
        if !(api.is_finite() && api > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "api",
                value: api,
            });
        }
        if !(apc_alone.is_finite() && apc_alone > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "apc_alone",
                value: apc_alone,
            });
        }
        Ok(Self {
            name: name.into(),
            api,
            apc_alone,
        })
    }

    /// Build a profile from the units the paper's Table III reports:
    /// accesses per *kilo*-instruction and per *kilo*-cycle.
    pub fn from_kilo_units(
        name: impl Into<String>,
        apki: f64,
        apkc_alone: f64,
    ) -> Result<Self, ModelError> {
        Self::new(name, apki / 1000.0, apkc_alone / 1000.0)
    }

    /// Instructions per cycle when running alone: `APC_alone / API` (Eq. 1).
    pub fn ipc_alone(&self) -> f64 {
        self.apc_alone / self.api
    }

    /// Accesses per kilo-instruction, the paper's `APKI` unit.
    pub fn apki(&self) -> f64 {
        self.api * 1000.0
    }

    /// Accesses per kilo-cycle when alone, the paper's `APKC_alone` unit.
    pub fn apkc_alone(&self) -> f64 {
        self.apc_alone * 1000.0
    }

    /// The paper's memory-intensity class for this application.
    pub fn intensity(&self) -> IntensityClass {
        IntensityClass::from_apkc(self.apkc_alone())
    }
}

/// Convert an `APC` figure (accesses per CPU cycle) to bytes per second:
/// `GB/s = APC × line_bytes × cpu_hz` (Section III-A's unit conversion).
pub fn apc_to_bytes_per_sec(apc: f64, line_bytes: u64, cpu_hz: f64) -> f64 {
    apc * line_bytes as f64 * cpu_hz
}

/// Convert bytes per second of line-granular traffic back to `APC`.
pub fn bytes_per_sec_to_apc(bps: f64, line_bytes: u64, cpu_hz: f64) -> f64 {
    bps / (line_bytes as f64 * cpu_hz)
}

/// Relative standard deviation (%) of the `APC_alone`s of a workload —
/// the paper's *heterogeneity* measure (Section V-C2). A workload is
/// heterogeneous when this exceeds 30. Uses the sample (n−1) standard
/// deviation, which is what reproduces the paper's Table IV values
/// exactly from its Table III data.
pub fn heterogeneity_rsd(apps: &[AppProfile]) -> f64 {
    if apps.len() < 2 {
        return 0.0;
    }
    let n = apps.len() as f64;
    let mean = apps.iter().map(|a| a.apc_alone).sum::<f64>() / n;
    // AppProfile guarantees apc_alone > 0, so this only guards degenerate
    // hand-built profiles (and avoids an exact float-zero comparison).
    if mean.is_nan() || mean <= 0.0 {
        return 0.0;
    }
    let var = apps
        .iter()
        .map(|a| (a.apc_alone - mean).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    100.0 * var.sqrt() / mean
}

/// The paper's cut-off: heterogeneity (RSD) above this marks a workload mix
/// as *heterogeneous*.
pub const HETEROGENEITY_THRESHOLD: f64 = 30.0;

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert!(AppProfile::new("x", 0.0, 0.01).is_err());
        assert!(AppProfile::new("x", -0.1, 0.01).is_err());
        assert!(AppProfile::new("x", f64::NAN, 0.01).is_err());
        assert!(AppProfile::new("x", 0.01, 0.0).is_err());
        assert!(AppProfile::new("x", 0.01, f64::INFINITY).is_err());
    }

    #[test]
    fn ipc_alone_is_eq1() {
        let a = AppProfile::new("lbm", 0.0531331, 0.00938517).unwrap();
        let ipc = a.ipc_alone();
        assert!((ipc - 0.00938517 / 0.0531331).abs() < 1e-12);
        // lbm runs slowly when alone: bandwidth-bound.
        assert!(ipc < 0.2);
    }

    #[test]
    fn kilo_units_round_trip() {
        let a = AppProfile::from_kilo_units("milc", 42.2216, 6.87143).unwrap();
        assert!((a.apki() - 42.2216).abs() < 1e-9);
        assert!((a.apkc_alone() - 6.87143).abs() < 1e-9);
    }

    #[test]
    fn intensity_classes_match_table3() {
        // Table III spot checks.
        let lbm = AppProfile::from_kilo_units("lbm", 53.1331, 9.38517).unwrap();
        assert_eq!(lbm.intensity(), IntensityClass::High);
        let milc = AppProfile::from_kilo_units("milc", 42.2216, 6.87143).unwrap();
        assert_eq!(milc.intensity(), IntensityClass::Middle);
        let gobmk = AppProfile::from_kilo_units("gobmk", 4.0668, 1.91485).unwrap();
        assert_eq!(gobmk.intensity(), IntensityClass::Low);
        // Boundary behaviour: exactly 8 and exactly 4 are not in the upper class.
        assert_eq!(IntensityClass::from_apkc(8.0), IntensityClass::Middle);
        assert_eq!(IntensityClass::from_apkc(4.0), IntensityClass::Low);
    }

    #[test]
    fn apc_unit_conversion_matches_paper_example() {
        // Section III-A: 0.01 APC with 64 B lines at 5 GHz is 3.2 GB/s.
        let bps = apc_to_bytes_per_sec(0.01, 64, 5.0e9);
        assert!((bps - 3.2e9).abs() < 1.0);
        let apc = bytes_per_sec_to_apc(3.2e9, 64, 5.0e9);
        assert!((apc - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rsd_zero_for_identical_apps() {
        let apps: Vec<_> = (0..4)
            .map(|i| AppProfile::new(format!("a{i}"), 0.01, 0.002).unwrap())
            .collect();
        assert!(heterogeneity_rsd(&apps) < 1e-12);
    }

    #[test]
    fn rsd_flags_heterogeneous_mixes() {
        // hetero-7 style mix: one heavy streamer with three light apps.
        let apps = vec![
            AppProfile::new("lbm", 0.053, 0.0094).unwrap(),
            AppProfile::new("milc", 0.042, 0.0069).unwrap(),
            AppProfile::new("gobmk", 0.004, 0.0019).unwrap(),
            AppProfile::new("zeusmp", 0.0045, 0.0024).unwrap(),
        ];
        assert!(heterogeneity_rsd(&apps) > HETEROGENEITY_THRESHOLD);
    }

    #[test]
    fn rsd_handles_empty() {
        assert_eq!(heterogeneity_rsd(&[]), 0.0);
    }
}
