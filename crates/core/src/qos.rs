//! QoS-guaranteed partitioning (Section III-G, Eq. 11).
//!
//! Applications are split into a **QoS-guaranteed** group — each with a
//! target IPC that must be met — and a **best-effort** group. The QoS group
//! is first granted exactly the bandwidth its targets require
//! (`B_QoS,i = IPC_target,i × API_i`); the remainder
//! (`B_BE = B − Σ B_QoS,i`) is then partitioned among the best-effort
//! applications with whichever optimal scheme matches the chosen objective.

use serde::{Deserialize, Serialize};

use crate::app::AppProfile;
use crate::contracts;
use crate::error::ModelError;
use crate::predict::{self, Prediction};
use crate::schemes::PartitionScheme;

/// One application's QoS demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosRequest {
    /// Index of the application in the workload's profile list.
    pub app: usize,
    /// The IPC the system must guarantee for it.
    pub target_ipc: f64,
}

/// The outcome of a QoS-aware partitioning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QosPartition {
    /// Full per-application allocation in APC units (QoS + best effort).
    pub allocation: Vec<f64>,
    /// Bandwidth reserved for the QoS group (`Σ B_QoS,i`).
    pub qos_bandwidth: f64,
    /// Bandwidth left for the best-effort group (`B_BE`, Eq. 11).
    pub best_effort_bandwidth: f64,
    /// Indices of the best-effort applications.
    pub best_effort_apps: Vec<usize>,
}

impl QosPartition {
    /// Share vector `β` over the full application list.
    pub fn shares(&self) -> Vec<f64> {
        let total: f64 = self.allocation.iter().sum();
        let beta: Vec<f64> = self.allocation.iter().map(|a| a / total).collect();
        crate::ensures_simplex!(beta);
        beta
    }

    /// Model-predicted outcome of this allocation.
    pub fn predict(&self, apps: &[AppProfile]) -> Result<Prediction, ModelError> {
        predict::evaluate_allocation(apps, &self.allocation)
    }
}

/// Compute the QoS-guaranteed partition: reserve `target_ipc × API` for each
/// QoS application, then partition the remainder among best-effort
/// applications with `be_scheme`.
///
/// Errors if a target exceeds an application's standalone IPC, if the same
/// application appears in two requests, or if the reservations exceed `b`.
/// `be_scheme` must not be [`PartitionScheme::NoPartitioning`].
pub fn partition(
    apps: &[AppProfile],
    requests: &[QosRequest],
    be_scheme: PartitionScheme,
    b: f64,
) -> Result<QosPartition, ModelError> {
    if apps.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if !(b.is_finite() && b > 0.0) {
        return Err(ModelError::InvalidInput {
            what: "total_bandwidth",
            value: b,
        });
    }

    let mut allocation = vec![0.0; apps.len()];
    let mut is_qos = vec![false; apps.len()];
    let mut qos_bandwidth = 0.0;
    for req in requests {
        if req.app >= apps.len() {
            return Err(ModelError::LengthMismatch {
                expected: apps.len(),
                got: req.app + 1,
            });
        }
        if is_qos[req.app] {
            return Err(ModelError::InvalidInput {
                what: "duplicate QoS request for application",
                value: req.app as f64,
            });
        }
        if !(req.target_ipc.is_finite() && req.target_ipc > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "target_ipc",
                value: req.target_ipc,
            });
        }
        let app = &apps[req.app];
        if req.target_ipc > app.ipc_alone() {
            return Err(ModelError::QosTargetUnreachable {
                app: req.app,
                target_ipc: req.target_ipc,
                ipc_alone: app.ipc_alone(),
            });
        }
        // Eq. 11 reservation: B_QoS = IPC_target × API.
        let reserve = req.target_ipc * app.api;
        allocation[req.app] = reserve;
        qos_bandwidth += reserve;
        is_qos[req.app] = true;
    }
    if qos_bandwidth > b {
        return Err(ModelError::QosInfeasible {
            required: qos_bandwidth,
            available: b,
        });
    }

    let best_effort_apps: Vec<usize> = (0..apps.len()).filter(|&i| !is_qos[i]).collect();
    let best_effort_bandwidth = b - qos_bandwidth;

    if !best_effort_apps.is_empty() && best_effort_bandwidth > 0.0 {
        let be_profiles: Vec<AppProfile> =
            best_effort_apps.iter().map(|&i| apps[i].clone()).collect();
        let be_alloc = be_scheme.allocation(&be_profiles, best_effort_bandwidth)?;
        for (&i, a) in best_effort_apps.iter().zip(be_alloc) {
            allocation[i] = a;
        }
    }

    // Eq. 11 certificates: the reservation fits inside B, each QoS
    // reservation is within the application's standalone rate (implied by
    // target ≤ IPC_alone), and the full allocation never over-commits B.
    crate::invariant!(
        contracts::approx_le(qos_bandwidth, b, contracts::TOLERANCE),
        "QoS reservation {} exceeds total bandwidth {} (Eq. 11)",
        qos_bandwidth,
        b
    );
    let caps: Vec<f64> = apps.iter().map(|a| a.apc_alone).collect();
    crate::ensures_capped!(allocation, caps);
    crate::invariant!(
        contracts::approx_le(allocation.iter().sum::<f64>(), b, contracts::TOLERANCE),
        "QoS partition over-commits bandwidth: Σ alloc = {} > B = {}",
        allocation.iter().sum::<f64>(),
        b
    );

    Ok(QosPartition {
        allocation,
        qos_bandwidth,
        best_effort_bandwidth,
        best_effort_apps,
    })
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::metrics::Metric;

    /// Mix-1-like workload: hmmer is the QoS app with target IPC 0.6.
    fn mix() -> Vec<AppProfile> {
        vec![
            AppProfile::new("lbm", 0.0531, 0.00939).unwrap(),
            AppProfile::new("libquantum", 0.0341, 0.00692).unwrap(),
            AppProfile::new("omnetpp", 0.0306, 0.00519).unwrap(),
            AppProfile::new("hmmer", 0.0046, 0.00529).unwrap(),
        ]
    }

    const B: f64 = 0.0095;

    #[test]
    fn reservation_is_eq11() {
        let apps = mix();
        let req = [QosRequest {
            app: 3,
            target_ipc: 0.6,
        }];
        let part = partition(&apps, &req, PartitionScheme::SquareRoot, B).unwrap();
        // B_QoS = 0.6 × 0.0046
        assert!((part.qos_bandwidth - 0.6 * 0.0046).abs() < 1e-12);
        assert!((part.allocation[3] - 0.6 * 0.0046).abs() < 1e-12);
        assert!((part.best_effort_bandwidth - (B - part.qos_bandwidth)).abs() < 1e-12);
        assert_eq!(part.best_effort_apps, vec![0, 1, 2]);
        // Full allocation sums to B when best-effort caps don't bind.
        assert!((part.allocation.iter().sum::<f64>() - B).abs() < 1e-9);
    }

    #[test]
    fn predicted_qos_ipc_hits_target() {
        let apps = mix();
        let req = [QosRequest {
            app: 3,
            target_ipc: 0.6,
        }];
        let part = partition(&apps, &req, PartitionScheme::PriorityApc, B).unwrap();
        let pred = part.predict(&apps).unwrap();
        assert!((pred.ipc_shared[3] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn best_effort_scheme_changes_split_not_reservation() {
        let apps = mix();
        let req = [QosRequest {
            app: 3,
            target_ipc: 0.6,
        }];
        let a = partition(&apps, &req, PartitionScheme::SquareRoot, B).unwrap();
        let b = partition(&apps, &req, PartitionScheme::Proportional, B).unwrap();
        assert_eq!(a.allocation[3], b.allocation[3]);
        assert_ne!(a.allocation[0], b.allocation[0]);
    }

    #[test]
    fn multiple_qos_apps() {
        let apps = mix();
        let req = [
            QosRequest {
                app: 3,
                target_ipc: 0.6,
            },
            QosRequest {
                app: 2,
                target_ipc: 0.05,
            },
        ];
        let part = partition(&apps, &req, PartitionScheme::Equal, B).unwrap();
        assert_eq!(part.best_effort_apps, vec![0, 1]);
        let pred = part.predict(&apps).unwrap();
        assert!((pred.ipc_shared[3] - 0.6).abs() < 1e-9);
        assert!((pred.ipc_shared[2] - 0.05).abs() < 1e-9);
        // Best-effort apps split the remainder equally (both uncapped here).
        assert!((part.allocation[0] - part.allocation[1]).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_is_rejected() {
        let apps = mix();
        let ipc_alone = apps[3].ipc_alone();
        let req = [QosRequest {
            app: 3,
            target_ipc: ipc_alone * 1.01,
        }];
        assert!(matches!(
            partition(&apps, &req, PartitionScheme::Equal, B),
            Err(ModelError::QosTargetUnreachable { app: 3, .. })
        ));
    }

    #[test]
    fn infeasible_reservation_is_rejected() {
        let apps = mix();
        let req = [QosRequest {
            app: 3,
            target_ipc: 1.0, // needs 0.0046 APC...
        }];
        // ...but only 0.004 available.
        let r = partition(&apps, &req, PartitionScheme::Equal, 0.004);
        assert!(matches!(r, Err(ModelError::QosInfeasible { .. })));
    }

    #[test]
    fn duplicate_and_out_of_range_requests_rejected() {
        let apps = mix();
        let dup = [
            QosRequest {
                app: 3,
                target_ipc: 0.3,
            },
            QosRequest {
                app: 3,
                target_ipc: 0.2,
            },
        ];
        assert!(partition(&apps, &dup, PartitionScheme::Equal, B).is_err());
        let oob = [QosRequest {
            app: 9,
            target_ipc: 0.3,
        }];
        assert!(partition(&apps, &oob, PartitionScheme::Equal, B).is_err());
    }

    #[test]
    fn qos_improves_best_effort_over_nothing_left() {
        // Sanity: best-effort Wsp under PriorityApc beats Equal on the same
        // residual bandwidth (the Section VI-B observation).
        let apps = mix();
        let req = [QosRequest {
            app: 3,
            target_ipc: 0.6,
        }];
        let greedy = partition(&apps, &req, PartitionScheme::PriorityApc, B).unwrap();
        let equal = partition(&apps, &req, PartitionScheme::Equal, B).unwrap();
        let wsp = |p: &QosPartition| {
            let pred = p.predict(&apps).unwrap();
            // Weighted speedup over the best-effort subset only.
            let (s, a): (Vec<f64>, Vec<f64>) = p
                .best_effort_apps
                .iter()
                .map(|&i| (pred.ipc_shared[i], pred.ipc_alone[i]))
                .unzip();
            crate::metrics::evaluate(Metric::WeightedSpeedup, &s, &a).unwrap()
        };
        assert!(wsp(&greedy) >= wsp(&equal) - 1e-12);
    }

    #[test]
    fn empty_request_list_is_plain_partitioning() {
        let apps = mix();
        let part = partition(&apps, &[], PartitionScheme::SquareRoot, B).unwrap();
        assert_eq!(part.qos_bandwidth, 0.0);
        let direct = PartitionScheme::SquareRoot.allocation(&apps, B).unwrap();
        for (x, y) in part.allocation.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
