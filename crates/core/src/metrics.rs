//! The system-level performance objectives of Section V-A.
//!
//! All four metrics are functions of the per-application pairs
//! `(IPC_shared,i, IPC_alone,i)`; equivalently, of `(APC_shared,i,
//! APC_alone,i)` because the `API` factor cancels inside each speedup ratio.
//!
//! * **Harmonic weighted speedup** (Eq. 3) — harmonic mean of speedups,
//!   balancing throughput and fairness.
//! * **Weighted speedup** (Eq. 9) — arithmetic mean of speedups.
//! * **Sum of IPCs** (Eq. 10) — raw throughput.
//! * **Minimum fairness** (Eq. 14) — `N × min_i speedup_i`; the system is
//!   "minimally fair" when every app keeps at least a `1/N` speedup.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// The four objectives evaluated throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Eq. 3 — `N / Σ(IPC_alone,i / IPC_shared,i)`.
    HarmonicWeightedSpeedup,
    /// Eq. 9 — `Σ(IPC_shared,i / IPC_alone,i) / N`.
    WeightedSpeedup,
    /// Eq. 10 — `Σ IPC_shared,i`.
    SumOfIpcs,
    /// Eq. 14 — `N × min_i(IPC_shared,i / IPC_alone,i)`.
    MinFairness,
}

impl Metric {
    /// All four metrics in the paper's presentation order.
    pub const ALL: [Metric; 4] = [
        Metric::HarmonicWeightedSpeedup,
        Metric::MinFairness,
        Metric::WeightedSpeedup,
        Metric::SumOfIpcs,
    ];

    /// Short label used in tables (matches the paper's abbreviations).
    pub fn label(self) -> &'static str {
        match self {
            Metric::HarmonicWeightedSpeedup => "Hsp",
            Metric::WeightedSpeedup => "Wsp",
            Metric::SumOfIpcs => "IPCsum",
            Metric::MinFairness => "MinF",
        }
    }

    /// The partitioning scheme the paper proves (or argues) optimal for this
    /// metric, as a human-readable name.
    pub fn optimal_scheme_name(self) -> &'static str {
        match self {
            Metric::HarmonicWeightedSpeedup => "Square_root",
            Metric::WeightedSpeedup => "Priority_APC",
            Metric::SumOfIpcs => "Priority_API",
            Metric::MinFairness => "Proportional",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn check_pairs(shared: &[f64], alone: &[f64]) -> Result<(), ModelError> {
    if shared.is_empty() {
        return Err(ModelError::NoApplications);
    }
    if shared.len() != alone.len() {
        return Err(ModelError::LengthMismatch {
            expected: alone.len(),
            got: shared.len(),
        });
    }
    for (&s, which) in shared.iter().zip(std::iter::repeat("ipc_shared")) {
        if !(s.is_finite() && s >= 0.0) {
            return Err(ModelError::InvalidInput {
                what: which,
                value: s,
            });
        }
    }
    for &a in alone {
        if !(a.is_finite() && a > 0.0) {
            return Err(ModelError::InvalidInput {
                what: "ipc_alone",
                value: a,
            });
        }
    }
    Ok(())
}

/// Per-application speedups `IPC_shared,i / IPC_alone,i`.
// lint: allow(R3): speedups are per-app ratios, not a share/allocation vector
pub fn speedups(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<Vec<f64>, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    Ok(ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| s / a)
        .collect())
}

/// Harmonic weighted speedup (Eq. 3). Returns 0 if any application made no
/// progress (its slowdown is infinite, collapsing the harmonic mean).
pub fn harmonic_weighted_speedup(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    let n = ipc_shared.len() as f64;
    if ipc_shared.contains(&0.0) {
        return Ok(0.0);
    }
    let denom: f64 = ipc_shared.iter().zip(ipc_alone).map(|(&s, &a)| a / s).sum();
    Ok(n / denom)
}

/// Weighted speedup (Eq. 9).
pub fn weighted_speedup(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    let n = ipc_shared.len() as f64;
    Ok(ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| s / a)
        .sum::<f64>()
        / n)
}

/// Sum of IPCs (Eq. 10). `ipc_alone` is accepted for interface uniformity
/// but only its length is used.
pub fn sum_of_ipcs(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    Ok(ipc_shared.iter().sum())
}

/// Minimum fairness (Eq. 14): `N × min_i speedup_i`. Values ≥ 1 mean the
/// system achieves minimum fairness (every app retains ≥ 1/N of its alone
/// performance).
pub fn min_fairness(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    let n = ipc_shared.len() as f64;
    let min = ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| s / a)
        .fold(f64::INFINITY, f64::min);
    Ok(n * min)
}

/// Maximum slowdown, the reciprocal view of minimum fairness (the paper
/// notes the equivalence to the metric of Gabor et al.). Returns
/// `max_i (IPC_alone,i / IPC_shared,i)`, or `+inf` if an app starved.
pub fn max_slowdown(ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    check_pairs(ipc_shared, ipc_alone)?;
    Ok(ipc_shared
        .iter()
        .zip(ipc_alone)
        .map(|(&s, &a)| if s > 0.0 { a / s } else { f64::INFINITY })
        .fold(0.0, f64::max))
}

/// Evaluate one [`Metric`] on `(IPC_shared, IPC_alone)` vectors.
pub fn evaluate(metric: Metric, ipc_shared: &[f64], ipc_alone: &[f64]) -> Result<f64, ModelError> {
    match metric {
        Metric::HarmonicWeightedSpeedup => harmonic_weighted_speedup(ipc_shared, ipc_alone),
        Metric::WeightedSpeedup => weighted_speedup(ipc_shared, ipc_alone),
        Metric::SumOfIpcs => sum_of_ipcs(ipc_shared, ipc_alone),
        Metric::MinFairness => min_fairness(ipc_shared, ipc_alone),
    }
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    const SHARED: [f64; 4] = [0.5, 0.4, 0.8, 1.0];
    const ALONE: [f64; 4] = [1.0, 0.8, 1.0, 1.25];

    #[test]
    fn speedup_vector() {
        let s = speedups(&SHARED, &ALONE).unwrap();
        assert_eq!(s, vec![0.5, 0.5, 0.8, 0.8]);
    }

    #[test]
    fn hsp_is_harmonic_mean_of_speedups() {
        let hsp = harmonic_weighted_speedup(&SHARED, &ALONE).unwrap();
        // harmonic mean of [0.5, 0.5, 0.8, 0.8] = 4 / (2 + 2 + 1.25 + 1.25)
        assert!((hsp - 4.0 / 6.5).abs() < 1e-12);
    }

    #[test]
    fn wsp_is_arithmetic_mean_of_speedups() {
        let wsp = weighted_speedup(&SHARED, &ALONE).unwrap();
        assert!((wsp - 0.65).abs() < 1e-12);
    }

    #[test]
    fn ipcsum_ignores_alone() {
        let s = sum_of_ipcs(&SHARED, &ALONE).unwrap();
        assert!((s - 2.7).abs() < 1e-12);
    }

    #[test]
    fn min_fairness_scales_min_speedup() {
        let mf = min_fairness(&SHARED, &ALONE).unwrap();
        assert!((mf - 4.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_slowdown_is_reciprocal_of_min_speedup() {
        let ms = max_slowdown(&SHARED, &ALONE).unwrap();
        assert!((ms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn equal_speedups_make_all_means_agree() {
        // When all speedups are identical, Hsp == Wsp == speedup and
        // MinF == N × speedup.
        let shared = [0.3, 0.6, 0.15];
        let alone = [0.5, 1.0, 0.25];
        let hsp = harmonic_weighted_speedup(&shared, &alone).unwrap();
        let wsp = weighted_speedup(&shared, &alone).unwrap();
        let mf = min_fairness(&shared, &alone).unwrap();
        assert!((hsp - 0.6).abs() < 1e-12);
        assert!((wsp - 0.6).abs() < 1e-12);
        assert!((mf - 1.8).abs() < 1e-12);
    }

    #[test]
    fn starved_app_zeroes_hsp_and_minf() {
        let shared = [0.0, 1.0];
        let alone = [1.0, 1.0];
        assert_eq!(harmonic_weighted_speedup(&shared, &alone).unwrap(), 0.0);
        assert_eq!(min_fairness(&shared, &alone).unwrap(), 0.0);
        assert_eq!(max_slowdown(&shared, &alone).unwrap(), f64::INFINITY);
        // ...but the throughput metrics survive.
        assert_eq!(weighted_speedup(&shared, &alone).unwrap(), 0.5);
        assert_eq!(sum_of_ipcs(&shared, &alone).unwrap(), 1.0);
    }

    #[test]
    fn errors_on_bad_shapes() {
        assert!(matches!(
            harmonic_weighted_speedup(&[], &[]),
            Err(ModelError::NoApplications)
        ));
        assert!(matches!(
            weighted_speedup(&[1.0], &[1.0, 2.0]),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(min_fairness(&[1.0], &[0.0]).is_err());
        assert!(sum_of_ipcs(&[-1.0], &[1.0]).is_err());
        assert!(sum_of_ipcs(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        for m in Metric::ALL {
            let via_dispatch = evaluate(m, &SHARED, &ALONE).unwrap();
            let direct = match m {
                Metric::HarmonicWeightedSpeedup => {
                    harmonic_weighted_speedup(&SHARED, &ALONE).unwrap()
                }
                Metric::WeightedSpeedup => weighted_speedup(&SHARED, &ALONE).unwrap(),
                Metric::SumOfIpcs => sum_of_ipcs(&SHARED, &ALONE).unwrap(),
                Metric::MinFairness => min_fairness(&SHARED, &ALONE).unwrap(),
            };
            assert_eq!(via_dispatch, direct);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Metric::HarmonicWeightedSpeedup.label(), "Hsp");
        assert_eq!(Metric::WeightedSpeedup.to_string(), "Wsp");
        assert_eq!(Metric::MinFairness.optimal_scheme_name(), "Proportional");
        assert_eq!(Metric::SumOfIpcs.optimal_scheme_name(), "Priority_API");
    }

    /// Hsp ≤ Wsp always (harmonic mean ≤ arithmetic mean).
    #[test]
    fn hsp_never_exceeds_wsp() {
        let cases: [(&[f64], &[f64]); 3] = [
            (&SHARED, &ALONE),
            (&[0.1, 0.9, 0.5], &[1.0, 1.0, 1.0]),
            (&[2.0, 2.0], &[2.0, 2.0]),
        ];
        for (s, a) in cases {
            let h = harmonic_weighted_speedup(s, a).unwrap();
            let w = weighted_speedup(s, a).unwrap();
            assert!(h <= w + 1e-12, "Hsp {h} > Wsp {w}");
        }
    }
}
