//! Debug-mode model contracts.
//!
//! The analytical model rests on a small set of algebraic invariants that
//! every solver and scheme must preserve:
//!
//! * **Simplex** — a share vector `β` has entries in `[0, 1]` and sums to 1
//!   (the normalized form of Eq. 2, `Σ APC_shared,i = B`);
//! * **Caps** — no allocation exceeds an application's standalone rate,
//!   `APC_shared,i ≤ APC_alone,i` (Section III-D);
//! * **Conservation** — solvers hand out exactly `min(B, Σ caps)`;
//! * **Monotone tags** — the start-time-fair enforcement tags
//!   `S_i = S_{i-1} + 1/β_i` never decrease (Section IV-B).
//!
//! The [`invariant!`](crate::invariant), [`ensures_simplex!`](crate::ensures_simplex)
//! and [`ensures_capped!`](crate::ensures_capped) macros check these at the
//! producers' return sites. They compile to nothing unless
//! `debug_assertions` are on, so release binaries pay nothing; CI runs the
//! test suite once more with `RUSTFLAGS="-C debug-assertions"` in release
//! mode so the contracts are exercised under the optimized floating-point
//! code paths as well.
//!
//! This module also hosts the *approved* floating-point comparison helpers.
//! The `bwpart-audit` lint (`cargo xtask lint`, rule R2) rejects raw
//! `==`/`!=` against float literals and bare `partial_cmp` calls in library
//! code; ordering goes through [`f64::total_cmp`] and tolerance comparisons
//! go through [`approx_eq`]/[`approx_le`].

/// Whether contract checks are compiled in (true in debug builds and under
/// `RUSTFLAGS="-C debug-assertions"`).
pub const ENABLED: bool = cfg!(debug_assertions);

/// Absolute tolerance used by the contract checks. The model's APC values
/// sit around `1e-2`, so `1e-9` is ~7 decimal digits of slack — far looser
/// than f64 round-off on the short summations involved, far tighter than
/// any real violation.
pub const TOLERANCE: f64 = 1e-9;

/// Approved tolerance equality: `|a - b| ≤ tol`. NaN compares unequal to
/// everything, so a NaN operand always fails.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Approved tolerance ordering: `a ≤ b + tol`. A NaN operand fails.
#[inline]
#[must_use]
pub fn approx_le(a: f64, b: f64, tol: f64) -> bool {
    a <= b + tol
}

/// Assert a model invariant in debug builds; free in release builds.
///
/// ```should_panic
/// # use bwpart_core::invariant;
/// let shares = [0.5, 0.6];
/// invariant!(shares.iter().sum::<f64>() <= 1.0, "shares over-committed");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(,)?) => {
        $crate::invariant!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($arg:tt)+) => {
        if cfg!(debug_assertions) {
            // Bind first: float conditions stay readable and NaN-explicit
            // (a NaN comparison is simply false, so the invariant fires).
            let __holds: bool = $cond;
            if !__holds {
                // lint: allow(R1): contract macros surface violations by panicking in debug builds
                panic!("model invariant violated: {}", format_args!($($arg)+));
            }
        }
    };
}

/// Assert (debug builds only) that an expression is a valid share vector:
/// finite entries in `[0, 1]` summing to 1 within [`TOLERANCE`].
#[macro_export]
macro_rules! ensures_simplex {
    ($beta:expr $(,)?) => {{
        if cfg!(debug_assertions) {
            let __beta: &[f64] = &$beta;
            $crate::invariant!(
                __beta.iter().all(
                    |b| b.is_finite() && (0.0..=1.0 + $crate::contracts::TOLERANCE).contains(b)
                ),
                "share entry outside [0, 1]: {:?}",
                __beta
            );
            let __sum: f64 = __beta.iter().sum();
            $crate::invariant!(
                $crate::contracts::approx_eq(__sum, 1.0, $crate::contracts::TOLERANCE),
                "share vector sums to {} instead of 1 (Eq. 2): {:?}",
                __sum,
                __beta
            );
        }
    }};
}

/// Assert (debug builds only) that `alloc` is elementwise within `caps`
/// (the standalone-rate cap `APC_shared,i ≤ APC_alone,i`, Section III-D)
/// and non-negative.
#[macro_export]
macro_rules! ensures_capped {
    ($alloc:expr, $caps:expr $(,)?) => {{
        if cfg!(debug_assertions) {
            let __alloc: &[f64] = &$alloc;
            let __caps: &[f64] = &$caps;
            $crate::invariant!(
                __alloc.len() == __caps.len(),
                "allocation/cap length mismatch: {} vs {}",
                __alloc.len(),
                __caps.len()
            );
            for (__i, (__a, __c)) in __alloc.iter().zip(__caps).enumerate() {
                $crate::invariant!(
                    __a.is_finite() && *__a >= -$crate::contracts::TOLERANCE,
                    "allocation[{}] = {} is negative or non-finite",
                    __i,
                    __a
                );
                $crate::invariant!(
                    $crate::contracts::approx_le(*__a, *__c, $crate::contracts::TOLERANCE),
                    "allocation[{}] = {} exceeds standalone cap {} (Section III-D)",
                    __i,
                    __a,
                    __c
                );
            }
        }
    }};
}

#[cfg(test)]
// exact float equality is intentional: these check pass-through/zero paths
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(approx_le(1.0, 1.0, 0.0));
        assert!(approx_le(1.0 + 1e-12, 1.0, 1e-9));
        assert!(!approx_le(1.1, 1.0, 1e-9));
        assert!(!approx_le(f64::NAN, 1.0, 1e-9));
    }

    #[test]
    fn invariant_passes_silently() {
        invariant!(1 + 1 == 2);
        invariant!(true, "never printed {}", 42);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn invariant_fires_under_debug_assertions() {
        // ENABLED is const-true here (the cfg_attr above skips this test
        // otherwise), so assert the runtime flag via a binding instead.
        let enabled = ENABLED;
        assert!(enabled);
        let shares = [0.5, 0.6];
        let err = std::panic::catch_unwind(|| {
            invariant!(shares.iter().sum::<f64>() <= 1.0, "shares over-committed");
        })
        .unwrap_err();
        // Fully-literal messages may be const-folded to &str; runtime
        // formatting produces String. Accept either payload.
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap();
        assert!(msg.contains("model invariant violated"), "{msg}");
        assert!(msg.contains("shares over-committed"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn simplex_contract_rejects_bad_vectors() {
        ensures_simplex!([0.25, 0.25, 0.5]);
        assert!(std::panic::catch_unwind(|| ensures_simplex!([0.5, 0.6])).is_err());
        assert!(std::panic::catch_unwind(|| ensures_simplex!([1.5, -0.5])).is_err());
        assert!(std::panic::catch_unwind(|| ensures_simplex!([f64::NAN, 1.0])).is_err());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "contracts compile out in release")]
    fn capped_contract_rejects_overshoot() {
        ensures_capped!([0.1, 0.2], [0.1, 0.3]);
        assert!(std::panic::catch_unwind(|| ensures_capped!([0.4], [0.3])).is_err());
        assert!(std::panic::catch_unwind(|| ensures_capped!([-0.1], [0.3])).is_err());
        assert!(std::panic::catch_unwind(|| ensures_capped!([0.1], [0.1, 0.2])).is_err());
    }
}
