//! Benchmark profiles calibrated to the paper's Table III.
//!
//! Each [`BenchProfile`] parameterizes a [`SyntheticWorkload`] plus the core
//! properties (issue width, MLP) that real SPEC CPU2006 applications differ
//! in. The `table3_profiles` constants were calibrated by running each
//! generator standalone through the full simulator (see the `table3`
//! experiment) and adjusting until the measured `APKC_alone`/`APKI` land in
//! the paper's memory-intensity classes with the same ordering:
//! lbm ≫ libquantum ≈ milc > soplex > hmmer ≈ omnetpp > sphinx3 > leslie3d
//! > bzip2 > gromacs > h264ref > zeusmp > gobmk ≫ namd ≈ sjeng ≈ povray.

use serde::{Deserialize, Serialize};

use bwpart_cmp::{CoreConfig, Workload};

use crate::stream::SyntheticWorkload;

/// Parameters of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchProfile {
    /// SPEC benchmark name this profile mimics.
    pub name: &'static str,
    /// Mean non-memory instructions between accesses.
    pub gap: u32,
    /// Fraction of accesses hitting the streaming (L2-missing) region.
    pub stream_ratio: f64,
    /// Fraction of accesses that are stores.
    pub write_ratio: f64,
    /// Streaming region size in bytes.
    pub footprint: u64,
    /// Hot-set size in bytes (cache-resident accesses).
    pub hot_bytes: u64,
    /// Consecutive lines per streaming run (spatial locality).
    pub row_run: u32,
    /// Streaming accesses arrive in clusters of this many back-to-back
    /// misses (temporal clustering; enables MLP within the ROB).
    pub miss_burst: u32,
    /// Memory-level parallelism: the core's MSHR count for this app.
    pub mlp: usize,
    /// Intrinsic issue width (non-memory IPC ceiling).
    pub width: u32,
    /// Stream-seed salt so co-scheduled copies decorrelate.
    pub seed_salt: u64,
}

impl BenchProfile {
    /// Instantiate the workload generator with `seed`.
    pub fn spawn(&self, seed: u64) -> Box<dyn Workload> {
        Box::new(SyntheticWorkload::new(self, seed))
    }

    /// The core configuration matching this application's MLP and ILP.
    pub fn core_config(&self) -> CoreConfig {
        CoreConfig {
            width: self.width,
            rob_window: 192,
            mshrs: self.mlp,
            l2_hit_penalty: 2,
        }
    }

    /// Find a profile by benchmark name (Table III first, then the
    /// cache-study additions).
    pub fn by_name(name: &str) -> Option<BenchProfile> {
        table3_profiles()
            .into_iter()
            .chain(cache_profiles())
            .find(|p| p.name == name)
    }
}

const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// The 16 Table III benchmarks, ordered by the paper's `APKC_alone`
/// (descending).
pub fn table3_profiles() -> Vec<BenchProfile> {
    vec![
        BenchProfile {
            name: "lbm",
            gap: 11,
            stream_ratio: 0.46,
            write_ratio: 0.30,
            footprint: 256 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 8,
            row_run: 32,
            mlp: 16,
            width: 4,
            seed_salt: 0x01,
        },
        BenchProfile {
            name: "libquantum",
            gap: 23,
            stream_ratio: 0.80,
            write_ratio: 0.02,
            footprint: 128 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 1,
            row_run: 128,
            mlp: 2,
            width: 4,
            seed_salt: 0x02,
        },
        BenchProfile {
            name: "milc",
            gap: 21,
            stream_ratio: 0.62,
            write_ratio: 0.15,
            footprint: 192 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 2,
            row_run: 4,
            mlp: 2,
            width: 4,
            seed_salt: 0x03,
        },
        BenchProfile {
            name: "soplex",
            gap: 17,
            stream_ratio: 0.62,
            write_ratio: 0.10,
            footprint: 128 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 1,
            row_run: 8,
            mlp: 2,
            width: 4,
            seed_salt: 0x04,
        },
        BenchProfile {
            name: "hmmer",
            gap: 9,
            stream_ratio: 0.04,
            write_ratio: 0.15,
            footprint: 64 * MB,
            hot_bytes: 24 * KB,
            miss_burst: 4,
            row_run: 16,
            mlp: 4,
            width: 3,
            seed_salt: 0x05,
        },
        BenchProfile {
            name: "omnetpp",
            gap: 27,
            stream_ratio: 0.78,
            write_ratio: 0.05,
            footprint: 128 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 1,
            row_run: 1,
            mlp: 2,
            width: 2,
            seed_salt: 0x06,
        },
        BenchProfile {
            name: "sphinx3",
            gap: 30,
            stream_ratio: 0.38,
            write_ratio: 0.03,
            footprint: 128 * MB,
            hot_bytes: 16 * KB,
            miss_burst: 1,
            row_run: 8,
            mlp: 2,
            width: 1,
            seed_salt: 0x07,
        },
        BenchProfile {
            name: "leslie3d",
            gap: 15,
            stream_ratio: 0.11,
            write_ratio: 0.10,
            footprint: 96 * MB,
            hot_bytes: 20 * KB,
            miss_burst: 1,
            row_run: 16,
            mlp: 2,
            width: 2,
            seed_salt: 0x08,
        },
        BenchProfile {
            name: "bzip2",
            gap: 11,
            stream_ratio: 0.042,
            write_ratio: 0.12,
            footprint: 64 * MB,
            hot_bytes: 24 * KB,
            miss_burst: 1,
            row_run: 8,
            mlp: 2,
            width: 2,
            seed_salt: 0x09,
        },
        BenchProfile {
            name: "gromacs",
            gap: 13,
            stream_ratio: 0.075,
            write_ratio: 0.15,
            footprint: 32 * MB,
            hot_bytes: 24 * KB,
            miss_burst: 1,
            row_run: 8,
            mlp: 1,
            width: 2,
            seed_salt: 0x0A,
        },
        BenchProfile {
            name: "h264ref",
            gap: 9,
            stream_ratio: 0.02,
            write_ratio: 0.10,
            footprint: 32 * MB,
            hot_bytes: 20 * KB,
            miss_burst: 2,
            row_run: 16,
            mlp: 2,
            width: 3,
            seed_salt: 0x0B,
        },
        BenchProfile {
            name: "zeusmp",
            gap: 21,
            stream_ratio: 0.09,
            write_ratio: 0.10,
            footprint: 64 * MB,
            hot_bytes: 20 * KB,
            miss_burst: 1,
            row_run: 16,
            mlp: 1,
            width: 1,
            seed_salt: 0x0C,
        },
        BenchProfile {
            name: "gobmk",
            gap: 19,
            stream_ratio: 0.07,
            write_ratio: 0.10,
            footprint: 32 * MB,
            hot_bytes: 24 * KB,
            miss_burst: 1,
            row_run: 4,
            mlp: 1,
            width: 1,
            seed_salt: 0x0D,
        },
        BenchProfile {
            name: "namd",
            gap: 9,
            stream_ratio: 0.004,
            write_ratio: 0.10,
            footprint: 16 * MB,
            hot_bytes: 28 * KB,
            miss_burst: 1,
            row_run: 8,
            mlp: 1,
            width: 2,
            seed_salt: 0x0E,
        },
        BenchProfile {
            name: "sjeng",
            gap: 13,
            stream_ratio: 0.010,
            write_ratio: 0.15,
            footprint: 16 * MB,
            hot_bytes: 48 * KB,
            miss_burst: 1,
            row_run: 4,
            mlp: 1,
            width: 1,
            seed_salt: 0x0F,
        },
        BenchProfile {
            name: "povray",
            gap: 11,
            stream_ratio: 0.008,
            write_ratio: 0.10,
            footprint: 16 * MB,
            hot_bytes: 40 * KB,
            miss_burst: 1,
            row_run: 4,
            mlp: 1,
            width: 1,
            seed_salt: 0x10,
        },
    ]
}

/// Cache-study benchmarks beyond Table III: LLC-sensitive applications for
/// the coordinated multi-resource experiments. Not part of the Table III
/// calibration set.
pub fn cache_profiles() -> Vec<BenchProfile> {
    vec![
        // An LLC-fitting latency-sensitive app: its hot set is far bigger
        // than the 256 KB private L2 and than *half* a megabyte-class LLC
        // (so a fair way split thrashes it), but fits a coordinated
        // majority share — the canonical CAT beneficiary. Uniform-random
        // hot accesses (row_run 1) give a smooth, nearly linear MRC.
        BenchProfile {
            name: "llcfit",
            gap: 7,
            stream_ratio: 0.02,
            write_ratio: 0.10,
            footprint: 32 * MB,
            hot_bytes: 704 * KB,
            miss_burst: 1,
            row_run: 1,
            mlp: 2,
            width: 4,
            seed_salt: 0x11,
        },
    ]
}

/// The paper's measured Table III values `(name, APKC_alone, APKI)` for
/// reference and for paper-vs-measured reporting.
pub const PAPER_TABLE3: [(&str, f64, f64); 16] = [
    ("lbm", 9.38517, 53.1331),
    ("libquantum", 6.91693, 34.1188),
    ("milc", 6.87143, 42.2216),
    ("soplex", 6.05614, 37.8789),
    ("hmmer", 5.29083, 4.6008),
    ("omnetpp", 5.18984, 30.5707),
    ("sphinx3", 4.88898, 13.5657),
    ("leslie3d", 4.3855, 7.5847),
    ("bzip2", 3.93331, 5.6413),
    ("gromacs", 3.36604, 5.1976),
    ("h264ref", 3.04387, 2.2705),
    ("zeusmp", 2.42424, 4.521),
    ("gobmk", 1.91485, 4.0668),
    ("namd", 0.61975, 0.428),
    ("sjeng", 0.559802, 0.7906),
    ("povray", 0.553825, 0.6977),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_profiles_matching_paper_names() {
        let profiles = table3_profiles();
        assert_eq!(profiles.len(), 16);
        for (p, (name, _, _)) in profiles.iter().zip(PAPER_TABLE3) {
            assert_eq!(p.name, name, "ordering must match Table III");
        }
    }

    #[test]
    fn by_name_finds_every_profile() {
        for (name, _, _) in PAPER_TABLE3 {
            assert!(BenchProfile::by_name(name).is_some(), "{name} missing");
        }
        assert!(BenchProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn profiles_have_sane_parameters() {
        for p in table3_profiles() {
            assert!(p.stream_ratio >= 0.0 && p.stream_ratio <= 1.0, "{}", p.name);
            assert!(p.write_ratio >= 0.0 && p.write_ratio <= 1.0, "{}", p.name);
            assert!(p.footprint > 4 * MB, "{}: streams must exceed L2", p.name);
            assert!(p.hot_bytes >= 4 * KB, "{}", p.name);
            assert!(p.mlp >= 1 && p.width >= 1, "{}", p.name);
            // Streams must fit the 128 MB window below each app's region
            // boundary (STREAM_BASE + footprint < 512 MB region).
            assert!(p.footprint <= 256 * MB, "{}", p.name);
        }
    }

    #[test]
    fn seed_salts_are_unique() {
        let mut salts: Vec<u64> = table3_profiles()
            .iter()
            .chain(cache_profiles().iter())
            .map(|p| p.seed_salt)
            .collect();
        let n = salts.len();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), n, "seed salts must stay unique across sets");
    }

    #[test]
    fn cache_profiles_resolve_by_name_and_are_llc_sized() {
        let llcfit = BenchProfile::by_name("llcfit").expect("llcfit registered");
        // The whole point: bigger than the private L2, smaller than an LLC.
        assert!(llcfit.hot_bytes > 256 * KB, "must overflow the 256 KB L2");
        assert!(llcfit.hot_bytes < MB, "must fit a megabyte-class LLC");
        assert!(llcfit.stream_ratio < 0.1, "hot-set dominated by design");
        // Cache additions must not leak into the Table III set.
        assert!(!table3_profiles().iter().any(|p| p.name == "llcfit"));
    }

    #[test]
    fn core_config_reflects_profile() {
        let lbm = BenchProfile::by_name("lbm").unwrap();
        let cc = lbm.core_config();
        assert_eq!(cc.mshrs, lbm.mlp);
        assert!(cc.mshrs >= 8, "lbm is the high-MLP streamer");
        assert_eq!(cc.width, 4);
        assert_eq!(cc.rob_window, 192);
    }

    #[test]
    fn nominal_read_apki_is_in_the_right_ballpark() {
        // Analytic first-order check: stream accesses become L2 misses, so
        // read APKI ≈ 1000·s/(gap+1). This keeps gross calibration errors
        // out before the simulator-level calibration test runs.
        for p in table3_profiles() {
            let (_, _, paper_apki) = PAPER_TABLE3
                .iter()
                .find(|(n, _, _)| *n == p.name)
                .copied()
                .unwrap();
            let nominal = 1000.0 * p.stream_ratio / (p.gap as f64 + 1.0) * (1.0 + p.write_ratio);
            assert!(
                nominal > paper_apki * 0.4 && nominal < paper_apki * 2.5,
                "{}: nominal APKI {nominal:.1} vs paper {paper_apki}",
                p.name
            );
        }
    }
}
