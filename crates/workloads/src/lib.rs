#![warn(missing_docs)]

//! # bwpart-workloads — synthetic SPEC CPU2006-like benchmarks
//!
//! The paper evaluates on SPEC CPU2006 reference runs (Simpoint slices).
//! Those binaries and traces are not reproducible here, so this crate
//! substitutes *synthetic statistical twins*: deterministic address-stream
//! generators whose parameters (memory intensity, hot-set size, streaming
//! footprint, spatial locality, memory-level parallelism, intrinsic ILP)
//! are calibrated so that the standalone `APKC`/`APKI` profile of each
//! generator, measured through the full cache + DRAM simulator, lands in
//! the same memory-intensity class — and preserves the intensity *ordering*
//! — of the paper's Table III.
//!
//! That is exactly the property the analytical model consumes: every result
//! in the paper is a function of each application's `(API, APC_alone)`
//! pair, not of its instruction semantics.
//!
//! * [`profile`] — [`BenchProfile`]: the generator parameters plus the 16
//!   calibrated benchmarks of Table III.
//! * [`stream`] — the [`SyntheticWorkload`] generator.
//! * [`mixes`] — Table IV's 14 workload mixes, the Figure 1 motivation mix,
//!   the Figure 3 QoS mixes, and the Figure 4 scaled copies.

//! * [`trace`] — record/replay of access streams ([`Trace`]).
//! * [`phased`] — behaviour-changing workloads ([`PhasedWorkload`]) for
//!   the adaptive-repartitioning experiments.
//! * [`mrcprobe`] — miss-ratio-curve sampling for the coordinated
//!   multi-resource model ([`MrcSampler`]): standalone probe runs at a
//!   grid of LLC way counts, fitted into `CacheAwareProfile`s.

pub mod mixes;
pub mod mrcprobe;
pub mod phased;
pub mod profile;
pub mod stream;
pub mod trace;

pub use mixes::Mix;
pub use mrcprobe::{MrcSampler, ProbePoint};
pub use phased::PhasedWorkload;
pub use profile::{cache_profiles, table3_profiles, BenchProfile};
pub use stream::SyntheticWorkload;
pub use trace::{Trace, TraceWorkload};
