//! The synthetic address-stream generator.
//!
//! Each access is drawn from one of two regions:
//!
//! * the **streaming region** (`footprint` bytes, far larger than L2): runs
//!   of `row_run` consecutive lines starting at pseudo-random positions —
//!   these become L2 misses and generate the off-chip traffic;
//! * the **hot set** (`hot_bytes`): uniformly revisited lines that stay
//!   cache-resident — these model the register/L1/L2-served majority of a
//!   real program's accesses.
//!
//! Streaming accesses arrive in **clusters** of `miss_burst` back-to-back
//! misses (real applications' misses cluster spatially and temporally),
//! which is what lets a low-`API` application like `hmmer` express
//! memory-level parallelism inside a finite reorder buffer. The cluster
//! start probability is derated so the *overall* stream fraction still
//! equals `stream_ratio`.
//!
//! Non-memory instruction gaps are drawn uniformly from
//! `[gap/2, 3·gap/2]` so the mean `API` is exact while the stream retains
//! burstiness. Everything is driven by a splitmix-seeded `SmallRng`, so a
//! `(profile, seed)` pair defines the stream bit-for-bit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bwpart_cmp::{Access, Workload};

use crate::profile::BenchProfile;

/// A deterministic synthetic workload built from a [`BenchProfile`].
pub struct SyntheticWorkload {
    name: String,
    rng: SmallRng,
    gap: u32,
    stream_permille: u32,
    write_permille: u32,
    footprint_lines: u64,
    hot_lines: u64,
    row_run: u32,
    /// Remaining lines in the current streaming run.
    run_left: u32,
    /// Next line of the current streaming run.
    run_next: u64,
    /// Cluster size for streaming accesses.
    miss_burst: u32,
    /// Remaining forced-stream accesses in the current cluster.
    burst_left: u32,
}

impl SyntheticWorkload {
    /// Instantiate the generator for `profile` with an explicit `seed`.
    pub fn new(profile: &BenchProfile, seed: u64) -> Self {
        let footprint_lines = (profile.footprint / 64).max(1);
        let hot_lines = (profile.hot_bytes / 64).max(1);
        // Solve the cluster-start probability q from the target overall
        // stream fraction s with cluster size b:
        // s = q·b / (q·b + (1 − q))  ⇒  q = s / (b·(1 − s) + s).
        let b = profile.miss_burst.max(1) as f64;
        let s_frac = profile.stream_ratio.clamp(0.0, 1.0);
        let q = if s_frac >= 1.0 {
            1.0
        } else {
            s_frac / (b * (1.0 - s_frac) + s_frac)
        };
        SyntheticWorkload {
            name: profile.name.to_string(),
            rng: SmallRng::seed_from_u64(seed ^ profile.seed_salt),
            gap: profile.gap,
            stream_permille: (q * 1000.0).round() as u32,
            write_permille: (profile.write_ratio * 1000.0).round() as u32,
            footprint_lines,
            hot_lines,
            row_run: profile.row_run.max(1),
            run_left: 0,
            run_next: 0,
            miss_burst: profile.miss_burst.max(1),
            burst_left: 0,
        }
    }

    fn sample_gap(&mut self) -> u32 {
        if self.gap == 0 {
            return 0;
        }
        let lo = self.gap / 2;
        let hi = self.gap + self.gap / 2;
        self.rng.gen_range(lo..=hi)
    }

    fn stream_line(&mut self) -> u64 {
        if self.run_left == 0 {
            self.run_left = self.row_run;
            self.run_next = self.rng.gen_range(0..self.footprint_lines);
        }
        let line = self.run_next;
        self.run_next = (self.run_next + 1) % self.footprint_lines;
        self.run_left -= 1;
        line
    }
}

/// Offset separating the hot set from the streaming region inside the
/// application's private physical region (the hot set occupies the bottom).
const STREAM_BASE: u64 = 1 << 27; // 128 MB into the 512 MB region

impl Workload for SyntheticWorkload {
    fn next_access(&mut self) -> Access {
        let is_write = self.rng.gen_range(0..1000) < self.write_permille;
        let (is_stream, gap) = if self.burst_left > 0 {
            // Inside a cluster: back-to-back misses with tiny gaps.
            self.burst_left -= 1;
            (true, self.rng.gen_range(0..4))
        } else if self.rng.gen_range(0..1000) < self.stream_permille {
            self.burst_left = self.miss_burst - 1;
            (true, self.sample_gap())
        } else {
            (false, self.sample_gap())
        };
        let addr = if is_stream {
            STREAM_BASE + self.stream_line() * 64
        } else {
            self.rng.gen_range(0..self.hot_lines) * 64
        };
        Access {
            gap,
            addr,
            is_write,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchProfile;

    fn profile() -> BenchProfile {
        BenchProfile {
            name: "test",
            gap: 20,
            stream_ratio: 0.5,
            write_ratio: 0.25,
            footprint: 64 << 20,
            hot_bytes: 16 * 1024,
            row_run: 8,
            miss_burst: 1,
            mlp: 4,
            width: 4,
            seed_salt: 0,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = profile();
        let mut a = SyntheticWorkload::new(&p, 7);
        let mut b = SyntheticWorkload::new(&p, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
        let mut c = SyntheticWorkload::new(&p, 8);
        let same = (0..1000).all(|_| a.next_access() == c.next_access());
        assert!(!same, "different seeds must differ");
    }

    #[test]
    fn mean_gap_matches_profile() {
        let p = profile();
        let mut w = SyntheticWorkload::new(&p, 1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| w.next_access().gap as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean gap {mean}");
    }

    #[test]
    fn stream_and_write_fractions_match() {
        let p = profile();
        let mut w = SyntheticWorkload::new(&p, 2);
        let n = 20_000;
        let mut streams = 0;
        let mut writes = 0;
        for _ in 0..n {
            let a = w.next_access();
            if a.addr >= STREAM_BASE {
                streams += 1;
            }
            if a.is_write {
                writes += 1;
            }
        }
        assert!((streams as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((writes as f64 / n as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    fn hot_accesses_stay_in_hot_set() {
        let p = profile();
        let mut w = SyntheticWorkload::new(&p, 3);
        for _ in 0..10_000 {
            let a = w.next_access();
            if a.addr < STREAM_BASE {
                assert!(a.addr < 16 * 1024);
            } else {
                assert!(a.addr < STREAM_BASE + (64 << 20));
            }
        }
    }

    #[test]
    fn streaming_runs_are_sequential() {
        let mut p = profile();
        p.stream_ratio = 1.0;
        p.row_run = 16;
        let mut w = SyntheticWorkload::new(&p, 4);
        let mut sequential = 0;
        let mut prev = w.next_access().addr;
        let n = 10_000;
        for _ in 0..n {
            let a = w.next_access().addr;
            if a == prev + 64 {
                sequential += 1;
            }
            prev = a;
        }
        // With runs of 16, 15/16 of transitions are sequential.
        let frac = sequential as f64 / n as f64;
        assert!(frac > 0.9, "sequential fraction {frac}");
    }

    #[test]
    fn zero_gap_profile_yields_zero_gaps() {
        let mut p = profile();
        p.gap = 0;
        let mut w = SyntheticWorkload::new(&p, 5);
        for _ in 0..100 {
            assert_eq!(w.next_access().gap, 0);
        }
    }
}
