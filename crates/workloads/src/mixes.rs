//! Workload mixes: Table IV's 7 homogeneous + 7 heterogeneous four-app
//! mixes, the Figure 1 motivation mix, the Figure 3 QoS mixes, and the
//! Figure 4 scaled copies.

use serde::{Deserialize, Serialize};

use bwpart_cmp::{CoreConfig, Workload};

use crate::profile::BenchProfile;

/// One co-scheduled workload mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mix {
    /// Mix identifier (the paper's `homo-N` / `hetero-N` names).
    pub name: String,
    /// Benchmarks, one per core.
    pub benches: Vec<String>,
}

impl Mix {
    fn new(name: &str, benches: &[&str]) -> Self {
        Mix {
            name: name.into(),
            benches: benches.iter().map(|b| b.to_string()).collect(),
        }
    }

    /// Number of applications (before scaling).
    pub fn len(&self) -> usize {
        self.benches.len()
    }

    /// True when the mix has no applications.
    pub fn is_empty(&self) -> bool {
        self.benches.is_empty()
    }

    /// The profiles of this mix's benchmarks.
    pub fn profiles(&self) -> Vec<BenchProfile> {
        self.benches
            .iter()
            // lint: allow(R1): mixes are built from the compile-time benchmark table
            .map(|n| BenchProfile::by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
            .collect()
    }

    /// Instantiate workload generators and matching core configs for
    /// `copies` copies of the mix (Figure 4 scales 1/2/4 copies with
    /// bandwidth). Copies are seeded distinctly so they decorrelate.
    pub fn build(&self, copies: usize, seed: u64) -> (Vec<Box<dyn Workload>>, Vec<CoreConfig>) {
        assert!(copies >= 1);
        let profiles = self.profiles();
        let mut workloads = Vec::with_capacity(profiles.len() * copies);
        let mut cfgs = Vec::with_capacity(profiles.len() * copies);
        for copy in 0..copies {
            for p in &profiles {
                workloads.push(p.spawn(seed ^ ((copy as u64 + 1) << 32)));
                cfgs.push(p.core_config());
            }
        }
        (workloads, cfgs)
    }
}

/// Table IV's homogeneous mixes (heterogeneity RSD < 30 in the paper).
pub fn homo_mixes() -> Vec<Mix> {
    vec![
        Mix::new("homo-1", &["libquantum", "milc", "soplex", "hmmer"]),
        Mix::new("homo-2", &["libquantum", "milc", "soplex", "omnetpp"]),
        Mix::new("homo-3", &["hmmer", "gromacs", "sphinx3", "leslie3d"]),
        Mix::new("homo-4", &["hmmer", "gromacs", "bzip2", "leslie3d"]),
        Mix::new("homo-5", &["h264ref", "zeusmp", "bzip2", "gromacs"]),
        Mix::new("homo-6", &["h264ref", "zeusmp", "gobmk", "gromacs"]),
        Mix::new("homo-7", &["h264ref", "zeusmp", "gobmk", "bzip2"]),
    ]
}

/// Table IV's heterogeneous mixes (heterogeneity RSD > 30 in the paper).
pub fn hetero_mixes() -> Vec<Mix> {
    vec![
        Mix::new("hetero-1", &["milc", "soplex", "zeusmp", "bzip2"]),
        Mix::new("hetero-2", &["soplex", "hmmer", "gromacs", "gobmk"]),
        Mix::new("hetero-3", &["libquantum", "soplex", "zeusmp", "h264ref"]),
        Mix::new("hetero-4", &["lbm", "soplex", "h264ref", "bzip2"]),
        Mix::new("hetero-5", &["libquantum", "milc", "gromacs", "gobmk"]),
        Mix::new("hetero-6", &["lbm", "libquantum", "gromacs", "zeusmp"]),
        Mix::new("hetero-7", &["lbm", "milc", "gobmk", "zeusmp"]),
    ]
}

/// All 14 Table IV mixes, homogeneous first.
pub fn all_mixes() -> Vec<Mix> {
    let mut v = homo_mixes();
    v.extend(hetero_mixes());
    v
}

/// The Figure 1 motivation mix (Section II-B).
pub fn fig1_mix() -> Mix {
    Mix::new("fig1", &["libquantum", "milc", "gromacs", "gobmk"])
}

/// The Figure 3 QoS mixes; in both, `hmmer` (index 3) is the QoS-guaranteed
/// application with a 0.6 IPC target.
pub fn qos_mixes() -> Vec<Mix> {
    vec![
        Mix::new("mix-1", &["lbm", "libquantum", "omnetpp", "hmmer"]),
        Mix::new("mix-2", &["h264ref", "zeusmp", "leslie3d", "hmmer"]),
    ]
}

/// Cache-hostile mixes for the coordinated multi-resource experiments: an
/// LLC-fitting latency-sensitive application sharing the chip with
/// streaming bandwidth hogs that pollute an unpartitioned LLC without
/// benefiting from it. Bandwidth-only partitioning cannot protect `llcfit`
/// here; coordinated way + bandwidth allocation can.
pub fn cache_mixes() -> Vec<Mix> {
    vec![
        Mix::new("cache-1", &["llcfit", "lbm"]),
        Mix::new("cache-2", &["llcfit", "lbm", "libquantum", "gobmk"]),
    ]
}

/// The paper's Table IV heterogeneity values `(mix, RSD)` for reference.
pub const PAPER_TABLE4_RSD: [(&str, f64); 14] = [
    ("homo-1", 12.27),
    ("homo-2", 13.02),
    ("homo-3", 18.55),
    ("homo-4", 19.16),
    ("homo-5", 19.74),
    ("homo-6", 24.06),
    ("homo-7", 29.71),
    ("hetero-1", 41.93),
    ("hetero-2", 45.10),
    ("hetero-3", 47.92),
    ("hetero-4", 50.31),
    ("hetero-5", 52.99),
    ("hetero-6", 58.31),
    ("hetero-7", 69.84),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_mixes_of_four() {
        let mixes = all_mixes();
        assert_eq!(mixes.len(), 14);
        for m in &mixes {
            assert_eq!(m.len(), 4, "{}", m.name);
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn every_mix_benchmark_has_a_profile() {
        for m in all_mixes()
            .into_iter()
            .chain([fig1_mix()])
            .chain(qos_mixes())
            .chain(cache_mixes())
        {
            let profiles = m.profiles();
            assert_eq!(profiles.len(), m.len());
        }
    }

    #[test]
    fn cache_mixes_pair_the_llc_app_with_streamers() {
        let mixes = cache_mixes();
        assert_eq!(mixes.len(), 2);
        for m in &mixes {
            assert_eq!(m.benches[0], "llcfit", "{}", m.name);
            assert!(m.benches.contains(&"lbm".to_string()), "{}", m.name);
            // The streamer's footprint must dwarf any LLC; the protected
            // app's hot set must not.
            let ps = m.profiles();
            assert!(ps[0].hot_bytes < (1 << 20));
            assert!(ps[1].footprint > (64 << 20));
        }
    }

    #[test]
    fn mix_names_match_paper_table4() {
        let mixes = all_mixes();
        for (m, (name, _)) in mixes.iter().zip(PAPER_TABLE4_RSD) {
            assert_eq!(m.name, name);
        }
    }

    #[test]
    fn build_scales_copies() {
        let m = fig1_mix();
        let (w1, c1) = m.build(1, 42);
        assert_eq!(w1.len(), 4);
        assert_eq!(c1.len(), 4);
        let (w4, c4) = m.build(4, 42);
        assert_eq!(w4.len(), 16);
        assert_eq!(c4.len(), 16);
    }

    #[test]
    fn copies_are_decorrelated() {
        let m = fig1_mix();
        let (mut w, _) = m.build(2, 7);
        // Same benchmark, different copy: streams must differ.
        let mut a = w.remove(0); // libquantum copy 0
        let mut b = w.remove(3); // libquantum copy 1
        assert_eq!(a.name(), b.name());
        let identical = (0..256).all(|_| a.next_access() == b.next_access());
        assert!(!identical);
    }

    #[test]
    fn qos_mixes_put_hmmer_last() {
        for m in qos_mixes() {
            assert_eq!(m.benches.last().unwrap(), "hmmer");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let m = Mix::new("bad", &["not-a-bench"]);
        let _ = m.profiles();
    }
}
