//! Phase-changing workloads.
//!
//! Section IV-C of the paper: "`APC_alone,i` is profiled periodically
//! (e.g., every 10 million cycles). When an application's behavior
//! changes, its `APC_alone,i` will be updated correspondingly \[and\] our
//! partitioning schemes will change an application's bandwidth share."
//!
//! [`PhasedWorkload`] makes that scenario constructible: it chains several
//! generator phases, switching after a fixed number of *accesses* (a
//! program-progress notion, so phase boundaries land at the same point in
//! the instruction stream regardless of how fast the memory system lets
//! the core run). The `adaptation` experiment uses it to show epoch
//! repartitioning tracking a behaviour change while static shares go
//! stale.

use bwpart_cmp::{Access, Workload};

/// One phase: a workload plus how many accesses it lasts (`None` = final,
/// runs forever).
pub struct Phase {
    /// The generator active during this phase.
    pub workload: Box<dyn Workload>,
    /// Accesses before advancing to the next phase (`None` for the last).
    pub accesses: Option<u64>,
}

/// A workload that switches behaviour at access-count boundaries.
pub struct PhasedWorkload {
    name: String,
    phases: Vec<Phase>,
    current: usize,
    left_in_phase: Option<u64>,
}

impl PhasedWorkload {
    /// Chain `phases` (at least one; every phase except possibly the last
    /// should have a length, and the final phase's length is ignored —
    /// it runs forever).
    ///
    /// # Panics
    /// Panics if `phases` is empty or a non-final phase has no length.
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "at least one phase required");
        for (i, p) in phases.iter().enumerate() {
            if i + 1 < phases.len() {
                assert!(
                    p.accesses.is_some(),
                    "non-final phase {i} must have a length"
                );
            }
        }
        let left = phases[0].accesses;
        PhasedWorkload {
            name: name.into(),
            phases,
            current: 0,
            left_in_phase: left,
        }
    }

    /// Convenience: two-phase workload switching after `switch_after`
    /// accesses.
    pub fn two_phase(
        name: impl Into<String>,
        first: Box<dyn Workload>,
        switch_after: u64,
        second: Box<dyn Workload>,
    ) -> Self {
        Self::new(
            name,
            vec![
                Phase {
                    workload: first,
                    accesses: Some(switch_after),
                },
                Phase {
                    workload: second,
                    accesses: None,
                },
            ],
        )
    }

    /// Index of the phase currently generating accesses.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Workload for PhasedWorkload {
    fn next_access(&mut self) -> Access {
        if let Some(0) = self.left_in_phase {
            if self.current + 1 < self.phases.len() {
                self.current += 1;
                self.left_in_phase = self.phases[self.current].accesses;
            } else {
                self.left_in_phase = None;
            }
        }
        if let Some(n) = &mut self.left_in_phase {
            *n -= 1;
        }
        self.phases[self.current].workload.next_access()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchProfile;

    #[test]
    fn switches_at_access_boundary() {
        let light = BenchProfile::by_name("povray").unwrap();
        let heavy = BenchProfile::by_name("libquantum").unwrap();
        let mut w = PhasedWorkload::two_phase("morph", light.spawn(1), 100, heavy.spawn(1));
        assert_eq!(w.current_phase(), 0);
        let first: Vec<Access> = (0..100).map(|_| w.next_access()).collect();
        assert_eq!(w.current_phase(), 0);
        let _ = w.next_access();
        assert_eq!(w.current_phase(), 1);

        // Phase 1 accesses come from the light generator verbatim.
        let mut fresh = light.spawn(1);
        for a in &first {
            assert_eq!(*a, fresh.next_access());
        }
    }

    #[test]
    fn final_phase_runs_forever() {
        let a = BenchProfile::by_name("namd").unwrap();
        let b = BenchProfile::by_name("lbm").unwrap();
        let mut w = PhasedWorkload::two_phase("x", a.spawn(2), 10, b.spawn(2));
        for _ in 0..10_000 {
            let _ = w.next_access();
        }
        assert_eq!(w.current_phase(), 1);
    }

    #[test]
    fn three_phases_advance_in_order() {
        let p = BenchProfile::by_name("milc").unwrap();
        let mut w = PhasedWorkload::new(
            "tri",
            vec![
                Phase {
                    workload: p.spawn(1),
                    accesses: Some(5),
                },
                Phase {
                    workload: p.spawn(2),
                    accesses: Some(5),
                },
                Phase {
                    workload: p.spawn(3),
                    accesses: None,
                },
            ],
        );
        let mut seen = Vec::new();
        for _ in 0..12 {
            let _ = w.next_access();
            seen.push(w.current_phase());
        }
        assert_eq!(seen, vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedWorkload::new("e", vec![]);
    }

    #[test]
    #[should_panic(expected = "must have a length")]
    fn unbounded_middle_phase_rejected() {
        let p = BenchProfile::by_name("milc").unwrap();
        let _ = PhasedWorkload::new(
            "bad",
            vec![
                Phase {
                    workload: p.spawn(1),
                    accesses: None,
                },
                Phase {
                    workload: p.spawn(2),
                    accesses: None,
                },
            ],
        );
    }
}
