//! Miss-ratio-curve sampling: short standalone profiling runs at a grid of
//! LLC way counts.
//!
//! The coordinated analytical model (`bwpart_core::mrc`) needs, per
//! application, how its DDR-facing demand depends on the LLC ways it holds:
//! a fitted [`MissRatioCurve`] plus the `(api_llc, cpi_base, mem_penalty)`
//! triple of [`CacheAwareProfile`]. This module *measures* all four from
//! the simulator, the software analogue of hardware CAT/CMT probing:
//!
//! 1. For each way count `w` in the grid, run the application **standalone**
//!    against an LLC restricted to `w` ways (same set count as the target
//!    LLC, so a `w`-way probe equals a `w`-way partition share), and record
//!    the LLC miss ratio `m(w)`, the LLC-incoming accesses per instruction,
//!    and the cycles per instruction.
//! 2. Fit the miss-ratio samples with the monotone (PAV-isotonized)
//!    [`MissRatioCurve::fit`].
//! 3. Recover `cpi_base` and `mem_penalty` by least-squares on the model
//!    `CPI(w) = cpi_base + api_llc · m(w) · mem_penalty` over the grid —
//!    the slope against the measured DDR accesses per instruction is the
//!    effective (MLP-discounted) per-access stall, the intercept the CPI
//!    with a fully hitting LLC.

use bwpart_cmp::{CacheConfig, CmpConfig, CmpSystem, LlcConfig};
use bwpart_core::{CacheAwareProfile, MissRatioCurve, ModelError};
use bwpart_mc::Policy;

use crate::mixes::Mix;
use crate::profile::BenchProfile;

/// One grid point's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePoint {
    /// LLC ways the application ran with.
    pub ways: usize,
    /// Measured LLC miss ratio.
    pub miss_ratio: f64,
    /// Measured LLC-incoming accesses per instruction.
    pub api_llc: f64,
    /// Measured cycles per instruction.
    pub cpi: f64,
}

/// The sampler: target LLC geometry, ways grid, and phase budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct MrcSampler {
    /// The shared LLC whose way partitions are being modelled. Probes use
    /// its set count and line size, scaling capacity with the way count.
    pub llc: LlcConfig,
    /// Way counts to sample (deduplicated, clamped to `1..=llc ways`).
    pub ways_grid: Vec<usize>,
    /// Warm-up cycles per probe (no statistics).
    pub warmup: u64,
    /// Measurement cycles per probe.
    pub measure: u64,
    /// Workload seed (probes are deterministic per `(bench, seed)`).
    pub seed: u64,
}

impl MrcSampler {
    /// A sampler for `llc` with a geometric grid `1, 2, 4, …` up to the
    /// full associativity (always including the endpoints).
    pub fn new(llc: LlcConfig) -> Self {
        let total = llc.cache.ways;
        let mut grid = vec![];
        let mut w = 1usize;
        while w < total {
            grid.push(w);
            w *= 2;
        }
        grid.push(total);
        // Warm-up must cover filling a megabyte-class LLC through a
        // DDR2-class memory system: thousands of cold fills at ~10^-2
        // accesses per cycle need cycles in the millions.
        MrcSampler {
            llc,
            ways_grid: grid,
            warmup: 3_000_000,
            measure: 400_000,
            seed: 0xC0DE,
        }
    }

    /// The probe LLC: `ways` ways at the target's set count and line size.
    fn probe_llc(&self, ways: usize) -> LlcConfig {
        let sets = self.llc.cache.sets();
        LlcConfig {
            cache: CacheConfig {
                capacity: sets * ways * self.llc.cache.line_bytes,
                ways,
                line_bytes: self.llc.cache.line_bytes,
            },
            hit_penalty: self.llc.hit_penalty,
        }
    }

    /// Run one standalone probe of `bench` at `ways` ways.
    pub fn probe_ways(&self, bench: &BenchProfile, ways: usize) -> ProbePoint {
        let cfg = CmpConfig {
            llc: Some(self.probe_llc(ways)),
            ..CmpConfig::default()
        };
        let mut sys = CmpSystem::new(
            &cfg,
            vec![bench.spawn(self.seed)],
            vec![bench.core_config()],
            Policy::fcfs(1),
        );
        sys.run(self.warmup);
        sys.reset_phase_counters();
        sys.run(self.measure);
        let instr = sys.core(0).counters.retired.max(1);
        // lint: allow(R1): the system was just built with llc = Some
        let c = sys.llc().expect("probe system has an LLC").counters(0);
        ProbePoint {
            ways,
            miss_ratio: c.miss_ratio(),
            api_llc: c.accesses() as f64 / instr as f64,
            cpi: self.measure as f64 / instr as f64,
        }
    }

    /// Sample and fit the cache-aware profile of one benchmark.
    pub fn sample_bench(&self, bench: &BenchProfile) -> Result<CacheAwareProfile, ModelError> {
        let total = self.llc.cache.ways;
        let mut grid: Vec<usize> = self.ways_grid.iter().map(|&w| w.clamp(1, total)).collect();
        grid.sort_unstable();
        grid.dedup();
        if grid.is_empty() {
            return Err(ModelError::NoApplications);
        }
        let points: Vec<ProbePoint> = grid.iter().map(|&w| self.probe_ways(bench, w)).collect();
        fit_profile(bench.name, &points)
    }

    /// Sample every benchmark of a mix.
    pub fn sample_mix(&self, mix: &Mix) -> Result<Vec<CacheAwareProfile>, ModelError> {
        mix.profiles()
            .iter()
            .map(|b| self.sample_bench(b))
            .collect()
    }
}

/// Fit a [`CacheAwareProfile`] from raw probe points: PAV-isotonized MRC,
/// way-averaged `api_llc`, and least-squares `(cpi_base, mem_penalty)` on
/// `CPI = cpi_base + x · mem_penalty` with `x = api_llc · m(w)` (the
/// measured DDR accesses per instruction at each grid point).
pub fn fit_profile(
    name: impl Into<String>,
    points: &[ProbePoint],
) -> Result<CacheAwareProfile, ModelError> {
    if points.is_empty() {
        return Err(ModelError::NoApplications);
    }
    let mrc_samples: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.ways as f64, p.miss_ratio.clamp(0.0, 1.0)))
        .collect();
    let mrc = MissRatioCurve::fit(&mrc_samples)?;
    // `api_llc` (L2 misses per instruction) is invariant under LLC way
    // partitioning — the partition only filters *below* L2 — so the grid
    // samples are repeated noisy measurements of one number.
    let api_llc = (points.iter().map(|p| p.api_llc).sum::<f64>() / points.len() as f64).max(1e-9);
    // Least squares CPI against measured DDR accesses per instruction.
    let xs: Vec<f64> = points.iter().map(|p| p.api_llc * p.miss_ratio).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.cpi).collect();
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx = xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
    let sxy = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>();
    // A flat MRC (streaming app) leaves no slope to identify: fall back to
    // a zero-penalty profile whose CPI is the observed mean.
    let mem_penalty = if sxx > 1e-18 {
        (sxy / sxx).max(0.0)
    } else {
        0.0
    };
    let cpi_base = (my - mem_penalty * mx).max(1e-6);
    CacheAwareProfile::new(name, api_llc, cpi_base, mem_penalty, mrc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::cache_profiles;

    fn test_llc() -> LlcConfig {
        LlcConfig {
            cache: CacheConfig {
                capacity: 1024 * 1024,
                ways: 16,
                line_bytes: 64,
            },
            hit_penalty: 12,
        }
    }

    #[test]
    fn default_grid_spans_the_associativity() {
        let s = MrcSampler::new(test_llc());
        assert_eq!(s.ways_grid, vec![1, 2, 4, 8, 16]);
        assert_eq!(s.probe_llc(4).cache.sets(), s.llc.cache.sets());
        assert_eq!(s.probe_llc(4).cache.ways, 4);
    }

    #[test]
    fn fit_profile_recovers_a_planted_model() {
        // Synthesize points from a known model and check the fit inverts it.
        let (api, base, pen) = (0.02, 1.4, 250.0);
        let m = |w: f64| (1.0 - w / 20.0).clamp(0.05, 1.0);
        let points: Vec<ProbePoint> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&w| ProbePoint {
                ways: w,
                miss_ratio: m(w as f64),
                api_llc: api,
                cpi: base + api * m(w as f64) * pen,
            })
            .collect();
        let p = fit_profile("planted", &points).unwrap();
        assert!((p.api_llc - api).abs() < 1e-12);
        assert!((p.cpi_base - base).abs() < 1e-6, "base {}", p.cpi_base);
        assert!((p.mem_penalty - pen).abs() < 1e-3, "pen {}", p.mem_penalty);
        assert!((p.miss_ratio(4.0) - m(4.0)).abs() < 1e-12);
    }

    #[test]
    fn fit_profile_handles_flat_curves() {
        let points: Vec<ProbePoint> = [1usize, 16]
            .iter()
            .map(|&w| ProbePoint {
                ways: w,
                miss_ratio: 0.98,
                api_llc: 0.05,
                cpi: 6.0,
            })
            .collect();
        let p = fit_profile("flat", &points).unwrap();
        assert!(p.mem_penalty.abs() < 1e-12);
        assert!((p.cpi_base - 6.0).abs() < 1e-12);
        assert!(fit_profile("empty", &[]).is_err());
    }

    #[test]
    fn sampled_llcfit_mrc_is_steep_and_monotone() {
        // The LLC-fitting benchmark's hot set overflows 1-2 ways of the
        // 1 MB probe LLC but fits comfortably at the full associativity.
        let llcfit = cache_profiles()
            .into_iter()
            .find(|p| p.name == "llcfit")
            .unwrap();
        let mut s = MrcSampler::new(test_llc());
        s.ways_grid = vec![1, 8, 16];
        let p = s.sample_bench(&llcfit).unwrap();
        let few = p.miss_ratio(1.0);
        let many = p.miss_ratio(16.0);
        assert!(few > 0.5, "1 way must thrash the hot set: {few}");
        assert!(many < 0.25, "16 ways must absorb the hot set: {many}");
        assert!(
            p.apc_alone_at(1.0) > p.apc_alone_at(16.0),
            "fewer ways must mean more DDR traffic"
        );
        assert!(p.mem_penalty > 0.0, "llcfit is latency-sensitive");
        // Standalone IPC must *rise* with ways (CPI falls).
        assert!(p.cpi_alone_at(16.0) < p.cpi_alone_at(1.0) * 0.8);
    }

    #[test]
    fn sampled_streamer_mrc_is_flat() {
        // lbm streams far beyond any LLC: its miss ratio barely moves.
        let lbm = BenchProfile::by_name("lbm").unwrap();
        let mut s = MrcSampler::new(test_llc());
        s.ways_grid = vec![1, 16];
        s.warmup = 200_000;
        s.measure = 200_000;
        let p = s.sample_bench(&lbm).unwrap();
        assert!(
            p.miss_ratio(1.0) - p.miss_ratio(16.0) < 0.2,
            "streamer MRC must be nearly flat: {} vs {}",
            p.miss_ratio(1.0),
            p.miss_ratio(16.0)
        );
        assert!(p.miss_ratio(16.0) > 0.5, "streams keep missing");
    }

    #[test]
    fn probes_are_deterministic() {
        let llcfit = cache_profiles()
            .into_iter()
            .find(|p| p.name == "llcfit")
            .unwrap();
        let mut s = MrcSampler::new(test_llc());
        s.ways_grid = vec![2];
        s.warmup = 100_000;
        s.measure = 100_000;
        assert_eq!(s.probe_ways(&llcfit, 2), s.probe_ways(&llcfit, 2));
    }
}
