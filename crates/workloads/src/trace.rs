//! Access-trace recording and replay.
//!
//! A [`Trace`] is a finite, serializable recording of a workload's access
//! stream. Traces decouple workload generation from simulation: record
//! once (from a synthetic generator, or converted from an external tool's
//! output), replay bit-for-bit anywhere. [`TraceWorkload`] loops the trace
//! to make it infinite, as the simulator requires.

use serde::{Deserialize, Serialize};

use bwpart_cmp::{Access, Workload};

/// A finite recorded access stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Name carried into reports.
    pub name: String,
    /// The recorded accesses, in program order.
    pub accesses: Vec<Access>,
}

impl Trace {
    /// Record `n` accesses from any workload.
    pub fn record(workload: &mut dyn Workload, n: usize) -> Self {
        Trace {
            name: workload.name().to_string(),
            accesses: (0..n).map(|_| workload.next_access()).collect(),
        }
    }

    /// Total instructions one pass of the trace represents (gaps + the
    /// memory instructions themselves).
    pub fn instructions(&self) -> u64 {
        self.accesses.iter().map(|a| a.gap as u64 + 1).sum()
    }

    /// Memory accesses per kilo-instruction implied by the trace.
    pub fn apki(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        1000.0 * self.accesses.len() as f64 / self.instructions() as f64
    }

    /// Turn the trace into an infinite workload by looping it.
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload::new(self)
    }
}

/// Replays a [`Trace`] in a loop.
pub struct TraceWorkload {
    trace: Trace,
    pos: usize,
}

impl TraceWorkload {
    /// Wrap a trace for replay.
    ///
    /// # Panics
    /// Panics on an empty trace.
    pub fn new(trace: Trace) -> Self {
        assert!(!trace.accesses.is_empty(), "cannot replay an empty trace");
        TraceWorkload { trace, pos: 0 }
    }

    /// How many full passes have completed.
    pub fn passes(&self) -> usize {
        self.pos / self.trace.accesses.len()
    }
}

impl Workload for TraceWorkload {
    fn next_access(&mut self) -> Access {
        let a = self.trace.accesses[self.pos % self.trace.accesses.len()];
        self.pos += 1;
        a
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchProfile;

    #[test]
    fn record_and_replay_round_trip() {
        let p = BenchProfile::by_name("milc").unwrap();
        let mut gen = p.spawn(9);
        let trace = Trace::record(gen.as_mut(), 500);
        assert_eq!(trace.accesses.len(), 500);
        assert_eq!(trace.name, "milc");

        // Replay matches a fresh generator with the same seed.
        let mut fresh = p.spawn(9);
        let mut replay = trace.clone().into_workload();
        for _ in 0..500 {
            assert_eq!(replay.next_access(), fresh.next_access());
        }
        // Loops after the end.
        assert_eq!(replay.next_access(), trace.accesses[0]);
        assert_eq!(replay.passes(), 1);
    }

    #[test]
    fn apki_matches_definition() {
        let trace = Trace {
            name: "t".into(),
            accesses: vec![
                Access {
                    gap: 9,
                    addr: 0,
                    is_write: false,
                },
                Access {
                    gap: 9,
                    addr: 64,
                    is_write: false,
                },
            ],
        };
        // 2 accesses per 20 instructions → 100 APKI.
        assert!((trace.apki() - 100.0).abs() < 1e-12);
        assert_eq!(trace.instructions(), 20);
    }

    #[test]
    fn serde_round_trip() {
        let p = BenchProfile::by_name("gobmk").unwrap();
        let mut gen = p.spawn(3);
        let trace = Trace::record(gen.as_mut(), 64);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = TraceWorkload::new(Trace {
            name: "e".into(),
            accesses: vec![],
        });
    }
}
