//! End-to-end coordinated-partitioning experiment: sample miss-ratio
//! curves from the simulator, solve the coordinated (bandwidth × LLC ways)
//! partitioning, enforce it in the shared simulation, and check it beats
//! bandwidth-only partitioning on harmonic weighted speedup.
//!
//! The mix is `cache-1`: `llcfit` (hot set overflows the private L2 but
//! fits most of a 1 MB LLC; latency-sensitive) against `lbm` (a streaming
//! bandwidth hog whose 256 MB footprint gets nothing from LLC capacity).
//! An even way split wastes half the LLC on the streamer and lets it
//! pollute the latency-sensitive app's working set; the coordinated solver
//! should discover the asymmetry from the fitted MRCs.

use bwpart_cmp::{CacheConfig, CmpConfig, LlcConfig, PhaseConfig, Runner, SimOutcome};
use bwpart_core::prelude::*;
use bwpart_workloads::mixes::cache_mixes;
use bwpart_workloads::MrcSampler;

const SEED: u64 = 0xE2E;

fn llc() -> LlcConfig {
    LlcConfig {
        cache: CacheConfig {
            capacity: 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        hit_penalty: 12,
    }
}

fn runner() -> Runner {
    Runner {
        cmp: CmpConfig {
            llc: Some(llc()),
            ..CmpConfig::default()
        },
        // Long warm-up: the LLC must be fully warm under the enforced way
        // partition before the measurement window opens.
        phases: PhaseConfig {
            warmup: 4_000_000,
            profile: 200_000,
            measure: 2_000_000,
            repartition_epoch: None,
        },
    }
}

fn hsp(out: &SimOutcome) -> f64 {
    out.metric(Metric::HarmonicWeightedSpeedup)
}

#[test]
fn coordinated_beats_bandwidth_only_on_the_cache_mix() {
    let mix = cache_mixes().remove(0);
    assert_eq!(mix.name, "cache-1");
    let profiles = mix.profiles();
    let r = runner();

    // Ground truth: each app standalone with the full LLC. These IPCs are
    // the speedup denominators for *both* regimes, so the comparison is
    // apples to apples.
    let alone: Vec<_> = profiles
        .iter()
        .map(|p| r.run_alone(p.spawn(SEED), p.core_config()))
        .collect();
    let apc_alone: Vec<f64> = alone.iter().map(|a| a.apc_alone).collect();
    let api: Vec<f64> = alone.iter().map(|a| a.api).collect();
    // The streamer saturates the DDR2-400 bus standalone; its APC_alone is
    // the best available estimate of the utilizable bandwidth B.
    let b = apc_alone.iter().cloned().fold(f64::MIN, f64::max);
    assert!(b > 0.005, "streamer should stress the bus, B = {b}");

    // Offline model inputs: MRC-sampled cache-aware profiles.
    let sampler = MrcSampler::new(llc());
    let cache_profiles = sampler.sample_mix(&mix).expect("sampling succeeds");
    assert!(
        cache_profiles[0].miss_ratio(2.0) > cache_profiles[0].miss_ratio(16.0) + 0.3,
        "llcfit's fitted MRC must be steep"
    );

    // Coordinated solve over (bandwidth shares × way allocation).
    let cfg = CoordConfig::new(b, llc().cache.ways);
    let coord = solve_coordinated(&cache_profiles, &cfg).expect("solve succeeds");
    assert!(
        coord.ways[0] > coord.ways[1],
        "the LLC-fitting app must out-way the streamer: {:?}",
        coord.ways
    );
    assert_eq!(coord.ways.iter().sum::<usize>(), 16);

    // Bandwidth-only baseline: even way split (an unmanaged LLC's fair
    // approximation) + the paper's square-root shares computed from
    // profiles materialized at those fair ways.
    let fair_ways = vec![8usize, 8];
    let fair_apps: Vec<AppProfile> = cache_profiles
        .iter()
        .map(|p| p.profile_at(8.0, 1.0).expect("valid profile"))
        .collect();
    let fair_shares = PartitionScheme::SquareRoot
        .shares(&fair_apps, b)
        .expect("shares solve");

    let run = |shares: Vec<f64>, ways: &[usize], label: &str| -> SimOutcome {
        let (w, c) = mix.build(1, SEED);
        r.run_with_allocation(
            shares,
            Some(ways),
            label,
            w,
            c,
            apc_alone.clone(),
            api.clone(),
        )
    };
    let fair = run(fair_shares.clone(), &fair_ways, "bandwidth-only");
    let coordinated = run(coord.bandwidth.beta.clone(), &coord.ways, "coordinated");

    let (h_fair, h_coord) = (hsp(&fair), hsp(&coordinated));
    eprintln!(
        "ways {:?} beta {:?} | HSP coordinated {h_coord:.4} vs bandwidth-only {h_fair:.4} \
         | speedups coordinated {:?} fair {:?}",
        coord.ways,
        coord.bandwidth.beta,
        coordinated.speedups(),
        fair.speedups(),
    );
    assert!(
        h_coord > h_fair,
        "coordinated must beat bandwidth-only on HSP: {h_coord:.4} vs {h_fair:.4}"
    );
    // Solver invariant surfaces end to end: the coordinated point's
    // predicted objective dominates every single-resource baseline.
    assert!(coord.objective_value >= coord.baseline_value - 1e-9);
    // The latency-sensitive app specifically must gain.
    let s_fair = fair.speedups();
    let s_coord = coordinated.speedups();
    assert!(
        s_coord[0] > s_fair[0],
        "llcfit speedup must improve: {:.3} vs {:.3}",
        s_coord[0],
        s_fair[0]
    );
}
