//! Property tests for the synthetic workload generators: statistical
//! targets hold for arbitrary profiles, addresses stay in bounds, and all
//! the calibrated Table III profiles generate well-formed streams.

use bwpart_cmp::Workload;
use bwpart_workloads::profile::{table3_profiles, BenchProfile};
use bwpart_workloads::stream::SyntheticWorkload;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = BenchProfile> {
    (
        1u32..40,    // gap
        0.0f64..0.9, // stream_ratio
        0.0f64..0.5, // write_ratio
        1u32..64,    // row_run
        1u32..8,     // miss_burst
    )
        .prop_map(
            |(gap, stream_ratio, write_ratio, row_run, miss_burst)| BenchProfile {
                name: "prop",
                gap,
                stream_ratio,
                write_ratio,
                footprint: 32 << 20,
                hot_bytes: 16 << 10,
                row_run,
                miss_burst,
                mlp: 4,
                width: 4,
                seed_salt: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overall stream fraction tracks `stream_ratio` regardless of the
    /// burst size (the derated cluster-start math).
    #[test]
    fn stream_fraction_matches_target(p in arb_profile(), seed in any::<u64>()) {
        let mut w = SyntheticWorkload::new(&p, seed);
        let n = 30_000;
        let mut streams = 0usize;
        for _ in 0..n {
            if w.next_access().addr >= (1 << 27) {
                streams += 1;
            }
        }
        let frac = streams as f64 / n as f64;
        prop_assert!(
            (frac - p.stream_ratio).abs() < 0.04,
            "stream fraction {frac:.3} vs target {:.3} (burst {})",
            p.stream_ratio,
            p.miss_burst
        );
    }

    /// Write fraction tracks `write_ratio`.
    #[test]
    fn write_fraction_matches_target(p in arb_profile(), seed in any::<u64>()) {
        let mut w = SyntheticWorkload::new(&p, seed);
        let n = 20_000;
        let writes = (0..n).filter(|_| w.next_access().is_write).count();
        let frac = writes as f64 / n as f64;
        prop_assert!((frac - p.write_ratio).abs() < 0.03);
    }

    /// Addresses stay inside the declared regions: hot set below the
    /// stream base, streaming inside the footprint.
    #[test]
    fn addresses_stay_in_bounds(p in arb_profile(), seed in any::<u64>()) {
        let mut w = SyntheticWorkload::new(&p, seed);
        for _ in 0..5_000 {
            let a = w.next_access();
            if a.addr < (1 << 27) {
                prop_assert!(a.addr < p.hot_bytes);
            } else {
                prop_assert!(a.addr < (1 << 27) + p.footprint);
            }
            prop_assert!(a.addr.is_multiple_of(64), "line-aligned generation");
        }
    }

    /// Streams are reproducible from (profile, seed) and differ across
    /// seeds.
    #[test]
    fn determinism_and_seed_sensitivity(p in arb_profile(), seed in any::<u64>()) {
        let mut a = SyntheticWorkload::new(&p, seed);
        let mut b = SyntheticWorkload::new(&p, seed);
        let mut c = SyntheticWorkload::new(&p, seed.wrapping_add(1));
        let mut any_diff = false;
        for _ in 0..512 {
            let x = a.next_access();
            prop_assert_eq!(x, b.next_access());
            if x != c.next_access() {
                any_diff = true;
            }
        }
        prop_assert!(any_diff, "different seeds should diverge");
    }
}

/// All 16 calibrated profiles generate sane streams (non-property batch
/// check kept here with the generator tests).
#[test]
fn all_table3_profiles_generate_well_formed_streams() {
    for p in table3_profiles() {
        let mut w = SyntheticWorkload::new(&p, 1);
        let n = 10_000;
        let mut streams = 0usize;
        let mut instr = 0u64;
        for _ in 0..n {
            let a = w.next_access();
            instr += a.gap as u64 + 1;
            if a.addr >= (1 << 27) {
                streams += 1;
            }
        }
        let frac = streams as f64 / n as f64;
        assert!(
            (frac - p.stream_ratio).abs() < 0.05,
            "{}: stream fraction {frac} vs {}",
            p.name,
            p.stream_ratio
        );
        // Implied APKI (memory instructions are not all DRAM accesses, but
        // stream ones are): sanity range.
        let implied_miss_apki = 1000.0 * streams as f64 / instr as f64;
        assert!(
            implied_miss_apki > 0.1 && implied_miss_apki < 120.0,
            "{}: implied miss APKI {implied_miss_apki}",
            p.name
        );
    }
}
