//! Cross-crate integration tests: the paper's qualitative claims hold
//! end-to-end through workload generation → cache hierarchy → memory
//! controller → DRAM → metrics, at reduced (test-speed) fidelity.

use bwpart::prelude::*;

fn fast_runner() -> Runner {
    Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 100_000,
            profile: 250_000,
            measure: 400_000,
            repartition_epoch: None,
        },
    }
}

fn run(mix: &Mix, scheme: PartitionScheme, seed: u64) -> SimOutcome {
    let (w, cc) = mix.build(1, seed);
    fast_runner().run_scheme(scheme, w, cc, ShareSource::OnlineProfile)
}

fn hetero_mix() -> Mix {
    // hetero-5: libquantum, milc, gromacs, gobmk — the Figure 1 mix.
    mixes::hetero_mixes().remove(4)
}

#[test]
fn square_root_beats_equal_and_proportional_on_hsp() {
    // The sqrt-vs-proportional Hsp gap is a few percent at full fidelity,
    // so this comparison needs longer phases than the other tests.
    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 200_000,
            profile: 1_000_000,
            measure: 1_500_000,
            repartition_epoch: None,
        },
    };
    let mix = hetero_mix();
    let run = |scheme| {
        let (w, cc) = mix.build(1, 42);
        runner
            .run_scheme(scheme, w, cc, ShareSource::OnlineProfile)
            .metric(Metric::HarmonicWeightedSpeedup)
    };
    let sqrt = run(PartitionScheme::SquareRoot);
    let equal = run(PartitionScheme::Equal);
    let prop = run(PartitionScheme::Proportional);
    assert!(
        sqrt > prop * 0.98,
        "Square_root ({sqrt}) should not lose to Proportional ({prop}) on Hsp"
    );
    assert!(
        sqrt > equal * 0.95,
        "Square_root ({sqrt}) should be at least competitive with Equal ({equal})"
    );
}

#[test]
fn proportional_is_fairest() {
    let mix = hetero_mix();
    let prop = run(&mix, PartitionScheme::Proportional, 42).metric(Metric::MinFairness);
    for scheme in [
        PartitionScheme::Equal,
        PartitionScheme::PriorityApc,
        PartitionScheme::PriorityApi,
    ] {
        let other = run(&mix, scheme, 42).metric(Metric::MinFairness);
        assert!(
            prop > other * 0.95,
            "Proportional ({prop}) should beat {scheme} ({other}) on MinFairness"
        );
    }
}

#[test]
fn priority_schemes_win_throughput_but_starve() {
    let mix = hetero_mix();
    let papi = run(&mix, PartitionScheme::PriorityApi, 42);
    let prop = run(&mix, PartitionScheme::Proportional, 42);
    // Priority_API maximizes raw throughput...
    assert!(
        papi.metric(Metric::SumOfIpcs) > prop.metric(Metric::SumOfIpcs),
        "Priority_API should beat Proportional on IPCsum"
    );
    // ...at the cost of fairness (starvation of the heavy apps).
    assert!(
        papi.metric(Metric::MinFairness) < prop.metric(Metric::MinFairness),
        "Priority_API should be less fair than Proportional"
    );
}

#[test]
fn homogeneous_mix_is_insensitive_to_power_family_choice() {
    // homo-2: four middle-intensity apps. Equal/Proportional/Square_root
    // produce nearly identical outcomes (the paper's Section VI-A note).
    let mix = mixes::homo_mixes().remove(1);
    let outcomes: Vec<f64> = [
        PartitionScheme::Equal,
        PartitionScheme::Proportional,
        PartitionScheme::SquareRoot,
    ]
    .iter()
    .map(|&s| run(&mix, s, 42).metric(Metric::HarmonicWeightedSpeedup))
    .collect();
    let max = outcomes.iter().cloned().fold(f64::MIN, f64::max);
    let min = outcomes.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.06,
        "power-family spread on a homogeneous mix should be small: {outcomes:?}"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let mix = hetero_mix();
    let a = run(&mix, PartitionScheme::SquareRoot, 7);
    let b = run(&mix, PartitionScheme::SquareRoot, 7);
    assert_eq!(a.ipc_shared(), b.ipc_shared());
    assert_eq!(a.apc_alone_ref, b.apc_alone_ref);
    // Different seeds genuinely change the streams.
    let c = run(&mix, PartitionScheme::SquareRoot, 8);
    assert_ne!(a.ipc_shared(), c.ipc_shared());
}

#[test]
fn online_profile_tracks_ground_truth() {
    // The Eq. 12 estimate from a contended run should land within a factor
    // of two of the true standalone rate for every app in the mix.
    let mix = hetero_mix();
    let runner = fast_runner();
    let shared = run(&mix, PartitionScheme::NoPartitioning, 42);
    for (i, bench) in mix.benches.iter().enumerate() {
        let p = BenchProfile::by_name(bench).unwrap();
        let alone = runner.run_alone(p.spawn(42), p.core_config());
        let est = shared.apc_alone_ref[i];
        let truth = alone.apc_alone;
        assert!(
            est > truth * 0.5 && est < truth * 2.0,
            "{bench}: online estimate {est} vs ground truth {truth}"
        );
    }
}

#[test]
fn total_bandwidth_is_conserved_across_schemes() {
    // Partitioning redistributes bandwidth; it cannot create it. Under a
    // saturating heterogeneous mix, total utilized APC stays near the bus
    // peak for every scheme (the paper's Eq. 2 premise).
    let mix = hetero_mix();
    let peak = DramConfig::ddr2_400().peak_apc();
    for scheme in [
        PartitionScheme::NoPartitioning,
        PartitionScheme::Equal,
        PartitionScheme::SquareRoot,
        PartitionScheme::PriorityApc,
    ] {
        let out = run(&mix, scheme, 42);
        assert!(
            out.total_bandwidth > 0.8 * peak && out.total_bandwidth <= peak * 1.001,
            "{scheme}: utilized {} vs peak {peak}",
            out.total_bandwidth
        );
    }
}

#[test]
fn eq1_holds_in_the_full_simulator() {
    // IPC = APC / API per application, exactly (APC and API are measured
    // from the same counters).
    let out = run(&hetero_mix(), PartitionScheme::Equal, 42);
    for s in &out.stats {
        let lhs = s.ipc();
        let rhs = s.apc() / s.api();
        assert!(
            (lhs - rhs).abs() / lhs < 1e-9,
            "{}: IPC {lhs} vs APC/API {rhs}",
            s.name
        );
    }
}

#[test]
fn qos_guarantee_end_to_end_on_light_mix() {
    // mix-2 (h264ref, zeusmp, leslie3d, hmmer): reserve for hmmer and check
    // the guarantee within test-speed tolerance.
    let mix = mixes::qos_mixes().remove(1);
    let runner = fast_runner();
    let (w, cc) = mix.build(1, 42);
    let base = runner.run_scheme(
        PartitionScheme::NoPartitioning,
        w,
        cc,
        ShareSource::OnlineProfile,
    );
    let profiles: Vec<AppProfile> = base
        .stats
        .iter()
        .zip(base.apc_alone_ref.iter().zip(&base.api_ref))
        .map(|(s, (&apc, &api))| {
            AppProfile::new(s.name.clone(), api.max(1e-9), apc.max(1e-9)).unwrap()
        })
        .collect();
    let target = 0.5 * profiles[3].ipc_alone();
    let req = [QosRequest {
        app: 3,
        target_ipc: target,
    }];
    let part = qos::partition(
        &profiles,
        &req,
        PartitionScheme::SquareRoot,
        base.total_bandwidth,
    )
    .unwrap();
    let (w, cc) = mix.build(1, 42);
    let out = runner.run_with_shares(
        part.shares(),
        "qos",
        w,
        cc,
        base.apc_alone_ref.clone(),
        base.api_ref.clone(),
    );
    let achieved = out.ipc_shared()[3];
    assert!(
        achieved > 0.7 * target,
        "QoS guarantee missed badly: {achieved} vs target {target}"
    );
}

#[test]
fn two_channels_double_delivered_bandwidth() {
    // The DRAM model supports multiple channels even though Table II uses
    // one: a saturating mix should deliver ~2× the line throughput.
    let run = |channels: usize| {
        let mut dram = DramConfig::ddr2_400();
        dram.channels = channels;
        let runner = Runner {
            cmp: CmpConfig {
                dram,
                ..CmpConfig::default()
            },
            phases: PhaseConfig {
                warmup: 100_000,
                profile: 150_000,
                measure: 300_000,
                repartition_epoch: None,
            },
        };
        let mix = mixes::hetero_mixes().remove(5); // lbm + libquantum heavy
        let (w, cc) = mix.build(1, 42);
        runner
            .run_scheme(PartitionScheme::Equal, w, cc, ShareSource::OnlineProfile)
            .total_bandwidth
    };
    let one = run(1);
    let two = run(2);
    assert!(
        two > one * 1.4,
        "two channels should raise delivered bandwidth: {one} -> {two}"
    );
}
