//! Serialization round trips: every public configuration and result type
//! survives JSON, so experiment pipelines can persist and reload state.

// Roundtrips must be bit-exact, so exact float equality is the point here.
#![allow(clippy::float_cmp)]

use bwpart::prelude::*;
use bwpart_dram::MappingScheme;
use bwpart_workloads::Trace;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn dram_config_roundtrip() {
    for cfg in [
        DramConfig::ddr2_400(),
        DramConfig::ddr2_800(),
        DramConfig::ddr2_1600(),
    ] {
        let back: DramConfig = roundtrip(&cfg);
        assert_eq!(cfg, back);
        assert_eq!(cfg.peak_apc(), back.peak_apc());
    }
    let mut cfg = DramConfig::ddr2_400();
    cfg.page_policy = PagePolicy::OpenPage;
    cfg.mapping = MappingScheme::ChRowBankRankCol;
    assert_eq!(cfg, roundtrip(&cfg));
}

#[test]
fn cmp_config_roundtrip() {
    let cfg = CmpConfig::default();
    let back: CmpConfig = roundtrip(&cfg);
    assert_eq!(cfg, back);
}

#[test]
fn app_profile_and_scheme_roundtrip() {
    let app = AppProfile::from_kilo_units("lbm", 53.1, 9.39).unwrap();
    let back: AppProfile = roundtrip(&app);
    assert_eq!(app, back);
    for scheme in PartitionScheme::PAPER_SCHEMES {
        assert_eq!(scheme, roundtrip(&scheme));
    }
    assert_eq!(
        PartitionScheme::Power(0.73),
        roundtrip(&PartitionScheme::Power(0.73))
    );
}

#[test]
fn bench_profile_serializes_all_fields() {
    // `BenchProfile.name` is `&'static str`, so it serializes (for result
    // records) but is not deserializable into 'static storage; check the
    // serialized form field-by-field instead.
    for p in bwpart_workloads::table3_profiles() {
        let v: serde_json::Value = serde_json::to_value(p).unwrap();
        assert_eq!(v["name"], p.name);
        assert_eq!(v["gap"], p.gap);
        assert_eq!(v["mlp"], p.mlp);
        assert!((v["stream_ratio"].as_f64().unwrap() - p.stream_ratio).abs() < 1e-12);
        assert_eq!(v["miss_burst"], p.miss_burst);
    }
}

#[test]
fn mix_roundtrip() {
    for m in mixes::all_mixes() {
        assert_eq!(m, roundtrip(&m));
    }
}

#[test]
fn sim_outcome_roundtrip_preserves_metrics() {
    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 50_000,
            profile: 100_000,
            measure: 150_000,
            repartition_epoch: None,
        },
    };
    let mix = mixes::fig1_mix();
    let (w, cc) = mix.build(1, 5);
    let out = runner.run_scheme(PartitionScheme::Equal, w, cc, ShareSource::OnlineProfile);
    let back: SimOutcome = roundtrip(&out);
    for m in Metric::ALL {
        assert_eq!(out.metric(m), back.metric(m));
    }
    assert_eq!(out.ipc_shared(), back.ipc_shared());
}

#[test]
fn trace_roundtrip_replays_identically() {
    let p = BenchProfile::by_name("soplex").unwrap();
    let mut gen = p.spawn(11);
    let trace = Trace::record(gen.as_mut(), 256);
    let back: Trace = roundtrip(&trace);
    assert_eq!(trace, back);
    let mut a = trace.into_workload();
    let mut b = back.into_workload();
    for _ in 0..512 {
        assert_eq!(a.next_access(), b.next_access());
    }
}

#[test]
fn qos_request_roundtrip() {
    let req = QosRequest {
        app: 3,
        target_ipc: 0.6,
    };
    let back: QosRequest = roundtrip(&req);
    assert_eq!(req, back);
}
