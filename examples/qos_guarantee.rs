//! QoS-guaranteed consolidation (Section III-G of the paper).
//!
//! Scenario: a latency-critical service (`hmmer`-like) is consolidated
//! with three throughput-oriented batch jobs on a four-core CMP. The
//! operator demands a guaranteed IPC for the service; the batch jobs
//! should use whatever bandwidth remains as efficiently as possible.
//!
//! The example reserves bandwidth per Eq. 11 (`B_QoS = IPC_target × API`),
//! splits the best-effort remainder with `Square_root` (the harmonic-
//! weighted-speedup optimum), sizes the reservation closed-loop, and
//! verifies the guarantee end-to-end on the cycle-level simulator.
//!
//! Run with: `cargo run --release --example qos_guarantee`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;

fn main() {
    let mix = mixes::qos_mixes().remove(0); // lbm, libquantum, omnetpp, hmmer
    let qos_app = 3; // hmmer
    let target_ipc = 0.6;
    println!("consolidating: {:?}", mix.benches);
    println!("guarantee: {} IPC ≥ {target_ipc}\n", mix.benches[qos_app]);

    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 500_000,
            profile: 2_000_000,
            measure: 3_000_000,
            repartition_epoch: None,
        },
    };

    // Step 1: measure the unmanaged baseline and profile the applications
    // online (Eq. 12–13).
    let (w, cc) = mix.build(1, 42);
    let base = runner.run_scheme(
        PartitionScheme::NoPartitioning,
        w,
        cc,
        ShareSource::OnlineProfile,
    );
    println!(
        "No_partitioning: {} IPC = {:.3}  (uncontrolled)",
        mix.benches[qos_app],
        base.ipc_shared()[qos_app]
    );

    // Step 2: build the QoS partition from the profiled values.
    let profiles: Vec<AppProfile> = base
        .stats
        .iter()
        .zip(base.apc_alone_ref.iter().zip(&base.api_ref))
        .map(|(s, (&apc, &api))| AppProfile::new(s.name.clone(), api, apc).unwrap())
        .collect();
    // Step 3: enforce with closed-loop reservation sizing. Eq. 11 gives
    // the open-loop reserve; because start-time-fair enforcement is
    // work-conserving, a bursty QoS application can leak share, so we
    // measure and scale the reservation until the guarantee holds — the
    // same correction the paper's periodic repartitioning applies online.
    let ipc_alone_est = profiles[qos_app].ipc_alone();
    let mut reserve_ipc: f64 = target_ipc;
    let mut out = None;
    for round in 1..=4 {
        let request = [QosRequest {
            app: qos_app,
            target_ipc: reserve_ipc.min(0.95 * ipc_alone_est),
        }];
        let part = qos::partition(
            &profiles,
            &request,
            PartitionScheme::SquareRoot,
            base.total_bandwidth,
        )
        .expect("reservation feasible");
        let (w, cc) = mix.build(1, 42);
        let o = runner.run_with_shares(
            part.shares(),
            "QoS+Square_root",
            w,
            cc,
            base.apc_alone_ref.clone(),
            base.api_ref.clone(),
        );
        let achieved = o.ipc_shared()[qos_app];
        println!(
            "round {round}: reserved {:.5} APC ({:.1}% of B) → {} IPC = {achieved:.3}",
            part.qos_bandwidth,
            100.0 * part.qos_bandwidth / base.total_bandwidth,
            mix.benches[qos_app]
        );
        let done = achieved >= 0.97 * target_ipc;
        out = Some(o);
        if done {
            break;
        }
        reserve_ipc =
            (reserve_ipc * (target_ipc / achieved.max(1e-6)).min(1.5)).min(0.95 * ipc_alone_est);
    }
    let out = out.unwrap();
    let achieved = out.ipc_shared()[qos_app];
    println!(
        "\nQoS partitioning: {} IPC = {achieved:.3}  (target {target_ipc})",
        mix.benches[qos_app]
    );

    // Best-effort side: weighted speedup of the other three applications.
    let be: Vec<usize> = (0..mix.len()).filter(|&i| i != qos_app).collect();
    let wsp = |o: &SimOutcome| {
        let s: Vec<f64> = be.iter().map(|&i| o.ipc_shared()[i]).collect();
        let a: Vec<f64> = be.iter().map(|&i| o.ipc_alone_ref()[i]).collect();
        metrics::weighted_speedup(&s, &a).unwrap()
    };
    println!(
        "best-effort Wsp: {:.3} → {:.3} ({:+.1}%)",
        wsp(&base),
        wsp(&out),
        100.0 * (wsp(&out) / wsp(&base) - 1.0)
    );

    assert!(
        achieved > 0.9 * target_ipc,
        "guarantee missed: {achieved} < 0.9 × {target_ipc}"
    );
    println!("\nguarantee held.");
}
