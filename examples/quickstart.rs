//! Quickstart: the analytical model in five minutes.
//!
//! Characterize four co-scheduled applications by `(API, APC_alone)`,
//! derive the optimal bandwidth partition for each system objective, and
//! predict the outcome of every scheme — no simulation required.
//!
//! Run with: `cargo run --release --example quickstart`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;

fn main() {
    // Application profiles: memory Accesses Per Instruction and standalone
    // Accesses Per Cycle — e.g. from Table III of the paper, from hardware
    // counters, or from the online profiler in `bwpart_mc`.
    let apps = vec![
        AppProfile::from_kilo_units("libquantum", 34.12, 6.92).unwrap(),
        AppProfile::from_kilo_units("milc", 42.22, 6.87).unwrap(),
        AppProfile::from_kilo_units("gromacs", 5.20, 3.37).unwrap(),
        AppProfile::from_kilo_units("gobmk", 4.07, 1.91).unwrap(),
    ];

    // Total utilized off-chip bandwidth: DDR2-400 with 64 B lines at 5 GHz
    // serves at most 0.01 accesses per CPU cycle.
    let b = DramConfig::ddr2_400().peak_apc() * 0.95;

    println!("workload:");
    for a in &apps {
        println!(
            "  {:<12} API {:.4}  APC_alone {:.4}  IPC_alone {:.3}  ({})",
            a.name,
            a.api,
            a.apc_alone,
            a.ipc_alone(),
            a.intensity().label()
        );
    }
    println!("\ntotal bandwidth B = {b:.4} APC\n");

    // Derive each scheme's share vector and predicted metrics.
    for scheme in [
        PartitionScheme::Equal,
        PartitionScheme::Proportional,
        PartitionScheme::SquareRoot,
        PartitionScheme::TwoThirdsPower,
        PartitionScheme::PriorityApc,
        PartitionScheme::PriorityApi,
    ] {
        let beta = scheme.shares(&apps, b).unwrap();
        let pred = predict::evaluate_scheme(&apps, scheme, b).unwrap();
        print!("{:<14} β = [", scheme.name());
        for (i, x) in beta.iter().enumerate() {
            print!("{}{:.3}", if i > 0 { ", " } else { "" }, x);
        }
        print!("]  ");
        for m in Metric::ALL {
            print!("{}={:.3} ", m.label(), pred.metric(m));
        }
        println!();
    }

    println!(
        "\noptimal per objective:\n  Hsp    → {}\n  MinF   → {}\n  Wsp    → {}\n  IPCsum → {}",
        Metric::HarmonicWeightedSpeedup.optimal_scheme_name(),
        Metric::MinFairness.optimal_scheme_name(),
        Metric::WeightedSpeedup.optimal_scheme_name(),
        Metric::SumOfIpcs.optimal_scheme_name(),
    );
}
