//! Scalability: how the value of optimal partitioning grows with the
//! memory system (the paper's Figure 4, as a library-driven walkthrough).
//!
//! Bandwidth scales 3.2 → 6.4 → 12.8 GB/s by raising only the bus
//! frequency (latencies fixed in ns) while the workload scales 4 → 8 → 16
//! cores with copies of a heterogeneous mix. At each point the example
//! prints the standalone `APC_alone` growth of a bandwidth-bound vs a
//! latency-bound application — the mechanism the paper identifies — and
//! the resulting Square_root-vs-Equal gap.
//!
//! Run with: `cargo run --release --example scalability`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;

fn main() {
    let points = [
        ("3.2 GB/s, 4 cores", DramConfig::ddr2_400(), 1usize),
        ("6.4 GB/s, 8 cores", DramConfig::ddr2_800(), 2),
        ("12.8 GB/s, 16 cores", DramConfig::ddr2_1600(), 4),
    ];
    let mix = mixes::hetero_mixes().remove(5); // hetero-6: lbm,libquantum,gromacs,zeusmp
    println!("mix: {:?}\n", mix.benches);

    let lbm = BenchProfile::by_name("lbm").unwrap();
    let zeusmp = BenchProfile::by_name("zeusmp").unwrap();

    for (label, dram, copies) in points {
        let runner = Runner {
            cmp: CmpConfig {
                dram: dram.clone(),
                ..CmpConfig::default()
            },
            phases: PhaseConfig {
                warmup: 300_000,
                profile: 1_000_000,
                measure: 2_000_000,
                repartition_epoch: None,
            },
        };

        // Mechanism: bandwidth-bound apps' APC_alone scales with the bus,
        // latency-bound apps' barely moves.
        let lbm_alone = runner.run_alone(lbm.spawn(1), lbm.core_config());
        let zeusmp_alone = runner.run_alone(zeusmp.spawn(2), zeusmp.core_config());

        // Effect: the Square_root-vs-Equal Hsp gap.
        let (w, cc) = mix.build(copies, 42);
        let equal = runner.run_scheme(PartitionScheme::Equal, w, cc, ShareSource::OnlineProfile);
        let (w, cc) = mix.build(copies, 42);
        let sqrt = runner.run_scheme(
            PartitionScheme::SquareRoot,
            w,
            cc,
            ShareSource::OnlineProfile,
        );
        let gap = sqrt.metric(Metric::HarmonicWeightedSpeedup)
            / equal.metric(Metric::HarmonicWeightedSpeedup);

        println!("{label}:");
        println!(
            "  APC_alone: lbm {:.4} (bandwidth-bound)   zeusmp {:.4} (latency-bound)",
            lbm_alone.apc_alone, zeusmp_alone.apc_alone
        );
        println!(
            "  Square_root vs Equal on Hsp: {:+.1}%\n",
            (gap - 1.0) * 100.0
        );
    }
    println!("expected shape: lbm's APC_alone grows ~with bandwidth, zeusmp's");
    println!("barely moves, and the Square_root advantage widens (Figure 4).");
}
