//! Priority weights: the Section II-B motivation, made concrete.
//!
//! "The system performance metric may be defined in such a way that
//! applications with higher priority have more weights. Thus, allocating
//! more bandwidth to high-priority applications will have more performance
//! gain." The paper derives only the uniform-weight optima;
//! `bwpart_core::weighted` generalizes them. This example shows a
//! production-style scenario: a paying tenant (weight 4) co-scheduled with
//! three background tenants (weight 1), optimized for *weighted* harmonic
//! speedup, verified on the simulator.
//!
//! Run with: `cargo run --release --example weighted_priority`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;
use bwpart_core::weighted;

fn main() {
    let mix = mixes::hetero_mixes().remove(4); // libquantum, milc, gromacs, gobmk
    let premium = 0usize; // libquantum is the paying tenant
    let weights = vec![4.0, 1.0, 1.0, 1.0];
    println!("tenants: {:?}", mix.benches);
    println!("weights: {weights:?} (app {premium} is premium)\n");

    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 500_000,
            profile: 2_000_000,
            measure: 3_000_000,
            repartition_epoch: None,
        },
    };

    // Profile online, then derive both the unweighted and the weighted
    // Hsp-optimal allocations.
    let (w, cc) = mix.build(1, 42);
    let base = runner.run_scheme(
        PartitionScheme::NoPartitioning,
        w,
        cc,
        ShareSource::OnlineProfile,
    );
    let profiles: Vec<AppProfile> = base
        .stats
        .iter()
        .zip(base.apc_alone_ref.iter().zip(&base.api_ref))
        .map(|(s, (&apc, &api))| AppProfile::new(s.name.clone(), api, apc).unwrap())
        .collect();
    let b = base.total_bandwidth;

    let uniform = PartitionScheme::SquareRoot
        .allocation(&profiles, b)
        .unwrap();
    let weighted_alloc = weighted::hsp_optimal_allocation(&profiles, &weights, b).unwrap();
    println!("allocation (APC):");
    for (i, p) in profiles.iter().enumerate() {
        println!(
            "  {:<12} uniform {:.5} → weighted {:.5}",
            p.name, uniform[i], weighted_alloc[i]
        );
    }

    // Enforce both on the simulator and compare the premium tenant's
    // speedup and the weighted objective.
    let run = |alloc: &[f64], label: &str| {
        let total: f64 = alloc.iter().sum();
        let shares: Vec<f64> = alloc.iter().map(|a| a / total).collect();
        let (w, cc) = mix.build(1, 42);
        runner.run_with_shares(
            shares,
            label,
            w,
            cc,
            base.apc_alone_ref.clone(),
            base.api_ref.clone(),
        )
    };
    let u = run(&uniform, "uniform-sqrt");
    let wgt = run(&weighted_alloc, "weighted-sqrt");

    let whsp = |o: &SimOutcome| {
        weighted::weighted_hsp(&o.ipc_shared(), &o.ipc_alone_ref(), &weights).unwrap()
    };
    println!("\npremium tenant speedup:");
    println!("  uniform Square_root:  {:.3}", u.speedups()[premium]);
    println!("  weighted Square_root: {:.3}", wgt.speedups()[premium]);
    println!("\nweighted harmonic speedup (the contracted objective):");
    println!("  uniform:  {:.4}", whsp(&u));
    println!("  weighted: {:.4}", whsp(&wgt));

    assert!(
        wgt.speedups()[premium] > u.speedups()[premium],
        "the premium tenant must benefit from its weight"
    );
    assert!(
        whsp(&wgt) >= whsp(&u) * 0.98,
        "the weighted objective should not regress"
    );
    println!("\nweighted optimum honoured.");
}
