//! Explore the power family `β_i ∝ APC_alone,i^α` analytically.
//!
//! Section III shows three members of the family are special: α=0 (Equal),
//! α=1/2 (Square_root, optimal for harmonic weighted speedup) and α=1
//! (Proportional, optimal for fairness); Liu et al.'s prior work proposed
//! α=2/3. This example sweeps α and prints how each system objective
//! responds — making the paper's "different schemes favour different
//! objectives" landscape visible, and verifying numerically that the
//! closed-form optima sit where the derivations say.
//!
//! Run with: `cargo run --release --example scheme_explorer`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;

fn main() {
    // A heterogeneous mix (hetero-7 style): one saturating streamer, one
    // middle-intensity app, two light apps.
    let apps = vec![
        AppProfile::from_kilo_units("lbm", 53.13, 9.39).unwrap(),
        AppProfile::from_kilo_units("milc", 42.22, 6.87).unwrap(),
        AppProfile::from_kilo_units("gobmk", 4.07, 1.91).unwrap(),
        AppProfile::from_kilo_units("zeusmp", 4.52, 2.42).unwrap(),
    ];
    let b = 0.0095;

    println!("power-family sweep over α (β_i ∝ APC_alone^α), B = {b}\n");
    println!(
        "{:>5}  {:>7} {:>7} {:>7} {:>7}",
        "α", "Hsp", "MinF", "Wsp", "IPCsum"
    );
    let mut best: Vec<(f64, f64)> = vec![(f64::MIN, 0.0); 4]; // (value, alpha)
    for step in 0..=30 {
        let alpha = step as f64 * 0.05;
        let pred = predict::evaluate_scheme(&apps, PartitionScheme::Power(alpha), b).unwrap();
        print!("{alpha:>5.2}");
        for (mi, m) in Metric::ALL.iter().enumerate() {
            let v = pred.metric(*m);
            if v > best[mi].0 {
                best[mi] = (v, alpha);
            }
            print!("  {v:>6.3}");
        }
        let tag = match step {
            0 => "   ← Equal",
            10 => "   ← Square_root (Hsp optimum)",
            20 => "   ← Proportional (fairness optimum)",
            _ if (alpha - 2.0 / 3.0).abs() < 0.026 => "   ← ≈2/3_power (Liu et al.)",
            _ => "",
        };
        println!("{tag}");
    }

    println!("\nbest α found per metric:");
    for (mi, m) in Metric::ALL.iter().enumerate() {
        println!(
            "  {:<7} α* ≈ {:.2} (value {:.3})",
            m.label(),
            best[mi].1,
            best[mi].0
        );
    }

    // The closed forms say: Hsp peaks at α = 1/2, MinF at α = 1.
    assert!(
        (best[0].1 - 0.5).abs() < 0.051,
        "Hsp optimum should be α≈0.5"
    );
    assert!(
        (best[1].1 - 1.0).abs() < 0.051,
        "MinF optimum should be α≈1.0"
    );
    // Throughput metrics keep growing with α inside the family, but the
    // true optimum is the (non-power) priority allocation:
    let wsp_family_best = best[2].0;
    let wsp_priority = predict::evaluate_scheme(&apps, PartitionScheme::PriorityApc, b)
        .unwrap()
        .metric(Metric::WeightedSpeedup);
    println!(
        "\nWsp: best power-family {wsp_family_best:.3} vs Priority_APC {wsp_priority:.3} — \
         the knapsack optimum beats every power-family member"
    );
    assert!(wsp_priority >= wsp_family_best - 1e-9);
}
