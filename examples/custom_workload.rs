//! Bring your own workload: implement the `Workload` trait and run it
//! through the full cycle-level simulator.
//!
//! This example defines a tiled stencil-like kernel (alternating streaming
//! sweeps and blocked reuse phases) from scratch — no `BenchProfile` — and
//! co-schedules it against a synthetic `libquantum`. It then compares
//! No_partitioning, Equal and Square_root on the pair.
//!
//! Run with: `cargo run --release --example custom_workload`

// Examples favor brevity over error plumbing.
#![allow(clippy::unwrap_used)]

use bwpart::prelude::*;
use bwpart_cmp::Access;

/// A phased kernel: `sweep_len` streaming accesses (one per 8 instructions)
/// followed by `reuse_len` accesses within a 64 KB tile (one per 4
/// instructions) — the classic stencil compute/load alternation.
struct Stencil {
    pos: u64,
    phase_left: u32,
    streaming: bool,
    sweep_len: u32,
    reuse_len: u32,
    tile_pos: u64,
}

impl Stencil {
    fn new() -> Self {
        Stencil {
            pos: 0,
            phase_left: 4096,
            streaming: true,
            sweep_len: 4096,
            reuse_len: 16384,
            tile_pos: 0,
        }
    }
}

impl Workload for Stencil {
    fn next_access(&mut self) -> Access {
        if self.phase_left == 0 {
            self.streaming = !self.streaming;
            self.phase_left = if self.streaming {
                self.sweep_len
            } else {
                self.reuse_len
            };
        }
        self.phase_left -= 1;
        if self.streaming {
            // Sequential sweep through a 256 MB array: misses all caches.
            let addr = (1 << 28) + (self.pos % (1 << 27)) * 64;
            self.pos += 1;
            Access {
                gap: 8,
                addr,
                is_write: self.pos.is_multiple_of(3),
            }
        } else {
            // Blocked reuse inside a 64 KB tile: L2-resident.
            let addr = (self.tile_pos % 1024) * 64;
            self.tile_pos = self.tile_pos.wrapping_mul(1103515245).wrapping_add(12345);
            Access {
                gap: 4,
                addr,
                is_write: false,
            }
        }
    }

    fn name(&self) -> &str {
        "stencil"
    }
}

fn main() {
    let runner = Runner {
        cmp: CmpConfig::default(),
        phases: PhaseConfig {
            warmup: 500_000,
            profile: 2_000_000,
            measure: 3_000_000,
            repartition_epoch: None,
        },
    };

    // Standalone profile of the custom kernel.
    let alone = runner.run_alone(Box::new(Stencil::new()), CoreConfig::default());
    println!(
        "stencil alone: IPC {:.3}  APKC {:.3}  APKI {:.3}  ({})",
        alone.ipc_alone,
        alone.stats.apkc(),
        alone.stats.apki(),
        bwpart_core::app::IntensityClass::from_apkc(alone.stats.apkc()).label()
    );

    // Co-schedule against a calibrated libquantum twin.
    let libq = BenchProfile::by_name("libquantum").unwrap();
    println!("\nco-scheduled with libquantum:\n");
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>7}",
        "scheme", "stencil", "libq", "Hsp", "MinF"
    );
    for scheme in [
        PartitionScheme::NoPartitioning,
        PartitionScheme::Equal,
        PartitionScheme::SquareRoot,
    ] {
        let workloads: Vec<Box<dyn Workload>> = vec![Box::new(Stencil::new()), libq.spawn(7)];
        let cfgs = vec![CoreConfig::default(), libq.core_config()];
        let out = runner.run_scheme(scheme, workloads, cfgs, ShareSource::OnlineProfile);
        let ipc = out.ipc_shared();
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>7.3} {:>7.3}",
            scheme.name(),
            ipc[0],
            ipc[1],
            out.metric(Metric::HarmonicWeightedSpeedup),
            out.metric(Metric::MinFairness),
        );
    }
    println!("\n(Square_root should lift Hsp over both baselines)");
}
