#![warn(missing_docs)]

//! # bwpart — analytical off-chip memory bandwidth partitioning
//!
//! A full reproduction of *"An Analytical Performance Model for
//! Partitioning Off-Chip Memory Bandwidth"* (Wang, Chen, Pinkston — IPDPS
//! 2013), including every substrate the paper's evaluation depends on:
//!
//! * [`model`] ([`bwpart_core`]) — the analytical model: metrics, optimal
//!   partitioning schemes, solvers and QoS-guaranteed allocation;
//! * [`dram`] ([`bwpart_dram`]) — a cycle-level DDR2 DRAM simulator;
//! * [`mc`] ([`bwpart_mc`]) — the partitioning memory controller
//!   (start-time-fair enforcement, priority scheduling, interference
//!   detection, online `APC_alone` profiling);
//! * [`cmp`] ([`bwpart_cmp`]) — the chip-multiprocessor simulator (cores,
//!   private caches, phase runner);
//! * [`workloads`] ([`bwpart_workloads`]) — synthetic SPEC CPU2006-like
//!   benchmarks calibrated to the paper's Table III;
//! * [`experiments`] ([`bwpart_experiments`]) — one module per table and
//!   figure of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use bwpart::prelude::*;
//!
//! // Describe a workload analytically...
//! let apps = vec![
//!     AppProfile::from_kilo_units("libquantum", 34.1, 6.92).unwrap(),
//!     AppProfile::from_kilo_units("gobmk", 4.07, 1.91).unwrap(),
//! ];
//! // ...and derive the optimal split for harmonic weighted speedup.
//! let beta = PartitionScheme::SquareRoot.shares(&apps, 0.01).unwrap();
//! assert!(beta[0] > beta[1]);
//! ```
//!
//! See `examples/` for end-to-end simulated scenarios.

pub use bwpart_cmp as cmp;
pub use bwpart_core as model;
pub use bwpart_dram as dram;
pub use bwpart_experiments as experiments;
pub use bwpart_mc as mc;
pub use bwpart_workloads as workloads;

/// One-stop imports for applications using the library.
pub mod prelude {
    pub use bwpart_cmp::{
        CmpConfig, CmpSystem, CoreConfig, PhaseConfig, Runner, ShareSource, SimOutcome, Workload,
    };
    pub use bwpart_core::prelude::*;
    pub use bwpart_dram::{DramConfig, DramSystem, PagePolicy};
    pub use bwpart_mc::{MemoryController, Policy};
    pub use bwpart_workloads::{mixes, table3_profiles, BenchProfile, Mix};
}
